"""Benchmark: regenerate Table I (calibrated platform parameters)."""

from benchmarks.conftest import regenerate, rows_for


def test_bench_table1(benchmark):
    result = regenerate(benchmark, "table1")
    rows = {row["system"]: row for row in rows_for(result)}
    assert rows["cori"]["core_speed_gflops"] == 36.80
    assert rows["summit"]["core_speed_gflops"] == 49.12
    assert rows["cori"]["bb_network"] == "800.0 MB/s"
    assert rows["summit"]["bb_disk"] == "3.3 GB/s"
