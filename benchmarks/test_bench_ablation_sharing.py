"""Ablation: max-min fair sharing vs. naive equal split.

DESIGN.md calls out the bandwidth-sharing discipline as a core design
choice of the flow-level network model.  This benchmark runs a
contended transfer pattern under both allocators and checks that
max-min's work conservation actually shows up as lower makespans —
i.e. the choice matters and the default is justified.
"""

import pytest

from repro import des
from repro.network import FlowNetwork, Link, equal_split_rates, max_min_fair_rates


def contended_makespan(allocator) -> float:
    """A hub link shared by short local flows and long two-hop flows."""
    env = des.Environment()
    net = FlowNetwork(env, allocator=allocator)
    hub = Link("hub", bandwidth=1000.0)
    spokes = [Link(f"spoke{i}", bandwidth=100.0) for i in range(4)]

    events = []
    for i, spoke in enumerate(spokes):
        events.append(net.transfer(5000, [hub, spoke], label=f"two-hop-{i}"))
    for i in range(4):
        events.append(net.transfer(2000, [hub], label=f"local-{i}"))

    done = {}

    def wait(env):
        yield env.all_of(events)
        done["makespan"] = env.now

    env.process(wait(env))
    env.run()
    return done["makespan"]


def test_bench_sharing_max_min(benchmark):
    makespan = benchmark.pedantic(
        lambda: contended_makespan(max_min_fair_rates), rounds=3, iterations=1
    )
    assert makespan > 0


def test_bench_sharing_equal_split(benchmark):
    makespan = benchmark.pedantic(
        lambda: contended_makespan(equal_split_rates), rounds=3, iterations=1
    )
    assert makespan > 0


def test_max_min_is_work_conserving_in_simulation():
    """The ablation's point: equal split wastes freed capacity, so its
    makespan is strictly worse on the contended pattern."""
    fair = contended_makespan(max_min_fair_rates)
    naive = contended_makespan(equal_split_rates)
    assert fair < naive
