"""Benchmark: regenerate Figure 4 (stage-in vs. staged fraction)."""

from benchmarks.conftest import regenerate, rows_for


def test_bench_fig4(benchmark):
    result = regenerate(benchmark, "fig4")

    # Linear growth for every configuration.
    for config in ("private", "striped", "on-node"):
        means = [row["mean_s"] for row in rows_for(result, config=config)]
        assert means == sorted(means) or config == "striped"  # anomaly dips

    # On-node beats shared by a large factor at full staging.
    at_full = {r["config"]: r["mean_s"] for r in rows_for(result, fraction=1.0)}
    assert at_full["private"] / at_full["on-node"] > 3.0

    # The striped 75% anomaly: above the linear interpolation of 50→100%.
    striped = {r["fraction"]: r["mean_s"] for r in rows_for(result, config="striped")}
    interpolated = (striped[0.5] + striped[1.0]) / 2
    assert striped[0.75] > 1.3 * interpolated
