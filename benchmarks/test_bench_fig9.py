"""Benchmark: regenerate Figure 9 (achieved I/O bandwidth)."""

from benchmarks.conftest import regenerate, rows_for


def test_bench_fig9(benchmark):
    result = regenerate(benchmark, "fig9")
    at = {r["config"]: r for r in rows_for(result)}

    # Everyone achieves well below their Table I peak (POSIX + latency).
    for config in ("private", "striped", "on-node"):
        assert 0 < at[config]["peak_fraction"] < 1.0

    # On-node delivers the highest absolute bandwidth; striped the lowest.
    assert at["on-node"]["mean_MBps"] > at["private"]["mean_MBps"]
    assert at["private"]["mean_MBps"] >= at["striped"]["mean_MBps"]
