"""Extension: multi-node scaling of the on-node burst buffer design.

The paper (Section III-D): "We argue then that data movement between
local BBs (e.g., when using more than a single node) would not
significantly slow down the application execution.  This result
indicates that the on-node implementation would likely scale well for
large-scale workflow applications."

This extension tests that argument directly in simulation: SWarp weak
scaling over 1–8 Summit nodes (8 pipelines per node, inputs spread over
the node-local NVMes so a share of reads crosses the fabric to a remote
BB), measuring weak-scaling efficiency.
"""

import pytest

from repro import des
from repro.compute import ComputeService
from repro.platform import Platform
from repro.platform.presets import local_bb_host, summit_spec
from repro.storage import OnNodeBurstBuffer, ParallelFileSystem
from repro.wms import AllBB, RoundRobinScheduler, WorkflowEngine
from repro.workflow.swarp import make_swarp

PIPELINES_PER_NODE = 8


def weak_scaling_makespan(n_nodes: int) -> float:
    env = des.Environment()
    plat = Platform(env, summit_spec(n_compute=n_nodes))
    hosts = [f"cn{i}" for i in range(n_nodes)]
    bbs = {h: OnNodeBurstBuffer(plat, local_bb_host(h)) for h in hosts}
    engine = WorkflowEngine(
        plat,
        make_swarp(
            n_pipelines=PIPELINES_PER_NODE * n_nodes,
            cores_per_task=4,
            include_stage_in=False,
        ),
        ComputeService(plat, hosts),
        ParallelFileSystem(plat),
        bb_for_host=lambda h: bbs[h],
        placement=AllBB(),
        host_assignment=RoundRobinScheduler(),
    )
    return engine.run().makespan


@pytest.mark.parametrize("n_nodes", [1, 2, 4, 8])
def test_bench_onnode_weak_scaling(benchmark, n_nodes):
    makespan = benchmark.pedantic(
        lambda: weak_scaling_makespan(n_nodes), rounds=1, iterations=1
    )
    assert makespan > 0


def test_onnode_scales_well():
    """Weak-scaling efficiency stays high: 8 nodes cost < 40% over 1
    node for 8× the work, despite cross-node BB traffic."""
    base = weak_scaling_makespan(1)
    scaled = weak_scaling_makespan(8)
    assert scaled < 1.4 * base
