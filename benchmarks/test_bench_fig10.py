"""Benchmark: regenerate Figure 10 (validation, staged-fraction sweep)."""

from benchmarks.conftest import regenerate, rows_for


def test_bench_fig10(benchmark):
    result = regenerate(benchmark, "fig10")

    paper_errors = {"private": 0.056, "striped": 0.128, "on-node": 0.065}
    for config, paper in paper_errors.items():
        rows = rows_for(result, config=config)
        mean_error = sum(r["rel_error"] for r in rows) / len(rows)
        # Within 2× of the paper's reported error band.
        assert mean_error < 2 * paper + 0.02, f"{config}: {mean_error:.1%}"

    # Striped is underestimated (no fragmentation in the simple model).
    for row in rows_for(result, config="striped"):
        assert row["simulated_s"] <= row["measured_s"]

    # Private shows the paper's trend inversion character: the simulated
    # curve falls with the staged fraction.
    sims = [r["simulated_s"] for r in rows_for(result, config="private")]
    assert sims == sorted(sims, reverse=True)
