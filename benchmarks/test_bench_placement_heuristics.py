"""Ablation: data-placement heuristics on the 1000Genomes workflow.

The paper's stated future work: "leverage our simulator to explore the
heuristic-space of data placement strategies".  This benchmark runs the
1000Genomes instance under the heuristic policies the library ships and
reports their makespans — demonstrating the exploration loop the paper
proposes, at benchmark-tracked cost.
"""

import pytest

from repro import des
from repro.compute import ComputeService
from repro.platform import Platform
from repro.platform.presets import bb_node_names, compute_node_names, cori_spec
from repro.storage import BBMode, ParallelFileSystem, SharedBurstBuffer
from repro.wms import (
    AllPFS,
    FractionPlacement,
    LocalityPlacement,
    SizeThresholdPlacement,
    WorkflowEngine,
)
from repro.workflow.genomes import make_1000genomes

N_CHROMOSOMES = 4
N_COMPUTE = 4


def genomes_makespan(placement) -> float:
    env = des.Environment()
    platform = Platform(env, cori_spec(n_compute=N_COMPUTE, n_bb_nodes=1))
    hosts = compute_node_names(N_COMPUTE)
    engine = WorkflowEngine(
        platform,
        make_1000genomes(n_chromosomes=N_CHROMOSOMES),
        ComputeService(platform, hosts),
        ParallelFileSystem(platform),
        bb_for_host=lambda host: SharedBurstBuffer(
            platform, bb_node_names(1), BBMode.STRIPED
        ),
        placement=placement,
    )
    return engine.run().makespan


POLICIES = {
    "all-pfs": AllPFS,
    "all-bb": lambda: FractionPlacement(1.0, 1.0, 1.0),
    "locality": LocalityPlacement,
    "large-to-bb": lambda: SizeThresholdPlacement(50e6),
    "small-to-bb": lambda: SizeThresholdPlacement(50e6, large_to_bb=False),
}


@pytest.mark.parametrize("policy_name", sorted(POLICIES))
def test_bench_placement(benchmark, policy_name):
    makespan = benchmark.pedantic(
        lambda: genomes_makespan(POLICIES[policy_name]()),
        rounds=1,
        iterations=1,
    )
    assert makespan > 0


def test_placement_ordering_sanity():
    """The BB-enabled policies must beat the pure-PFS baseline."""
    baseline = genomes_makespan(AllPFS())
    all_bb = genomes_makespan(FractionPlacement(1.0, 1.0, 1.0))
    locality = genomes_makespan(LocalityPlacement())
    assert all_bb < baseline
    assert locality < baseline
