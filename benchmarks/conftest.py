"""Shared helpers for the benchmark harness.

Every table/figure benchmark calls the corresponding experiment module
through :func:`regenerate`, which times a full regeneration (quick
sweep densities — same shapes, fewer trials) exactly once per run and
returns the rows so each benchmark can assert the paper's findings on
the freshly generated data.
"""

import pytest


def regenerate(benchmark, experiment_id: str):
    """Benchmark one full regeneration of an experiment; return its result."""
    from repro.experiments.cli import run_experiment

    return benchmark.pedantic(
        lambda: run_experiment(experiment_id, quick=True),
        rounds=1,
        iterations=1,
        warmup_rounds=0,
    )


def rows_for(result, **filters):
    """Rows of an ExperimentResult as dicts, filtered by column values."""
    index = {c: i for i, c in enumerate(result.columns)}
    return [
        {c: row[i] for c, i in index.items()}
        for row in result.rows
        if all(row[index[k]] == v for k, v in filters.items())
    ]
