"""Benchmark: regenerate Figure 7 (concurrent-pipelines sweep)."""

from benchmarks.conftest import regenerate, rows_for


def test_bench_fig7(benchmark):
    result = regenerate(benchmark, "fig7")

    private = {r["pipelines"]: r for r in rows_for(result, config="private")}
    onnode = {r["pipelines"]: r for r in rows_for(result, config="on-node")}
    n_max = max(private)

    # Cori tasks slow down substantially with concurrency...
    cori_slowdown = private[n_max]["resample_s"] / private[1]["resample_s"]
    assert cori_slowdown > 1.4

    # ... while Summit's resample stays nearly flat,
    summit_slowdown = onnode[n_max]["resample_s"] / onnode[1]["resample_s"]
    assert summit_slowdown < 1.3
    assert summit_slowdown < cori_slowdown

    # and Summit's combine degrades more than its resample (paper).
    summit_combine = onnode[n_max]["combine_s"] / onnode[1]["combine_s"]
    assert summit_combine > summit_slowdown
