"""Ablation: perfect speedup (Eq. 4) vs. general Amdahl model (Eq. 3).

The paper's headline model assumes every task scales perfectly
("quite strong assumptions that will definitely lead to losses in
accuracy").  This ablation quantifies that loss: it predicts the
emulated core-count sweep with both model variants and compares their
errors.  The general model should win when the true alpha is known.
"""

import pytest

from repro.emulation.calibration import SWARP_TRUTH
from repro.model import (
    mean_relative_error,
    observed_time,
    sequential_compute_time,
)
from repro.scenarios import run_swarp
from repro.storage import BBMode

CORES = (1, 4, 16, 32)


def emulated_resample_curve():
    """Emulated (noise-free) resample times over the core sweep."""
    out = {}
    for cores in CORES:
        r = run_swarp(
            system="cori",
            bb_mode=BBMode.PRIVATE,
            input_fraction=1.0,
            cores_per_task=cores,
            include_stage_in=False,
            emulated=True,
            seed=None,
        )
        record = r.trace.task_record("resample_0")
        out[cores] = (record.duration, record.io_fraction, record.io_time)
    return out


def predict_curve(measured, alpha: float):
    """Calibrate from the 32-core point with the given alpha (Eq. 3),
    then predict the whole sweep (compute via the model + measured I/O)."""
    t32, lam32, _ = measured[32]
    tc1 = sequential_compute_time(t32, 32, lam32, alpha=alpha)
    predictions = {}
    for cores, (_, _, io_time) in measured.items():
        compute = observed_time(tc1, cores, 0.0, alpha=alpha)
        predictions[cores] = compute + io_time
    return predictions


def run_ablation():
    measured = emulated_resample_curve()
    true_alpha = SWARP_TRUTH["resample"].alpha
    perfect = predict_curve(measured, alpha=0.0)
    general = predict_curve(measured, alpha=true_alpha)
    reference = [measured[c][0] for c in CORES]
    return (
        mean_relative_error(reference, [perfect[c] for c in CORES]),
        mean_relative_error(reference, [general[c] for c in CORES]),
    )


def test_bench_amdahl_ablation(benchmark):
    perfect_err, general_err = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )
    # Knowing alpha improves the extrapolation across core counts...
    assert general_err < perfect_err
    # ...and the perfect-speedup error is large at 1 core, which is
    # exactly the accuracy loss the paper acknowledges for Eq. (4).
    assert perfect_err > 0.10
    assert general_err < 0.30
