"""Ablation: task-to-host scheduling policies on a multi-node platform.

The engine's default assignment is a static topological round-robin;
this ablation quantifies what dynamic load- and locality-aware
scheduling buys on the 1000Genomes workflow spread over four Summit
nodes with node-local burst buffers (where locality actually matters:
a remote NVMe read crosses the fabric).
"""

import pytest

from repro import des
from repro.compute import ComputeService
from repro.platform import Platform
from repro.platform.presets import local_bb_host, summit_spec
from repro.storage import OnNodeBurstBuffer, ParallelFileSystem
from repro.wms import (
    AllBB,
    DataLocalityScheduler,
    LeastLoadedScheduler,
    RoundRobinScheduler,
    WorkflowEngine,
    heft_assignment,
)
from repro.workflow.genomes import make_1000genomes

N_COMPUTE = 4


def genomes_makespan(scheduler_factory) -> float:
    env = des.Environment()
    plat = Platform(env, summit_spec(n_compute=N_COMPUTE))
    hosts = [f"cn{i}" for i in range(N_COMPUTE)]
    bbs = {h: OnNodeBurstBuffer(plat, local_bb_host(h)) for h in hosts}
    workflow = make_1000genomes(n_chromosomes=4)
    scheduler = (
        scheduler_factory(workflow, plat, hosts) if scheduler_factory else None
    )
    engine = WorkflowEngine(
        plat,
        workflow,
        ComputeService(plat, hosts),
        ParallelFileSystem(plat),
        bb_for_host=lambda h: bbs[h],
        placement=AllBB(),
        host_assignment=scheduler,
    )
    return engine.run().makespan


SCHEDULERS = {
    "default-static": None,
    "round-robin": lambda wf, plat, hosts: RoundRobinScheduler(),
    "least-loaded": lambda wf, plat, hosts: LeastLoadedScheduler(),
    "data-locality": lambda wf, plat, hosts: DataLocalityScheduler(),
    "heft-static": heft_assignment,
}


@pytest.mark.parametrize("name", sorted(SCHEDULERS))
def test_bench_scheduler(benchmark, name):
    factory = SCHEDULERS[name]
    makespan = benchmark.pedantic(
        lambda: genomes_makespan(factory),
        rounds=1,
        iterations=1,
    )
    assert makespan > 0


def test_locality_no_worse_than_round_robin():
    """Locality-aware scheduling should not lose to blind round-robin on
    a producer-consumer heavy workflow with node-local buffers."""
    rr = genomes_makespan(SCHEDULERS["round-robin"])
    locality = genomes_makespan(SCHEDULERS["data-locality"])
    assert locality <= rr * 1.02
