"""Benchmark: regenerate Figure 11 (validation, pipelines sweep)."""

from benchmarks.conftest import regenerate, rows_for


def test_bench_fig11(benchmark):
    result = regenerate(benchmark, "fig11")

    for config in ("private", "striped", "on-node"):
        rows = rows_for(result, config=config)
        measured = [r["measured_s"] for r in rows]
        simulated = [r["simulated_s"] for r in rows]
        # Both curves rise with concurrency — the contention trend the
        # paper's model "captures fairly well".
        assert measured == sorted(measured)
        assert simulated == sorted(simulated)

    # On-node stays within the paper's error regime.
    onnode = rows_for(result, config="on-node")
    mean_error = sum(r["rel_error"] for r in onnode) / len(onnode)
    assert mean_error < 0.25
