"""Benchmark: regenerate Figure 6 (cores-per-task sweep)."""

from benchmarks.conftest import regenerate, rows_for


def test_bench_fig6(benchmark):
    result = regenerate(benchmark, "fig6")

    # Shared implementation: resample gains to 8 cores, then plateaus.
    private = {r["cores"]: r for r in rows_for(result, config="private")}
    assert private[8]["resample_s"] < private[1]["resample_s"] / 2
    assert private[32]["resample_s"] > 0.85 * private[8]["resample_s"]

    # Combine does not benefit from parallelism anywhere.
    for config in ("private", "striped", "on-node"):
        rows = {r["cores"]: r for r in rows_for(result, config=config)}
        assert rows[32]["combine_s"] > 0.8 * rows[1]["combine_s"]

    # Core count does not change the configuration ordering.
    for cores in (1, 32):
        at = {
            r["config"]: r["resample_s"] for r in rows_for(result, cores=cores)
        }
        assert at["on-node"] < at["private"]
