"""Benchmark: regenerate Figure 5 (task times across tiers and modes)."""

from benchmarks.conftest import regenerate, rows_for


def test_bench_fig5(benchmark):
    result = regenerate(benchmark, "fig5")

    # Private: resample improves with staged inputs; BB intermediates win.
    private_bb = rows_for(result, config="private", intermediates="bb")
    assert private_bb[0]["resample_s"] > private_bb[-1]["resample_s"]
    private_pfs = rows_for(result, config="private", intermediates="pfs")
    for bb_row, pfs_row in zip(private_bb, private_pfs):
        assert bb_row["resample_s"] < pfs_row["resample_s"]

    # Combine in private mode is nearly constant across the sweep.
    combine = [row["combine_s"] for row in private_bb]
    assert max(combine) / min(combine) < 1.1

    # Ordering at full staging: on-node < private < striped.
    def resample_at_full(config):
        return rows_for(result, config=config, intermediates="bb", fraction=1.0)[0][
            "resample_s"
        ]

    assert (
        resample_at_full("on-node")
        < resample_at_full("private")
        < resample_at_full("striped")
    )
