"""Benchmark: regenerate Figure 13 (1000Genomes staged-fraction sweep)."""

from benchmarks.conftest import regenerate


def test_bench_fig13(benchmark):
    result = regenerate(benchmark, "fig13")

    cori = result.column("cori_s")
    summit = result.column("summit_s")

    # Makespans fall monotonically as more input is staged.
    assert cori == sorted(cori, reverse=True)
    assert summit == sorted(summit, reverse=True)

    # Summit outperforms Cori everywhere (bigger BB bandwidth).
    assert all(s < c for s, c in zip(summit, cori))

    # Cori's tail gain (last step) is flatter than Summit's: the single
    # BB node saturates first (the paper's ~80% plateau).
    cori_tail = (cori[-2] - cori[-1]) / cori[-2]
    summit_tail = (summit[-2] - summit[-1]) / summit[-2]
    assert cori_tail < summit_tail
