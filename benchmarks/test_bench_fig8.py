"""Benchmark: regenerate Figure 8 (run-to-run variability)."""

from benchmarks.conftest import regenerate, rows_for


def test_bench_fig8(benchmark):
    result = regenerate(benchmark, "fig8")

    pipelines = sorted({r["pipelines"] for r in rows_for(result)})
    for n in pipelines:
        at = {r["config"]: r for r in rows_for(result, pipelines=n)}
        # On-node is fastest and at least as stable as striped.
        assert at["on-node"]["mean_s"] < at["private"]["mean_s"]
        assert at["on-node"]["cv"] <= at["striped"]["cv"]
        # Private beats striped on both speed and stability.
        assert at["private"]["mean_s"] < at["striped"]["mean_s"]
        assert at["private"]["cv"] <= at["striped"]["cv"]
