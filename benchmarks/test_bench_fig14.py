"""Benchmark: regenerate Figure 14 (1000Genomes speedup + reference)."""

import math

from benchmarks.conftest import regenerate


def test_bench_fig14(benchmark):
    result = regenerate(benchmark, "fig14")

    cori = result.column("cori_speedup")
    summit = result.column("summit_speedup")

    # Speedup grows with staging and starts at 1.
    assert cori[0] == 1.0 and summit[0] == 1.0
    assert cori == sorted(cori)
    assert cori[-1] > 1.2

    # Summit ends up with the larger speedup (its plateau comes later).
    assert summit[-1] > cori[-1]

    # Prior-work reference points exist and carry a nonzero error note.
    refs = [v for v in result.column("reference") if not math.isnan(v)]
    assert refs
    assert any("error vs. 2-chromosome reference" in n for n in result.notes)
