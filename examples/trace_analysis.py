#!/usr/bin/env python3
"""Analyze one execution: Gantt chart, I/O profile, trace export.

Runs a small SWarp instance on the emulated Cori, then demonstrates the
observability surface of the library:

* an ASCII Gantt chart of who ran when,
* a Darshan-style I/O profile (per-service bytes/bandwidths, per-group
  λ_io — the quantities the paper's calibration chain consumes),
* export of the executed workflow as a WorkflowHub-style JSON trace.

Run:  python examples/trace_analysis.py
"""

import tempfile
from pathlib import Path

from repro.analysis import profile_trace, render_profile
from repro.scenarios import run_swarp
from repro.storage import BBMode
from repro.traces import render_gantt
from repro.workflow.wfformat import workflow_to_wfformat


def main() -> None:
    result = run_swarp(
        system="cori",
        bb_mode=BBMode.PRIVATE,
        input_fraction=1.0,
        intermediates_in_bb=True,
        n_pipelines=4,
        cores_per_task=8,
        emulated=True,
        seed=11,
    )
    print(f"SWarp, 4 pipelines x 8 cores on emulated Cori "
          f"(makespan {result.makespan:.1f}s)\n")

    print(render_gantt(result.trace, width=64))
    print()

    print(render_profile(profile_trace(result.trace)))
    print()

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "swarp_executed.json"
        workflow_to_wfformat(result.workflow, trace=result.trace, path=path)
        print(f"executed trace exported as WfCommons JSON "
              f"({path.stat().st_size} bytes) — the same format the "
              "paper's 1000Genomes case study consumes from WorkflowHub")


if __name__ == "__main__":
    main()
