#!/usr/bin/env python3
"""Explore the data-placement design space with the simulator.

The paper's conclusion: "A natural future direction is to leverage our
simulator to explore the heuristic-space of data placements strategies
to optimize workflows executions."  This example does exactly that on a
SWarp instance with a *capacity-constrained* burst buffer, where
all-in-BB is not an option and the interesting question — which files
deserve the fast tier? — actually has a nontrivial answer.

Run:  python examples/placement_search.py
"""

from repro import des
from repro.compute import ComputeService
from repro.platform import Platform
from repro.platform.presets import TABLE_I, cori_spec
from repro.platform.units import GB, MB, MiB
from repro.storage import BBMode, InsufficientStorage, ParallelFileSystem, SharedBurstBuffer
from repro.wms import (
    AllPFS,
    GreedyPlacementSearch,
    LocalityPlacement,
    SizeThresholdPlacement,
    WorkflowEngine,
    evaluate_policies,
    workflow_candidates,
)
from repro.workflow.swarp import make_swarp

#: A deliberately tight BB allocation: the workflow's data does not fit.
BB_CAPACITY = 1.2 * GB


def make_evaluator(workflow):
    """Fresh simulation per probe; over-capacity placements score inf."""

    def evaluate(placement) -> float:
        env = des.Environment()
        platform = Platform(env, cori_spec(n_compute=1, n_bb_nodes=1))
        bb = SharedBurstBuffer(
            platform, ["bb0"], BBMode.PRIVATE, owner_host="cn0"
        )
        bb.capacity = BB_CAPACITY
        engine = WorkflowEngine(
            platform,
            workflow,
            ComputeService(platform, ["cn0"]),
            ParallelFileSystem(platform),
            bb_for_host=lambda host: bb,
            placement=placement,
            host_assignment=lambda task: "cn0",
        )
        try:
            return engine.run().makespan
        except InsufficientStorage:
            return float("inf")

    return evaluate


def main() -> None:
    workflow = make_swarp(n_pipelines=2, cores_per_task=8, include_stage_in=False)
    candidates = workflow_candidates(workflow)
    total = sum(f.size for f in candidates)
    print(
        f"SWarp, 2 pipelines: {len(candidates)} placeable files, "
        f"{total / 1e9:.2f} GB total, BB capacity {BB_CAPACITY / 1e9:.2f} GB\n"
    )
    evaluate = make_evaluator(workflow)

    print("Hand-written heuristics:")
    scores = evaluate_policies(
        evaluate,
        {
            "all-pfs": AllPFS(),
            "intermediates-to-bb": LocalityPlacement(),
            "large-files-to-bb (>=20MiB)": SizeThresholdPlacement(20 * MiB),
        },
    )
    for s in scores:
        note = "" if s.makespan != float("inf") else "  (over capacity)"
        print(f"  {s.name:30s} makespan = {s.makespan:8.2f}s{note}")

    print("\nGreedy per-file search (simulator in the loop):")
    search = GreedyPlacementSearch(evaluate, candidates, max_evaluations=400, strategy="first")
    result = search.run()
    print(f"  baseline (all-PFS):   {result.baseline_makespan:8.2f}s")
    print(f"  after {len(result.steps):3d} moves:      {result.makespan:8.2f}s "
          f"({result.speedup:.2f}x, {result.evaluations} simulations)")
    placed = sum(
        workflow.files[name].size for name in result.placement.bb_files
    )
    print(f"  BB usage: {placed / 1e9:.2f} / {BB_CAPACITY / 1e9:.2f} GB")
    print("  first moves:", ", ".join(s.file_name for s in result.steps[:5]))


if __name__ == "__main__":
    main()
