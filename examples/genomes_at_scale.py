#!/usr/bin/env python3
"""The 1000Genomes case study: burst-buffer staging at scale.

Simulates the 903-task 1000Genomes workflow (Section IV-C of the paper)
on the calibrated Cori and Summit models, sweeping the fraction of its
~52 GB input staged into the burst buffer, and reports where each
system's benefit saturates.

Run:  python examples/genomes_at_scale.py [--chromosomes N]
"""

import argparse

from repro.analysis import plateau_fraction
from repro.scenarios import run_genomes
from repro.workflow.genomes import make_1000genomes


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--chromosomes", type=int, default=22)
    parser.add_argument("--nodes", type=int, default=8)
    args = parser.parse_args()

    workflow = make_1000genomes(n_chromosomes=args.chromosomes)
    print(
        f"1000Genomes instance: {len(workflow)} tasks, "
        f"{workflow.data_footprint / 1e9:.1f} GB footprint, "
        f"{sum(f.size for f in workflow.external_input_files()) / 1e9:.1f} GB input\n"
    )

    fractions = [i / 10 for i in range(11)]
    curves = {}
    for system in ("cori", "summit"):
        curves[system] = [
            run_genomes(
                system=system,
                input_fraction=f,
                n_chromosomes=args.chromosomes,
                n_compute=args.nodes,
            ).makespan
            for f in fractions
        ]

    print(f"{'staged':>7s} {'cori':>10s} {'summit':>10s} {'speedup(cori)':>14s}")
    for i, f in enumerate(fractions):
        print(
            f"{f:6.0%} {curves['cori'][i]:9.1f}s {curves['summit'][i]:9.1f}s "
            f"{curves['cori'][0] / curves['cori'][i]:13.2f}x"
        )

    print()
    for system in ("cori", "summit"):
        plateau = plateau_fraction(fractions, curves[system])
        print(f"{system}: staging benefit saturates at ~{plateau:.0%} staged input")
    print("\n(The paper observes Cori saturating near 80% — its single BB "
          "node's bandwidth — while Summit keeps gaining until ~100%.)")


if __name__ == "__main__":
    main()
