#!/usr/bin/env python3
"""Define a custom platform in JSON and compare placement heuristics.

Demonstrates the two extension points a downstream user reaches for
first: describing their own machine (here written to a JSON file and
loaded back, as one would check it into a repo) and plugging in custom
data-placement policies — the design space the paper's conclusion
proposes exploring.

Run:  python examples/custom_platform.py
"""

import tempfile
from pathlib import Path

from repro import des
from repro.compute import ComputeService
from repro.platform import Platform, platform_from_json, platform_to_json
from repro.platform.spec import DiskSpec, HostSpec, LinkSpec, PlatformSpec, RouteSpec
from repro.platform.units import GB, GFLOPS, MB, TB
from repro.storage import BBMode, ParallelFileSystem, SharedBurstBuffer
from repro.wms import (
    AllPFS,
    FractionPlacement,
    LocalityPlacement,
    SizeThresholdPlacement,
    WorkflowEngine,
)
from repro.workflow.swarp import make_swarp


def custom_platform_spec() -> PlatformSpec:
    """A hypothetical mid-size cluster: 4 nodes, 2 BB nodes, slow PFS."""
    hosts = [
        HostSpec(name=f"cn{i}", cores=16, core_speed=40 * GFLOPS)
        for i in range(4)
    ]
    hosts += [
        HostSpec(
            name=f"bb{i}",
            cores=1,
            core_speed=40 * GFLOPS,
            disks=(
                DiskSpec("ssd", read_bandwidth=2 * GB, write_bandwidth=1.5 * GB,
                         capacity=3 * TB),
            ),
        )
        for i in range(2)
    ]
    hosts.append(
        HostSpec(
            name="pfs",
            cores=1,
            core_speed=40 * GFLOPS,
            disks=(
                DiskSpec("lustre", read_bandwidth=150 * MB,
                         write_bandwidth=150 * MB, capacity=1e15),
            ),
        )
    )
    links = [LinkSpec("san", bandwidth=5 * GB, latency=2e-6)]
    routes = []
    for cn in ("cn0", "cn1", "cn2", "cn3"):
        for target in ("bb0", "bb1", "pfs"):
            routes.append(RouteSpec(cn, target, ["san"]))
    return PlatformSpec(
        name="my-cluster", hosts=tuple(hosts), links=tuple(links),
        routes=tuple(routes),
    )


def run_with_placement(spec, placement, label: str) -> float:
    env = des.Environment()
    platform = Platform(env, spec)
    hosts = [h.name for h in spec.hosts_matching("cn")]
    engine = WorkflowEngine(
        platform,
        make_swarp(n_pipelines=4, cores_per_task=4, include_stage_in=False),
        ComputeService(platform, hosts),
        ParallelFileSystem(platform),
        bb_for_host=lambda host: SharedBurstBuffer(
            platform, ["bb0", "bb1"], BBMode.STRIPED
        ),
        placement=placement,
        host_assignment=lambda task: hosts[hash(task.name) % len(hosts)],
    )
    makespan = engine.run().makespan
    print(f"  {label:35s} makespan = {makespan:8.2f}s")
    return makespan


def main() -> None:
    spec = custom_platform_spec()

    # Round-trip through JSON, as a real deployment would.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "my-cluster.json"
        platform_to_json(spec, path)
        print(f"platform serialized to JSON ({path.stat().st_size} bytes) "
              "and loaded back\n")
        spec = platform_from_json(path)

    print("Comparing placement policies on 'my-cluster' "
          "(SWarp, 4 pipelines x 4 cores):")
    policies = [
        ("everything on the PFS", AllPFS()),
        ("all files in the BB", FractionPlacement(1.0, 1.0, 1.0)),
        ("intermediates only (locality)", LocalityPlacement()),
        ("large files to BB (>= 20 MB)", SizeThresholdPlacement(20e6)),
        ("half the inputs staged", FractionPlacement(input_fraction=0.5,
                                                     intermediate_fraction=1.0)),
    ]
    results = {
        label: run_with_placement(spec, policy, label)
        for label, policy in policies
    }
    best = min(results, key=results.get)
    print(f"\nbest policy here: {best!r}")


if __name__ == "__main__":
    main()
