#!/usr/bin/env python3
"""Quickstart: simulate a tiny workflow on a burst-buffer platform.

Builds a two-task workflow (producer → consumer), runs it once with all
intermediate data on the PFS and once with it in the burst buffer, and
prints the timing difference — the core effect the paper studies.

Run:  python examples/quickstart.py
"""

from repro import des
from repro.compute import ComputeService
from repro.platform import Platform
from repro.platform.presets import TABLE_I, cori_spec
from repro.platform.units import MB
from repro.storage import BBMode, ParallelFileSystem, SharedBurstBuffer
from repro.wms import AllBB, AllPFS, WorkflowEngine
from repro.workflow import File, Task, Workflow

CORE = TABLE_I["cori"]["core_speed"]  # flop/s of one calibrated Cori core


def build_workflow() -> Workflow:
    """producer writes 400 MB; consumer reads it back and computes."""
    data = File("dataset.bin", 400 * MB)
    result = File("result.bin", 40 * MB)
    producer = Task("producer", flops=2 * CORE, outputs=(data,), cores=2)
    consumer = Task("consumer", flops=4 * CORE, inputs=(data,), outputs=(result,), cores=4)
    return Workflow("quickstart", [producer, consumer])


def simulate(placement) -> float:
    env = des.Environment()
    platform = Platform(env, cori_spec(n_compute=1, n_bb_nodes=1))
    engine = WorkflowEngine(
        platform,
        build_workflow(),
        ComputeService(platform, ["cn0"]),
        ParallelFileSystem(platform),
        bb_for_host=lambda host: SharedBurstBuffer(
            platform, ["bb0"], BBMode.PRIVATE, owner_host=host
        ),
        placement=placement,
        host_assignment=lambda task: "cn0",
    )
    trace = engine.run()
    for record in sorted(trace.records.values(), key=lambda r: r.start):
        print(
            f"  {record.name:10s} start={record.start:6.2f}s  "
            f"read={record.read_time:5.2f}s  compute={record.compute_time:5.2f}s  "
            f"write={record.write_time:5.2f}s"
        )
    return trace.makespan


def main() -> None:
    print("All data on the parallel file system (100 MB/s disk):")
    pfs_makespan = simulate(AllPFS())
    print(f"  makespan: {pfs_makespan:.2f}s\n")

    print("Intermediate data in the burst buffer (800 MB/s path):")
    bb_makespan = simulate(AllBB())
    print(f"  makespan: {bb_makespan:.2f}s\n")

    print(f"Burst buffer speedup: {pfs_makespan / bb_makespan:.2f}x")


if __name__ == "__main__":
    main()
