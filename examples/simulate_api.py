#!/usr/bin/env python3
"""The one-call public API: ``repro.simulate``.

Runs SWarp on the Cori model through the facade three ways — default
config, a config mapping (no imports of enums or dataclasses needed),
and an A/B of the two max-min solvers — then exports telemetry.

Run:  python examples/simulate_api.py
"""

import tempfile

import repro
from repro.platform.presets import cori_spec
from repro.workflow.swarp import make_swarp


def main() -> None:
    platform = cori_spec(n_compute=2, n_bb_nodes=2)
    workflow = make_swarp(n_pipelines=4, cores_per_task=8)

    # Defaults: striped shared burst buffer, everything staged in.
    result = repro.simulate(platform, workflow)
    print(f"striped (defaults):        makespan {result.makespan:7.2f}s  "
          f"{len(result.trace.events)} events")

    # Any SimulatorConfig field can be given as a plain mapping; string
    # forms are accepted ("private" instead of BBMode.PRIVATE).
    result = repro.simulate(platform, workflow,
                            config={"bb_mode": "private",
                                    "input_fraction": 0.5})
    print(f"private, 50% staged:       makespan {result.makespan:7.2f}s")

    # Solver A/B: the incremental engine re-solves only the dirty
    # component per flow event — same model, same makespan, fewer solves
    # (docs/PERF.md).  observer=True collects telemetry for the proof.
    for allocator in ("max-min", "incremental"):
        result = repro.simulate(platform, workflow, observer=True,
                                config={"bb_mode": "private",
                                        "input_fraction": 0.5,
                                        "network_allocator": allocator})
        solves = result.telemetry.counter("network.solver_calls").value
        print(f"{allocator:11s} allocator:     makespan {result.makespan:7.2f}s  "
              f"{solves:4.0f} rate solves")

    with tempfile.TemporaryDirectory() as out:
        manifest = result.export_telemetry(out)
        print(f"telemetry exported: {manifest}")


if __name__ == "__main__":
    main()
