#!/usr/bin/env python3
"""Characterize SWarp across the three burst-buffer configurations.

Reproduces the core of the paper's Section III in one script: run the
SWarp workflow on the emulated Cori (private and striped DataWarp
modes) and Summit (on-node NVMe), sweeping the fraction of input files
staged into the burst buffer, and print per-task timings.

Run:  python examples/swarp_characterization.py
"""

from repro.emulation.trials import run_trials
from repro.scenarios import run_swarp
from repro.storage import BBMode

CONFIGS = (
    ("private", dict(system="cori", bb_mode=BBMode.PRIVATE)),
    ("striped", dict(system="cori", bb_mode=BBMode.STRIPED)),
    ("on-node", dict(system="summit")),
)
FRACTIONS = (0.0, 0.5, 1.0)
TRIALS = 5


def main() -> None:
    print("SWarp characterization: 1 pipeline, 32 cores/task, "
          f"{TRIALS} trials per point\n")
    header = f"{'config':8s} {'staged':>7s} {'stage-in':>10s} {'resample':>10s} {'combine':>9s}"
    print(header)
    print("-" * len(header))

    for label, kwargs in CONFIGS:
        for fraction in FRACTIONS:
            def one_trial(seed: int) -> tuple[float, float, float]:
                r = run_swarp(
                    input_fraction=fraction,
                    intermediates_in_bb=True,
                    emulated=True,
                    seed=seed,
                    **kwargs,
                )
                return (
                    r.trace.task_record("stage_in").duration,
                    r.mean_duration("resample"),
                    r.mean_duration("combine"),
                )

            stage = run_trials(lambda s: one_trial(s)[0], n_trials=TRIALS)
            resample = run_trials(lambda s: one_trial(s)[1], n_trials=TRIALS)
            combine = run_trials(lambda s: one_trial(s)[2], n_trials=TRIALS)
            print(
                f"{label:8s} {fraction:6.0%} "
                f"{stage.mean:8.2f}s  {resample.mean:8.2f}s {combine.mean:7.2f}s"
            )
        print()

    print("Findings to look for (paper Section III-D):")
    print(" * stage-in grows with the staged fraction; on-node is fastest")
    print(" * private-mode resample improves as more inputs sit in the BB")
    print(" * striped mode trails private; on-node beats both")


if __name__ == "__main__":
    main()
