#!/usr/bin/env python3
"""Co-running workflow jobs competing for a shared burst buffer.

The paper carefully *avoided* sharing interference ("we insure no other
jobs are running concurrently on the same node"), yet identified it as
the key source of variability on the shared BB architecture.  With the
batch layer we can study exactly the scenario the authors had to dodge:
two SWarp workflow jobs scheduled on separate nodes of one machine, both
hammering the same shared burst buffer.

Run:  python examples/batch_interference.py
"""

from repro import des
from repro.batch import BatchScheduler, JobRequest
from repro.compute import ComputeService
from repro.platform import Platform
from repro.platform.presets import bb_node_names, cori_spec
from repro.storage import BBMode, ParallelFileSystem, SharedBurstBuffer
from repro.wms import AllBB, WorkflowEngine
from repro.workflow.swarp import make_swarp


def run_machine(concurrent: bool) -> dict[str, float]:
    """Two 1-node SWarp jobs; concurrent or forced back-to-back."""
    env = des.Environment()
    platform = Platform(env, cori_spec(n_compute=2, n_bb_nodes=1))
    pfs = ParallelFileSystem(platform)
    shared_bb = SharedBurstBuffer(platform, bb_node_names(1), BBMode.STRIPED)
    # With 2 nodes, concurrent jobs coexist; requesting both nodes
    # serializes them (the paper's exclusive-access methodology).
    nodes_per_job = 1 if concurrent else 2
    scheduler = BatchScheduler(env, ["cn0", "cn1"])
    runtimes: dict[str, float] = {}

    def job_body(allocation):
        host = allocation.nodes[0]
        engine = WorkflowEngine(
            platform,
            make_swarp(n_pipelines=4, cores_per_task=8, include_stage_in=False),
            ComputeService(platform, [host]),
            pfs,
            bb_for_host=lambda h: shared_bb,
            placement=AllBB(),
            host_assignment=lambda task: host,
        )
        start = env.now
        yield engine.start()
        runtimes[allocation.job.name] = env.now - start

    for name in ("job-A", "job-B"):
        scheduler.submit(
            JobRequest(name, n_nodes=nodes_per_job, walltime=10_000), job_body
        )
    env.run()
    return runtimes


def main() -> None:
    exclusive = run_machine(concurrent=False)
    shared = run_machine(concurrent=True)

    print("SWarp job runtimes on a 2-node machine with ONE shared BB node:\n")
    print(f"{'job':8s} {'exclusive':>11s} {'co-running':>11s} {'slowdown':>9s}")
    for name in sorted(exclusive):
        slow = shared[name] / exclusive[name]
        print(f"{name:8s} {exclusive[name]:10.1f}s {shared[name]:10.1f}s "
              f"{slow:8.2f}x")

    print("\nCo-running jobs contend on the BB node's disk and show the")
    print("sharing interference the paper's methodology deliberately")
    print("excluded from its measurements (Section III-D).")


if __name__ == "__main__":
    main()
