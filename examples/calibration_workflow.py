#!/usr/bin/env python3
"""The paper's full methodology in one script (its Figure 3 pipeline).

1. *Characterize*: run SWarp on the emulated platform (the stand-in for
   real Cori/Summit executions) and measure observed task times and I/O
   fractions.
2. *Calibrate*: recover each task's sequential compute time with
   Eq. (4), ``T_c(1) = p (1 − λ_io) T(p)``.
3. *Validate*: drive the simple Table-I simulator with the calibrated
   times and compare its makespans against the emulated measurements.

Run:  python examples/calibration_workflow.py
"""

from repro.emulation.trials import run_trials
from repro.experiments.common import calibrate_swarp
from repro.model import mean_relative_error, trend_agreement
from repro.platform.presets import TABLE_I
from repro.scenarios import run_swarp
from repro.storage import BBMode

FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)


def main() -> None:
    # ------------------------------------------------------------------
    # 1 + 2: characterize on the PFS baseline and calibrate via Eq. (4)
    # ------------------------------------------------------------------
    calibration = calibrate_swarp("cori")
    speed = TABLE_I["cori"]["core_speed"]
    print("Characterization (emulated Cori, PFS baseline, 32 cores):")
    print(f"  observed resample T(32) = {calibration.observed_resample_t:6.2f}s, "
          f"lambda_io = {calibration.lambda_resample:.3f}")
    print(f"  observed combine  T(32) = {calibration.observed_combine_t:6.2f}s, "
          f"lambda_io = {calibration.lambda_combine:.3f}")
    print("Calibration (Eq. 4):")
    print(f"  resample T_c(1) = {calibration.resample_flops / speed:7.1f}s "
          f"({calibration.resample_flops:.2e} flop)")
    print(f"  combine  T_c(1) = {calibration.combine_flops / speed:7.1f}s "
          f"({calibration.combine_flops:.2e} flop)\n")

    # ------------------------------------------------------------------
    # 3: validate against the emulated "measurements" (Figure 10 style)
    # ------------------------------------------------------------------
    print("Validation (private mode, staged-fraction sweep):")
    print(f"{'staged':>7s} {'measured':>10s} {'simulated':>10s} {'error':>7s}")
    measured_curve, simulated_curve = [], []
    for fraction in FRACTIONS:
        measured = run_trials(
            lambda seed: run_swarp(
                system="cori",
                bb_mode=BBMode.PRIVATE,
                input_fraction=fraction,
                include_stage_in=False,
                emulated=True,
                seed=seed,
            ).makespan,
            n_trials=5,
        ).mean
        simulated = run_swarp(
            system="cori",
            bb_mode=BBMode.PRIVATE,
            input_fraction=fraction,
            include_stage_in=False,
            emulated=False,
            resample_flops=calibration.resample_flops,
            combine_flops=calibration.combine_flops,
        ).makespan
        measured_curve.append(measured)
        simulated_curve.append(simulated)
        error = abs(simulated - measured) / measured
        print(f"{fraction:6.0%} {measured:9.2f}s {simulated:9.2f}s {error:6.1%}")

    print(f"\nmean relative error: "
          f"{mean_relative_error(measured_curve, simulated_curve):.1%} "
          "(paper reports 5.6% for private mode)")
    print(f"trend agreement:     "
          f"{trend_agreement(measured_curve, simulated_curve):.0%}")


if __name__ == "__main__":
    main()
