"""Legacy-install shim.

The [project] metadata lives in pyproject.toml; this file exists only so
that ``pip install -e .`` works in offline environments without the
``wheel`` package (pip falls back to ``setup.py develop``).
"""

from setuptools import setup

setup()
