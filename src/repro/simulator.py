"""WRENCH-style simulator facade: files in, trace out.

The paper (Section IV-A): "Our WRENCH simulator takes as input a
description of a workflow and a description of an execution platform ...
the simulator simulates the execution of the workflow and outputs a
time-stamped event trace."

:class:`Simulator` is exactly that entry point: give it a platform
description (a :class:`~repro.platform.PlatformSpec` or a JSON file)
and a workflow (a :class:`~repro.workflow.Workflow` or a WfCommons JSON
trace), pick a burst-buffer configuration, and run.  The CLI wrapper is
``repro-simulate``.  Most callers want the one-call
:func:`repro.simulate` facade instead of instantiating this class.

Storage roles come from each host's explicit
:class:`~repro.platform.HostRole` (``compute``, ``shared_bb``,
``local_bb``, ``pfs``).  Legacy descriptions that rely on the historical
name conventions (``cn*``, ``bb*``, ``*-bb``, ``pfs``) still work:
roles are inferred with a ``DeprecationWarning`` via
:func:`~repro.platform.infer_host_roles`.
"""

from __future__ import annotations

import argparse
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro import des
from repro.compute import ComputeService
from repro.network import DEFAULT_ALLOCATOR, allocator_names
from repro.obs import Observer
from repro.platform import (
    HostRole,
    Platform,
    PlatformSpec,
    infer_host_roles,
    platform_from_json,
)
from repro.storage import (
    BBMode,
    OnNodeBurstBuffer,
    ParallelFileSystem,
    SharedBurstBuffer,
    StorageService,
)
from repro.traces.events import ExecutionTrace
from repro.wms import EngineConfig, FractionPlacement, WorkflowEngine
from repro.wms.policies import DEFAULT_POLICY, policy_names, resolve_policy
from repro.workflow.model import Workflow
from repro.workflow.wfformat import workflow_from_wfformat


@dataclass
class SimulatorConfig:
    """Knobs of one simulation run."""

    bb_mode: BBMode = BBMode.STRIPED
    input_fraction: float = 1.0
    intermediate_fraction: float = 1.0
    output_fraction: float = 0.0
    #: Honor per-task Amdahl alphas instead of Eq. (4)'s perfect speedup.
    use_amdahl_alpha: bool = False
    #: Named bandwidth-sharing discipline for the flow network (see
    #: :func:`repro.network.allocator_names`).  ``"incremental"`` keeps
    #: max-min semantics but solves per dirty component — the fast path
    #: for large flow counts.
    network_allocator: str = DEFAULT_ALLOCATOR
    #: Named queueing discipline for the core allocators (and, in the
    #: contended scenarios, the BB provisioner) — see
    #: :func:`repro.wms.policy_names`.  ``"fifo"`` is the historical,
    #: byte-identical default; the backfill/plan policies consume the
    #: walltime estimates the engine threads through.
    queue_policy: str = DEFAULT_POLICY

    def __post_init__(self) -> None:
        # The string forms ("private"/"striped") still coerce, but the
        # blessed string-accepting surface is now repro.Config — warn so
        # mapping-built SimulatorConfigs migrate there.
        if not isinstance(self.bb_mode, BBMode):
            warnings.warn(
                "passing bb_mode as a string to SimulatorConfig is "
                "deprecated; pass a BBMode enum, or build the run "
                "through repro.Config (which accepts the string forms)",
                DeprecationWarning,
                stacklevel=3,
            )
        self.bb_mode = BBMode(self.bb_mode)
        # Fail fast on unknown policy names (same contract as BBMode).
        if self.queue_policy not in policy_names():
            resolve_policy(self.queue_policy)  # raises with the choices


class Simulator:
    """One-shot workflow simulation on a described platform."""

    def __init__(
        self,
        platform: "PlatformSpec | str | Path",
        workflow: "Workflow | str | Path",
        config: "SimulatorConfig | None" = None,
        observer: Optional[Observer] = None,
    ) -> None:
        if config is not None and not isinstance(config, SimulatorConfig):
            # Accept a repro.Config (or anything Config.from_any does)
            # and keep only the model knobs — observability switches are
            # the caller's concern at this layer.
            from repro.config import Config

            config = Config.from_any(config).to_simulator_config()
        if not isinstance(platform, PlatformSpec):
            platform = platform_from_json(platform)
        if not isinstance(workflow, Workflow):
            workflow = workflow_from_wfformat(workflow)
        # Legacy descriptions carry no roles; infer them from the name
        # conventions (DeprecationWarning) so discovery below is uniform.
        platform = infer_host_roles(platform)
        self.spec = platform
        self.workflow = workflow
        self.config = config or SimulatorConfig()
        #: Optional telemetry sink; attached to the run's environment
        #: before any service is built, so every sample is captured.
        self.observer = observer

        self._compute_hosts = [
            h.name for h in platform.hosts_with_role(HostRole.COMPUTE)
        ]
        if not self._compute_hosts:
            raise ValueError("platform has no compute hosts (role=compute)")
        self._shared_bb_hosts = [
            h.name for h in platform.hosts_with_role(HostRole.SHARED_BB)
        ]
        self._local_bb_hosts: dict[str, str] = {}
        for h in platform.hosts_with_role(HostRole.LOCAL_BB):
            if h.attached_to is None:
                raise ValueError(
                    f"local_bb host {h.name!r} declares no attached_to "
                    "compute host"
                )
            self._local_bb_hosts[h.attached_to] = h.name
        if not platform.hosts_with_role(HostRole.PFS):
            raise ValueError("platform has no PFS host (role=pfs)")

    def run(self) -> ExecutionTrace:
        """Simulate the workflow execution; returns the event trace."""
        env = des.Environment()
        if self.observer is not None:
            self.observer.attach(env)
        platform = Platform(
            env, self.spec, allocator=self.config.network_allocator
        )
        pfs = ParallelFileSystem(platform)
        compute = ComputeService(
            platform,
            self._compute_hosts,
            use_amdahl_alpha=self.config.use_amdahl_alpha,
            queue_policy=self.config.queue_policy,
        )
        if (
            self.observer is not None
            and self.config.queue_policy != DEFAULT_POLICY
        ):
            # Structured provenance for non-default disciplines (the
            # manifest always carries queue_policy; default runs keep
            # their historical event stream byte-identical).
            self.observer.log_event(
                "wms", "queue_policy", policy=self.config.queue_policy
            )

        bb_services: dict[str, StorageService] = {}

        def bb_for_host(host: str) -> Optional[StorageService]:
            if host in bb_services:
                return bb_services[host]
            if host in self._local_bb_hosts:
                service: StorageService = OnNodeBurstBuffer(
                    platform, self._local_bb_hosts[host]
                )
            elif self._shared_bb_hosts:
                service = SharedBurstBuffer(
                    platform,
                    self._shared_bb_hosts,
                    self.config.bb_mode,
                    owner_host=host
                    if self.config.bb_mode == BBMode.PRIVATE
                    else None,
                )
            else:
                return None
            bb_services[host] = service
            return service

        has_bb = bool(self._shared_bb_hosts or self._local_bb_hosts)
        engine = WorkflowEngine(
            platform,
            self.workflow,
            compute,
            pfs,
            bb_for_host=bb_for_host if has_bb else None,
            placement=FractionPlacement(
                input_fraction=self.config.input_fraction,
                intermediate_fraction=self.config.intermediate_fraction,
                output_fraction=self.config.output_fraction,
            ),
            config=EngineConfig(use_amdahl_alpha=self.config.use_amdahl_alpha),
        )
        return engine.run()

    def export_telemetry(
        self,
        directory: "str | Path",
        trace: Optional[ExecutionTrace] = None,
        profile=None,
    ) -> Path:
        """Write this run's telemetry (manifest, Chrome trace, CSVs).

        Requires the simulator to have been constructed with an
        :class:`~repro.obs.Observer` and :meth:`run` to have completed;
        ``trace`` enriches the manifest with result figures.  ``profile``
        (a :class:`~repro.profile.Profile`) additionally writes
        ``profile.json``/``profile.folded`` and annotates the Perfetto
        trace with the critical-path lane.
        """
        from repro.obs import build_manifest, export_run

        if self.observer is None:
            raise ValueError("simulator was constructed without an observer")
        manifest = build_manifest(
            config=self.config,
            platform=self.spec,
            workflow=self.workflow,
            trace=trace,
            observer=self.observer,
        )
        return export_run(
            self.observer, directory, manifest=manifest, profile=profile
        )


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: simulate a workflow JSON on a platform JSON."""
    parser = argparse.ArgumentParser(
        prog="repro-simulate",
        description="Simulate a WfCommons workflow on a JSON-described "
        "platform with burst buffers.",
    )
    parser.add_argument("--platform", required=True, help="platform JSON file")
    parser.add_argument("--workflow", required=True, help="WfCommons JSON file")
    parser.add_argument(
        "--mode",
        choices=[m.value for m in BBMode],
        default=BBMode.STRIPED.value,
        help="shared burst buffer allocation mode",
    )
    parser.add_argument("--input-fraction", type=float, default=1.0)
    parser.add_argument("--intermediate-fraction", type=float, default=1.0)
    parser.add_argument("--output-fraction", type=float, default=0.0)
    parser.add_argument(
        "--network-allocator",
        choices=allocator_names(),
        default=DEFAULT_ALLOCATOR,
        help="bandwidth-sharing discipline for the flow network "
        "(incremental = fast per-component max-min)",
    )
    parser.add_argument(
        "--queue-policy",
        choices=policy_names(),
        default=DEFAULT_POLICY,
        help="queueing discipline for core allocation (fifo = strict "
        "FIFO, the paper's model; backfill/plan use walltime estimates)",
    )
    parser.add_argument("-o", "--output", help="write the trace JSON here")
    parser.add_argument(
        "--gantt", action="store_true", help="print an ASCII Gantt chart"
    )
    parser.add_argument(
        "--obs-dir",
        help="export run telemetry (manifest, Perfetto trace, metric CSVs) "
        "into this directory",
    )
    parser.add_argument(
        "--obs-metrics",
        help="comma-separated metric groups to collect "
        "(storage,network,compute,engine,des); default: all",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="print the critical-path makespan attribution; with "
        "--obs-dir, also write profile.json + profile.folded and "
        "annotate the Perfetto trace",
    )
    parser.add_argument(
        "--live",
        help="stream live telemetry into this directory while the run "
        "executes (tail with `repro-obs watch`)",
    )
    parser.add_argument(
        "--monitors",
        action="store_true",
        help="run the online invariant monitors (BB occupancy, link "
        "capacity, clock monotonicity, lease balance); a violation "
        "aborts the run with the offending event chain",
    )
    args = parser.parse_args(argv)

    from repro.config import Config

    groups = (
        tuple(g.strip() for g in args.obs_metrics.split(",") if g.strip())
        if args.obs_metrics
        else None
    )
    config = Config(
        bb_mode=BBMode(args.mode),
        input_fraction=args.input_fraction,
        intermediate_fraction=args.intermediate_fraction,
        output_fraction=args.output_fraction,
        network_allocator=args.network_allocator,
        queue_policy=args.queue_policy,
        metrics=groups,
        monitors=args.monitors,
        live_dir=args.live,
        obs_dir=args.obs_dir,
        profile=args.profile,
    )
    observer = config.make_observer()

    simulator = Simulator(
        Path(args.platform),
        Path(args.workflow),
        config.to_simulator_config(),
        observer=observer,
    )
    trace = simulator.run()
    print(f"workflow: {trace.workflow_name}")
    print(f"tasks:    {len(trace.records)}")
    print(f"makespan: {trace.makespan:.3f}s")
    if args.gantt:
        from repro.traces.gantt import render_gantt

        print()
        print(render_gantt(trace))
    if args.output:
        trace.to_json(args.output)
        print(f"trace written to {args.output}")
    profile = None
    if args.profile:
        from repro.profile import build_profile

        profile = build_profile(trace, observer=observer)
        print()
        print("critical-path attribution (sums to the makespan):")
        for resource, seconds in sorted(
            profile.attribution.items(), key=lambda kv: (-kv[1], kv[0])
        ):
            share = profile.shares.get(resource, 0.0)
            print(f"  {resource:<28} {seconds:>12.3f}s {100 * share:>6.1f}%")
        print(f"  dominant: {profile.dominant_resource} "
              f"({profile.dominant_class}-bound)")
    if args.obs_dir:
        directory = simulator.export_telemetry(
            args.obs_dir, trace=trace, profile=profile
        )
        print(f"telemetry written to {directory}")
    elif observer is not None and observer.bus is not None:
        observer.bus.close()  # export_run closes it on the --obs-dir path
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
