"""The v2 configuration surface: one typed object for a whole run.

Historically the knobs of a run were scattered: model knobs lived in
:class:`~repro.simulator.SimulatorConfig`, observability switches were
keyword arguments of :func:`repro.simulate` (``monitors=``,
``live_dir=``), CLI flags of ``repro-simulate`` (``--obs-dir``,
``--profile``), and ad-hoc mappings.  :class:`Config` subsumes them:

* the *model* knobs — exactly :class:`SimulatorConfig`'s fields
  (``bb_mode``, the placement fractions, ``use_amdahl_alpha``,
  ``network_allocator``, ``queue_policy``);
* the *observability* knobs — whether to observe, which metric groups,
  whether to run the invariant monitors, where to stream live
  telemetry, where to export the bundle, whether to build the
  critical-path profile.

:meth:`Config.from_any` is the single coercion path: it accepts a
``Config``, a ``SimulatorConfig``, a plain mapping (the historical
``simulate(config={...})`` shape), a path to a JSON file, or ``None``,
and always returns a :class:`Config`.  ``repro.simulate()``,
``repro-simulate``, and the experiment modules all funnel through it,
so a configuration written once works everywhere.

String ``bb_mode`` values are coerced silently here — this is the
blessed front door — whereas passing them straight to
``SimulatorConfig`` now earns a :class:`DeprecationWarning`.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass, fields
from pathlib import Path
from typing import TYPE_CHECKING, Any, Mapping, Optional

from repro.network import DEFAULT_ALLOCATOR
from repro.storage import BBMode
from repro.wms.policies import DEFAULT_POLICY, policy_names, resolve_policy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs import Observer
    from repro.simulator import SimulatorConfig

#: Schema tag serialized by :meth:`Config.to_doc`.
CONFIG_SCHEMA = "repro.api.config/2"

#: Model-knob field names (the ``SimulatorConfig`` subset), in order.
_MODEL_FIELDS = (
    "bb_mode",
    "input_fraction",
    "intermediate_fraction",
    "output_fraction",
    "use_amdahl_alpha",
    "network_allocator",
    "queue_policy",
)

#: Observability-switch field names.
_OBS_FIELDS = (
    "observe",
    "metrics",
    "monitors",
    "live_dir",
    "obs_dir",
    "profile",
)


@dataclass
class Config:
    """Every knob of one simulation run, model and observability alike."""

    # --- model knobs (mirror SimulatorConfig field for field) ---------
    bb_mode: BBMode = BBMode.STRIPED
    input_fraction: float = 1.0
    intermediate_fraction: float = 1.0
    output_fraction: float = 0.0
    use_amdahl_alpha: bool = False
    network_allocator: str = DEFAULT_ALLOCATOR
    queue_policy: str = DEFAULT_POLICY

    # --- observability switches ---------------------------------------
    #: Collect telemetry even when no other switch demands it.
    observe: bool = False
    #: Metric groups to collect (``None`` = all groups when observing).
    metrics: Optional[tuple] = None
    #: Run the online invariant monitors (implies observing).
    monitors: bool = False
    #: Stream live telemetry (``repro.obs.live/1``) into this directory.
    live_dir: Optional[str] = None
    #: Export the telemetry bundle (manifest, trace, CSVs) here.
    obs_dir: Optional[str] = None
    #: Build the critical-path profile after the run.
    profile: bool = False

    def __post_init__(self) -> None:
        # The blessed coercion point: strings become enums quietly.
        self.bb_mode = BBMode(self.bb_mode)
        if self.queue_policy not in policy_names():
            resolve_policy(self.queue_policy)  # raises with the choices
        if self.metrics is not None:
            self.metrics = tuple(self.metrics)
        if self.live_dir is not None:
            self.live_dir = str(self.live_dir)
        if self.obs_dir is not None:
            self.obs_dir = str(self.obs_dir)

    # ------------------------------------------------------------------
    # Coercion
    # ------------------------------------------------------------------
    @classmethod
    def from_any(
        cls,
        value: "Config | SimulatorConfig | Mapping[str, Any] | str | Path | None",
    ) -> "Config":
        """Coerce any accepted configuration shape to a :class:`Config`.

        ``None`` → defaults; ``Config`` passes through unchanged;
        ``SimulatorConfig`` lifts the model knobs (observability stays
        off); a mapping may mix model and observability keys; a path
        names a JSON file holding such a mapping.
        """
        from repro.simulator import SimulatorConfig

        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, SimulatorConfig):
            return cls(**{f: getattr(value, f) for f in _MODEL_FIELDS})
        if isinstance(value, (str, Path)):
            doc = json.loads(Path(value).read_text())
            if not isinstance(doc, dict):
                raise ValueError(
                    f"config file {value!s} must hold a JSON object, "
                    f"got {type(doc).__name__}"
                )
            return cls.from_any(doc)
        if isinstance(value, Mapping):
            known = set(_MODEL_FIELDS) | set(_OBS_FIELDS)
            extra = set(value) - known - {"schema"}
            if extra:
                raise TypeError(
                    f"unknown config keys: {', '.join(sorted(extra))} "
                    f"(choose from {', '.join(sorted(known))})"
                )
            return cls(**{k: v for k, v in value.items() if k != "schema"})
        raise TypeError(
            f"cannot build a Config from {type(value).__name__!r}"
        )

    # ------------------------------------------------------------------
    # Projections
    # ------------------------------------------------------------------
    def to_simulator_config(self) -> "SimulatorConfig":
        """The model-knob subset as a :class:`SimulatorConfig`."""
        from repro.simulator import SimulatorConfig

        return SimulatorConfig(**{f: getattr(self, f) for f in _MODEL_FIELDS})

    def wants_observer(self) -> bool:
        """Whether any switch requires the run to be observed."""
        return bool(
            self.observe
            or self.metrics is not None
            or self.monitors
            or self.live_dir is not None
            or self.obs_dir is not None
            or self.profile
        )

    def make_observer(self) -> "Optional[Observer]":
        """Build the run's :class:`~repro.obs.Observer`, or ``None``.

        Returns an observer (with the live bus attached when
        ``live_dir`` is set) iff :meth:`wants_observer`.
        """
        if not self.wants_observer():
            return None
        from repro.obs import Observer

        observer = Observer(
            metrics=list(self.metrics) if self.metrics is not None else None,
            monitors=self.monitors,
        )
        if self.live_dir is not None:
            from repro.obs import LiveBus

            observer.attach_bus(LiveBus(self.live_dir))
        return observer

    def replace(self, **changes: Any) -> "Config":
        """A copy with ``changes`` applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)

    # ------------------------------------------------------------------
    # Serialization (the manifest v2 form)
    # ------------------------------------------------------------------
    def to_doc(self) -> dict[str, Any]:
        """JSON-ready document; ``from_doc`` round-trips it exactly."""
        doc: dict[str, Any] = {"schema": CONFIG_SCHEMA}
        for f in fields(self):
            value = getattr(self, f.name)
            if isinstance(value, BBMode):
                value = value.value
            elif isinstance(value, tuple):
                value = list(value)
            doc[f.name] = value
        return doc

    @classmethod
    def from_doc(cls, doc: Mapping[str, Any]) -> "Config":
        """Rebuild a :class:`Config` from :meth:`to_doc` output.

        Also reads the *v1* manifest config shape (model knobs only, no
        ``schema`` tag) — old manifests stay loadable forever.
        """
        return cls.from_any(doc)
