"""Span-based task lifecycle tracing.

A :class:`Span` is one named interval on a track (a host lane in the
trace viewer).  The engine emits one enclosing span per task plus one
child span per lifecycle phase — ``stage-in``/``read``/``compute``/
``write``/``stage-out`` — derived from the phase timestamps the
:class:`~repro.traces.events.TaskRecord` already collects.  Because
child spans are time-contained in the task span on the same track,
Chrome-trace viewers (Perfetto, ``chrome://tracing``) nest them
automatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.traces.events import TaskRecord

#: Task categories whose single I/O phase is a staging copy, not a read.
_STAGE_CATEGORIES = ("stage_in", "stage_out")


@dataclass(frozen=True)
class Span:
    """One named interval of simulated time on a track."""

    name: str
    category: str                 # task group or lifecycle phase
    track: str                    # host lane the span renders on
    start: float
    end: float
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


def spans_from_record(record: TaskRecord, category: str) -> list[Span]:
    """Task + phase spans for one completed task.

    ``category`` is the task's lifecycle category (``compute``,
    ``stage_in``, ``stage_out``).  Zero-duration phases are omitted;
    the enclosing task span is always emitted (even when instantaneous,
    so every task shows up in the viewer).
    """
    spans = [
        Span(
            name=record.name,
            category=category,
            track=record.host,
            start=record.start,
            end=record.end,
            args={
                "group": record.group,
                "cores": record.cores,
                "io_fraction": record.io_fraction,
            },
        )
    ]
    if category in _STAGE_CATEGORIES:
        # Staging tasks have one sequential copy phase spanning the task.
        phases = [(category.replace("_", "-"), record.start, record.end)]
    else:
        phases = [
            ("read", record.read_start, record.read_end),
            ("compute", record.read_end, record.compute_end),
            ("write", record.compute_end, record.write_end),
        ]
    for phase, start, end in phases:
        if end <= start:
            continue
        spans.append(
            Span(
                name=f"{record.name}:{phase}",
                category=phase,
                track=record.host,
                start=start,
                end=end,
            )
        )
    return spans
