"""Schema checks for exported telemetry (CI's observability smoke gate).

``python -m repro.obs <dir>`` validates a directory produced by
:func:`repro.obs.exporters.export_run`:

* ``manifest.json`` — schema tag, simulator version, config shape;
* ``trace.json`` — Chrome trace-event JSON with non-negative, monotonic
  timestamps, non-negative ``dur`` on complete (``X``) events, and
  balanced ``B``/``E`` pairs;
* ``metrics/`` — parseable CSVs with non-decreasing timestamps, and
  every storage occupancy series peaking at or below the service's
  recorded capacity.

Each check returns a list of human-readable error strings (empty =
valid) so tests can assert on specific failures.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.obs.manifest import MANIFEST_SCHEMA, MANIFEST_SCHEMA_V2

#: Relative slack for float-accumulation noise in capacity comparisons.
_CAPACITY_TOLERANCE = 1e-9


# ----------------------------------------------------------------------
# Manifest
# ----------------------------------------------------------------------
def validate_manifest(doc: Any) -> list[str]:
    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["manifest: document is not a JSON object"]
    if doc.get("schema") not in (MANIFEST_SCHEMA, MANIFEST_SCHEMA_V2):
        errors.append(
            f"manifest: schema is {doc.get('schema')!r}, expected "
            f"{MANIFEST_SCHEMA!r} or {MANIFEST_SCHEMA_V2!r}"
        )
    if not isinstance(doc.get("simulator_version"), str):
        errors.append("manifest: missing simulator_version")
    config = doc.get("config")
    if config is not None:
        if not isinstance(config, dict):
            errors.append("manifest: config is not an object")
        else:
            for key in ("bb_mode", "input_fraction", "intermediate_fraction", "output_fraction"):
                if key not in config:
                    errors.append(f"manifest: config missing {key!r}")
    platform = doc.get("platform")
    if platform is not None:
        # A non-dict platform used to crash with AttributeError (and a
        # crash in a list comprehension upstream let some malformed
        # manifests validate clean) — check the shape first.
        if not isinstance(platform, dict):
            errors.append("manifest: platform is not an object")
        elif not isinstance(platform.get("digest"), str):
            errors.append("manifest: platform.digest missing or not a string")
    metrics = doc.get("metrics")
    if metrics is not None and (
        not isinstance(metrics, list)
        or not all(isinstance(name, str) for name in metrics)
    ):
        errors.append("manifest: metrics is not a list of metric names")
    for key in ("workflow", "result"):
        value = doc.get(key)
        if value is not None and not isinstance(value, dict):
            errors.append(f"manifest: {key} is not an object")
    return errors


# ----------------------------------------------------------------------
# Chrome trace
# ----------------------------------------------------------------------
def validate_chrome_trace(doc: Any) -> list[str]:
    errors: list[str] = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ["trace: missing traceEvents array"]

    open_begins: dict[tuple[Any, Any, Any], int] = {}
    last_ts: Optional[float] = None
    for i, event in enumerate(doc["traceEvents"]):
        if not isinstance(event, dict):
            errors.append(f"trace: event #{i} is not an object")
            continue
        phase = event.get("ph")
        if phase == "M":  # metadata events carry no timestamp
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)):
            errors.append(f"trace: event #{i} ({event.get('name')!r}) has no ts")
            continue
        if ts < 0:
            errors.append(f"trace: event #{i} has negative ts {ts}")
        if last_ts is not None and ts < last_ts:
            errors.append(
                f"trace: event #{i} ts {ts} precedes previous ts {last_ts} "
                "(events must be time-sorted)"
            )
        last_ts = max(ts, last_ts) if last_ts is not None else ts
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                errors.append(
                    f"trace: X event #{i} ({event.get('name')!r}) has bad dur "
                    f"{duration!r}"
                )
        elif phase == "B":
            key = (event.get("pid"), event.get("tid"), event.get("name"))
            open_begins[key] = open_begins.get(key, 0) + 1
        elif phase == "E":
            key = (event.get("pid"), event.get("tid"), event.get("name"))
            count = open_begins.get(key, 0)
            if count <= 0:
                errors.append(
                    f"trace: E event #{i} ({event.get('name')!r}) has no open B"
                )
            else:
                open_begins[key] = count - 1
    for (pid, tid, name), count in sorted(
        open_begins.items(), key=lambda kv: repr(kv[0])
    ):
        if count:
            errors.append(
                f"trace: {count} unclosed B event(s) for {name!r} "
                f"(pid={pid}, tid={tid})"
            )
    return errors


# ----------------------------------------------------------------------
# Metric CSVs
# ----------------------------------------------------------------------
def _read_kv_csv(path: Path, errors: list[str]) -> dict[str, float]:
    out: dict[str, float] = {}
    lines = path.read_text().splitlines()
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        name, _, raw = line.rpartition(",")
        try:
            out[name] = float(raw)
        except ValueError:
            errors.append(f"{path.name}:{lineno}: bad value {raw!r}")
    return out


def _read_series_csv(path: Path, errors: list[str]) -> list[tuple[float, float]]:
    rows: list[tuple[float, float]] = []
    lines = path.read_text().splitlines()
    if not lines or lines[0] != "time,value":
        errors.append(f"{path.name}: missing 'time,value' header")
        return rows
    previous: Optional[float] = None
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        try:
            raw_t, raw_v = line.split(",", 1)
            time, value = float(raw_t), float(raw_v)
        except ValueError:
            errors.append(f"{path.name}:{lineno}: unparseable row {line!r}")
            continue
        if time < 0:
            errors.append(f"{path.name}:{lineno}: negative timestamp {time}")
        if previous is not None and time < previous:
            errors.append(
                f"{path.name}:{lineno}: timestamp {time} precedes {previous}"
            )
        previous = time
        rows.append((time, value))
    return rows


def validate_metrics_dir(directory: "str | Path") -> list[str]:
    directory = Path(directory)
    errors: list[str] = []
    index_path = directory / "index.csv"
    if not index_path.is_file():
        return [f"metrics: missing {index_path.name}"]

    series: dict[str, list[tuple[float, float]]] = {}
    for lineno, line in enumerate(index_path.read_text().splitlines()[1:], start=2):
        if not line.strip():
            continue
        metric, _, filename = line.rpartition(",")
        path = directory / filename
        if not path.is_file():
            errors.append(f"metrics: index.csv:{lineno}: missing file {filename}")
            continue
        series[metric] = _read_series_csv(path, errors)

    gauges_path = directory / "gauges.csv"
    gauges = _read_kv_csv(gauges_path, errors) if gauges_path.is_file() else {}

    # Every occupancy series must respect its service's capacity.
    for metric, rows in sorted(series.items()):
        if not (metric.startswith("storage.") and metric.endswith(".occupancy_bytes")):
            continue
        service = metric[len("storage.") : -len(".occupancy_bytes")]
        capacity = gauges.get(f"storage.{service}.capacity_bytes")
        if capacity is None:
            errors.append(f"metrics: no capacity gauge for service {service!r}")
            continue
        peak = max((v for _, v in rows), default=0.0)
        if peak > capacity * (1 + _CAPACITY_TOLERANCE):
            errors.append(
                f"metrics: {metric} peak {peak} exceeds capacity {capacity}"
            )
        if any(v < 0 for _, v in rows):
            errors.append(f"metrics: {metric} has negative occupancy samples")
    return errors


# ----------------------------------------------------------------------
# Structured event log (repro.obs.log/1)
# ----------------------------------------------------------------------
def validate_events_ndjson(path: "str | Path") -> list[str]:
    """Validate an ``events.ndjson`` stream (header + event envelopes)."""
    from repro.obs.log import COMPONENTS, LOG_SCHEMA, iter_ndjson

    path = Path(path)
    errors: list[str] = []
    try:
        records = list(iter_ndjson(path))
    except (OSError, json.JSONDecodeError) as error:
        return [f"events: unreadable NDJSON ({error})"]
    if not records:
        return ["events: empty stream (missing schema header)"]
    header = records[0]
    if not isinstance(header, dict) or header.get("schema") != LOG_SCHEMA:
        errors.append(
            f"events: header schema is "
            f"{header.get('schema') if isinstance(header, dict) else header!r}, "
            f"expected {LOG_SCHEMA!r}"
        )
        return errors
    for i, record in enumerate(records[1:], start=1):
        if not isinstance(record, dict):
            errors.append(f"events: record #{i} is not an object")
            continue
        missing = {"sim_time", "component", "event", "fields"} - record.keys()
        if missing:
            errors.append(
                f"events: record #{i} missing {sorted(missing)}"
            )
            continue
        if record["component"] not in COMPONENTS:
            errors.append(
                f"events: record #{i} has unknown component "
                f"{record['component']!r} (expected one of {list(COMPONENTS)})"
            )
        if not isinstance(record["sim_time"], (int, float)):
            errors.append(f"events: record #{i} has non-numeric sim_time")
        elif record["sim_time"] < 0:
            errors.append(
                f"events: record #{i} has negative sim_time {record['sim_time']}"
            )
        if not isinstance(record["event"], str) or not record["event"]:
            errors.append(f"events: record #{i} has no event name")
        if not isinstance(record["fields"], dict):
            errors.append(f"events: record #{i} fields is not an object")
        ts = record.get("ts")
        if ts is not None and not isinstance(ts, (int, float)):
            errors.append(f"events: record #{i} has non-numeric ts {ts!r}")
    return errors


# ----------------------------------------------------------------------
# Live telemetry directory (repro.obs.live/1)
# ----------------------------------------------------------------------
def validate_live_dir(directory: "str | Path") -> list[str]:
    """Validate a live-bus directory (snapshots, events, heartbeat).

    Mid-flight directories are valid: a truncated final line is the
    producer mid-write, and ``closed: false`` in the heartbeat just
    means the run is still going.
    """
    from repro.obs.live import LIVE_SCHEMA
    from repro.obs.log import iter_ndjson

    directory = Path(directory)
    errors: list[str] = []

    snapshots_path = directory / "snapshots.ndjson"
    if not snapshots_path.is_file():
        errors.append("live: missing snapshots.ndjson")
    else:
        try:
            records = list(iter_ndjson(snapshots_path))
        except (OSError, json.JSONDecodeError) as error:
            records = []
            errors.append(f"live: snapshots.ndjson unreadable ({error})")
        if records:
            if records[0].get("schema") != LIVE_SCHEMA:
                errors.append(
                    f"live: snapshots header schema is "
                    f"{records[0].get('schema')!r}, expected {LIVE_SCHEMA!r}"
                )
            last_seq: Optional[int] = None
            for i, snap in enumerate(records[1:], start=1):
                seq = snap.get("seq")
                if not isinstance(seq, int):
                    errors.append(f"live: snapshot #{i} has no integer seq")
                    continue
                if last_seq is not None and seq <= last_seq:
                    errors.append(
                        f"live: snapshot #{i} seq {seq} does not increase "
                        f"past {last_seq}"
                    )
                last_seq = seq
                for key in ("counters", "gauges", "series"):
                    if not isinstance(snap.get(key), dict):
                        errors.append(f"live: snapshot #{i} missing {key!r}")
                dropped = snap.get("dropped")
                if not isinstance(dropped, int) or dropped < 0:
                    errors.append(
                        f"live: snapshot #{i} has bad dropped count {dropped!r}"
                    )
        elif not errors:
            errors.append("live: snapshots.ndjson has no schema header")

    events_path = directory / "events.ndjson"
    if events_path.is_file():
        from repro.obs.live import LIVE_SCHEMA as _live_schema

        try:
            records = list(iter_ndjson(events_path))
        except (OSError, json.JSONDecodeError) as error:
            records = []
            errors.append(f"live: events.ndjson unreadable ({error})")
        if records and records[0].get("schema") != _live_schema:
            errors.append(
                f"live: events header schema is {records[0].get('schema')!r}, "
                f"expected {_live_schema!r}"
            )
        for i, record in enumerate(records[1:], start=1):
            if not isinstance(record.get("kind"), str):
                errors.append(f"live: event #{i} has no kind")
            if not isinstance(record.get("ts"), (int, float)):
                errors.append(f"live: event #{i} has no wall-clock ts")

    heartbeat_path = directory / "heartbeat.json"
    if heartbeat_path.is_file():
        try:
            heartbeat = json.loads(heartbeat_path.read_text())
        except json.JSONDecodeError as error:
            heartbeat = None
            errors.append(f"live: heartbeat.json invalid JSON ({error})")
        if heartbeat is not None:
            if not isinstance(heartbeat, dict):
                errors.append("live: heartbeat.json is not an object")
            else:
                if not isinstance(heartbeat.get("ts"), (int, float)):
                    errors.append("live: heartbeat has no numeric ts")
                if not isinstance(heartbeat.get("seq"), int):
                    errors.append("live: heartbeat has no integer seq")
                if not isinstance(heartbeat.get("closed"), bool):
                    errors.append("live: heartbeat has no closed flag")
    else:
        errors.append("live: missing heartbeat.json")
    return errors


# ----------------------------------------------------------------------
# Critical-path profile
# ----------------------------------------------------------------------
def validate_profile_doc(doc: Any) -> list[str]:
    """Validate a ``profile.json`` document (schema ``repro.profile/1``).

    Checks the schema tag, that the critical path is a contiguous
    partition of ``[0, makespan]``, that the attribution sums to the
    makespan within relative 1e-9, and that every recorded wait uses a
    cause from the closed :class:`~repro.obs.waits.WaitCause` enum.
    """
    from repro.obs.waits import WaitCause

    errors: list[str] = []
    if not isinstance(doc, dict):
        return ["profile: document is not a JSON object"]
    schema = doc.get("schema")
    if schema != "repro.profile/1":
        errors.append(
            f"profile: schema is {schema!r}, expected 'repro.profile/1'"
        )
        return errors
    makespan = doc.get("makespan")
    if not isinstance(makespan, (int, float)) or makespan < 0:
        errors.append(f"profile: bad makespan {makespan!r}")
        return errors
    tol = 1e-9 * max(1.0, abs(makespan))

    path = doc.get("critical_path")
    if not isinstance(path, list):
        errors.append("profile: missing critical_path array")
        return errors
    previous_end = 0.0
    total = 0.0
    for i, segment in enumerate(path):
        if not isinstance(segment, dict):
            errors.append(f"profile: segment #{i} is not an object")
            continue
        start, end = segment.get("start"), segment.get("end")
        if not isinstance(start, (int, float)) or not isinstance(end, (int, float)):
            errors.append(f"profile: segment #{i} has non-numeric bounds")
            continue
        if end < start - tol:
            errors.append(f"profile: segment #{i} ends before it starts")
        if abs(start - previous_end) > tol:
            errors.append(
                f"profile: segment #{i} starts at {start}, previous ended "
                f"at {previous_end} (critical path must be contiguous)"
            )
        if not segment.get("resource"):
            errors.append(f"profile: segment #{i} has no resource")
        previous_end = end
        total += end - start
    if path and abs(previous_end - makespan) > tol:
        errors.append(
            f"profile: critical path ends at {previous_end}, makespan is "
            f"{makespan}"
        )

    attribution = doc.get("attribution")
    if not isinstance(attribution, dict):
        errors.append("profile: missing attribution object")
    else:
        recorded = sum(attribution.values())
        if abs(recorded - makespan) > tol:
            errors.append(
                f"profile: attribution sums to {recorded}, makespan is "
                f"{makespan} (must agree within rel 1e-9)"
            )
        if abs(recorded - total) > tol:
            errors.append(
                f"profile: attribution ({recorded}) disagrees with the "
                f"critical path ({total})"
            )

    known_causes = {cause.value for cause in WaitCause}
    for i, wait in enumerate(doc.get("waits", ())):
        if not isinstance(wait, dict):
            errors.append(f"profile: wait #{i} is not an object")
            continue
        cause = wait.get("cause")
        if cause not in known_causes:
            errors.append(
                f"profile: wait #{i} has unknown cause {cause!r} "
                f"(expected one of {sorted(known_causes)})"
            )
    return errors


# ----------------------------------------------------------------------
# Whole-directory validation
# ----------------------------------------------------------------------
def validate_obs_dir(directory: "str | Path") -> list[str]:
    """Validate a full telemetry directory; returns all errors found."""
    directory = Path(directory)
    errors: list[str] = []

    manifest_path = directory / "manifest.json"
    if manifest_path.is_file():
        try:
            errors.extend(validate_manifest(json.loads(manifest_path.read_text())))
        except json.JSONDecodeError as error:
            errors.append(f"manifest: invalid JSON ({error})")
    else:
        errors.append("missing manifest.json")

    trace_path = directory / "trace.json"
    if trace_path.is_file():
        try:
            errors.extend(validate_chrome_trace(json.loads(trace_path.read_text())))
        except json.JSONDecodeError as error:
            errors.append(f"trace: invalid JSON ({error})")
    else:
        errors.append("missing trace.json")

    metrics_dir = directory / "metrics"
    if metrics_dir.is_dir():
        errors.extend(validate_metrics_dir(metrics_dir))
    else:
        errors.append("missing metrics/ directory")

    # profile.json is optional; when present it must be a valid
    # repro.profile/1 document.
    profile_path = directory / "profile.json"
    if profile_path.is_file():
        try:
            errors.extend(validate_profile_doc(json.loads(profile_path.read_text())))
        except json.JSONDecodeError as error:
            errors.append(f"profile: invalid JSON ({error})")

    # events.ndjson and live/ are optional; when present they must be
    # valid repro.obs.log/1 and repro.obs.live/1 streams.
    events_path = directory / "events.ndjson"
    if events_path.is_file():
        errors.extend(validate_events_ndjson(events_path))
    live_dir = directory / "live"
    if live_dir.is_dir():
        errors.extend(validate_live_dir(live_dir))
    return errors


#: Which file each validator's error prefix points at, so the CLI can
#: name the failing file rather than just the directory.
_COMPONENT_FILES = {
    "manifest": "manifest.json",
    "trace": "trace.json",
    "metrics": "metrics",
    "profile": "profile.json",
    "events": "events.ndjson",
    "live": "live",
}


def error_path(directory: "str | Path", error: str) -> Path:
    """The file an error string from :func:`validate_obs_dir` refers to."""
    directory = Path(directory)
    component = error.split(":", 1)[0]
    if error.startswith("missing "):
        component = error[len("missing "):].rstrip("/ ").partition(".")[0]
        if component == "metrics":
            return directory / "metrics"
    name = _COMPONENT_FILES.get(component)
    return directory / name if name else directory


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI: validate one or more telemetry directories.

    Exits non-zero when *any* directory has *any* schema violation, and
    names the failing file in each diagnostic.
    """
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Validate exported simulation telemetry "
        "(manifest, Chrome trace, metric CSVs, event log, live stream).",
    )
    parser.add_argument("directories", nargs="+", help="telemetry directories")
    args = parser.parse_args(argv)

    failed = False
    for directory in args.directories:
        errors = validate_obs_dir(directory)
        if errors:
            failed = True
            for error in errors:
                print(f"{error_path(directory, error)}: {error}", file=sys.stderr)
        else:
            print(f"{directory}: ok")
    return 1 if failed else 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
