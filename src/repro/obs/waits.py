"""Wait-cause vocabulary: *why* a task was not making progress.

The observer's spans record *what* a task did (read/compute/write); the
wait layer records what it was **waiting for** — the causal signal a
critical-path profiler (:mod:`repro.profile`) needs to attribute
makespan to resources instead of merely to phases.

The taxonomy is a **closed enum** on purpose: every hook site must pass
a :class:`WaitCause` member (enforced by lint rule SIM070), so profiles
from different runs are always comparable — no ad-hoc cause strings
that drift between call sites.

Hook sites (one per decision point that can delay a task):

==============  ====================================================
cause           decision site
==============  ====================================================
DEPENDENCY      ``wms/engine.py`` — waiting for parent tasks
CORES           ``compute/allocator.py`` — FIFO gang-allocation queue
MEMORY          ``wms/engine.py`` — host RAM pool reservation
BB_CAPACITY     ``storage/provisioning.py`` — DataWarp pool exhausted
==============  ====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class WaitCause(str, enum.Enum):
    """The closed set of reasons a task can be blocked."""

    #: Waiting for one or more parent tasks to complete.
    DEPENDENCY = "dependency"
    #: Waiting in a host's FIFO core-allocation queue.
    CORES = "cores"
    #: Waiting for RAM to be released on the assigned host.
    MEMORY = "memory"
    #: Waiting for burst-buffer allocation capacity (DataWarp pool).
    BB_CAPACITY = "bb_capacity"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class WaitInterval:
    """One closed blocked interval of one task."""

    task: str
    cause: WaitCause
    start: float
    end: float
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict:
        return {
            "task": self.task,
            "cause": self.cause.value,
            "start": self.start,
            "end": self.end,
            "detail": self.detail,
        }
