"""``python -m repro.obs <dir>`` — validate exported telemetry."""

from repro.obs.validate import main

if __name__ == "__main__":
    raise SystemExit(main())
