"""``python -m repro.obs <dir>`` — validate exported telemetry.

Kept as the bare-directories form of ``repro-obs validate`` for CI
scripts that predate the ``repro-obs`` entry point.
"""

from repro.obs.validate import main

if __name__ == "__main__":
    raise SystemExit(main())
