"""Observability: resource telemetry, task spans, and trace exporters.

A zero-cost-when-disabled instrumentation layer threaded through the
DES kernel, compute service, storage services, flow network, and
workflow engine.  Components publish into an :class:`Observer` through
lightweight hook points guarded by a single ``env.obs is not None``
check; with no observer attached the simulator behaves (and times)
exactly as before.

Quick start::

    from repro import des
    from repro.obs import Observer, export_run

    obs = Observer()                    # or Observer(metrics=["storage"])
    env = des.Environment()
    obs.attach(env)
    ...                                 # build and run on env
    export_run(obs, "telemetry/")       # manifest + Perfetto trace + CSVs

Live telemetry (watch a run while it executes)::

    from repro.obs import LiveBus, Observer

    obs = Observer(bus=LiveBus("telemetry/live"), monitors=True)
    ...                                 # tail with `repro-obs watch`

See ``docs/OBSERVABILITY.md`` for the probe API, the metric catalogue,
exporter formats, the live bus, invariant monitors, and the Perfetto
how-to.
"""

from repro.obs.exporters import (
    chrome_trace,
    export_run,
    write_chrome_trace,
    write_metric_csvs,
)
from repro.obs.invariants import (
    BBOccupancyMonitor,
    EventMonotonicityMonitor,
    InvariantMonitor,
    InvariantViolation,
    LeaseBalanceMonitor,
    LinkCapacityMonitor,
    standard_monitors,
)
from repro.obs.live import LIVE_SCHEMA, LiveBus
from repro.obs.log import (
    COMPONENTS,
    LOG_SCHEMA,
    iter_ndjson,
    make_event,
    read_events,
    write_events,
)
from repro.obs.manifest import (
    MANIFEST_SCHEMA,
    MANIFEST_SCHEMA_V2,
    build_manifest,
    config_from_manifest,
    config_v2_from_manifest,
    platform_digest,
    write_manifest,
)
from repro.obs.observer import METRIC_GROUPS, Observer
from repro.obs.probes import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    TimeSeries,
)
from repro.obs.spans import Span, spans_from_record
from repro.obs.validate import (
    validate_chrome_trace,
    validate_events_ndjson,
    validate_live_dir,
    validate_manifest,
    validate_metrics_dir,
    validate_obs_dir,
    validate_profile_doc,
)
from repro.obs.waits import WaitCause, WaitInterval

__all__ = [
    "COMPONENTS",
    "LIVE_SCHEMA",
    "LOG_SCHEMA",
    "MANIFEST_SCHEMA",
    "MANIFEST_SCHEMA_V2",
    "METRIC_GROUPS",
    "BBOccupancyMonitor",
    "Counter",
    "EventMonotonicityMonitor",
    "Gauge",
    "Histogram",
    "InvariantMonitor",
    "InvariantViolation",
    "LeaseBalanceMonitor",
    "LinkCapacityMonitor",
    "LiveBus",
    "MetricRegistry",
    "Observer",
    "Span",
    "TimeSeries",
    "WaitCause",
    "WaitInterval",
    "build_manifest",
    "chrome_trace",
    "config_from_manifest",
    "config_v2_from_manifest",
    "export_run",
    "iter_ndjson",
    "make_event",
    "platform_digest",
    "read_events",
    "spans_from_record",
    "standard_monitors",
    "validate_chrome_trace",
    "validate_events_ndjson",
    "validate_live_dir",
    "validate_manifest",
    "validate_metrics_dir",
    "validate_obs_dir",
    "validate_profile_doc",
    "write_chrome_trace",
    "write_events",
    "write_manifest",
    "write_metric_csvs",
]
