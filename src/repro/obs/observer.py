"""The observer: the hub every instrumentation hook publishes into.

Design contract — **zero cost when disabled, zero influence when
enabled**:

* Components never hold observer references.  Each hook site reads
  ``env.obs`` (``None`` by default) and bails on ``None`` — the entire
  disabled path is one attribute load and an identity check.
* Hooks only *record*: they never create DES events, never yield, never
  touch simulated state.  An instrumented run is bit-identical to an
  uninstrumented one (asserted in ``tests/obs/test_overhead.py``).

Enable by attaching an observer to the environment before services are
built::

    obs = Observer()
    env = des.Environment()
    obs.attach(env)
    ...  # build platform/services/engine on env, run
    export_run(obs, "telemetry/")        # see repro.obs.exporters

Metric groups (``Observer(metrics=...)`` restricts collection):

========  ==========================================================
group     signals
========  ==========================================================
storage   per-service occupancy, capacity, cumulative bytes, op counts
network   concurrent-flow count, per-service achieved bandwidth
compute   per-host busy cores and allocation queue depth
engine    ready-task depth, task lifecycle spans, completion counts
des       kernel events processed
========  ==========================================================

Beyond metrics, the observer carries three further channels:

* **structured events** (:meth:`log_event`): the ``repro.obs.log/1``
  record stream subsystems publish instead of printing (lint rule
  SIM080), collected in :attr:`events` and exported deterministically;
* **live bus** (``Observer(bus=LiveBus(...))``): events, span closes
  and wait transitions stream to ``<obs-dir>/live/`` while the run
  executes (see :mod:`repro.obs.live`);
* **invariant monitors** (``Observer(monitors=True)``): online checks
  that raise :class:`~repro.obs.invariants.InvariantViolation` with the
  recent event chain at the timestep an invariant breaks.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Any, Iterable, Optional, Sequence

from repro.obs.invariants import InvariantMonitor, standard_monitors
from repro.obs.log import make_event
from repro.obs.probes import MetricRegistry
from repro.obs.spans import Span, spans_from_record
from repro.obs.waits import WaitCause, WaitInterval

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.environment import Environment
    from repro.network.flownet import Flow
    from repro.obs.live import LiveBus
    from repro.traces.events import TaskRecord

#: The metric groups an observer can collect, in documentation order.
METRIC_GROUPS = ("storage", "network", "compute", "engine", "des")

#: How many recent event records an observer retains for the violation
#: chain (:attr:`Observer.recent_events`).
RECENT_EVENT_WINDOW = 64


class Observer:
    """Collects metrics and spans from an instrumented simulation.

    Parameters
    ----------
    metrics:
        Iterable of group names to collect (see :data:`METRIC_GROUPS`);
        ``None`` collects everything.
    bus:
        A :class:`~repro.obs.live.LiveBus` to stream events, span
        closes and wait transitions into while the run executes.
    monitors:
        ``True`` registers the standard invariant monitors
        (:func:`~repro.obs.invariants.standard_monitors`); a sequence
        registers those instances; ``None``/``False`` runs unmonitored.
    """

    def __init__(
        self,
        metrics: Optional[Iterable[str]] = None,
        bus: Optional["LiveBus"] = None,
        monitors: "bool | Sequence[InvariantMonitor] | None" = None,
    ) -> None:
        groups = frozenset(metrics) if metrics is not None else frozenset(METRIC_GROUPS)
        unknown = groups - frozenset(METRIC_GROUPS)
        if unknown:
            raise ValueError(
                f"unknown metric groups: {', '.join(sorted(unknown))} "
                f"(choose from {', '.join(METRIC_GROUPS)})"
            )
        self.groups = groups
        self.registry = MetricRegistry()
        self.spans: list[Span] = []
        #: Closed blocked intervals per task (see :mod:`repro.obs.waits`).
        self.waits: list[WaitInterval] = []
        #: Still-open blocked intervals: (task, cause) -> (start, detail).
        self._open_waits: dict[tuple[str, WaitCause], tuple[float, str]] = {}
        #: Completed-flow records (label, size, interval) — the
        #: profiler's raw material for contention analysis.
        self.flows: list[dict] = []
        #: Structured event records (``repro.obs.log/1``), in emission
        #: order, wall-clock free (``ts`` is ``None``).
        self.events: list[dict[str, Any]] = []
        #: Sliding window of the most recent events — the violation
        #: chain invariant monitors attach to their failures.
        self.recent_events: deque[dict[str, Any]] = deque(
            maxlen=RECENT_EVENT_WINDOW
        )
        self.env: Optional["Environment"] = None
        # Group flags are plain attributes so enabled-path hooks pay one
        # attribute test, not a set lookup.
        self._storage = "storage" in groups
        self._network = "network" in groups
        self._compute = "compute" in groups
        self._engine = "engine" in groups
        self._des = "des" in groups
        self._bus: Optional["LiveBus"] = None
        if bus is not None:
            self.attach_bus(bus)
        if monitors is True:
            monitor_list: list[InvariantMonitor] = standard_monitors()
        elif monitors:
            monitor_list = list(monitors)
        else:
            monitor_list = []
        self.monitors: tuple[InvariantMonitor, ...] = tuple(monitor_list)
        for monitor in self.monitors:
            monitor.bind(self)
        # Per-hook dispatch tuples, so a hook with no interested monitor
        # pays one truthiness test on an empty tuple.
        base = InvariantMonitor
        self._mon_occupancy = tuple(
            m for m in self.monitors
            if type(m).on_storage_occupancy is not base.on_storage_occupancy
        )
        self._mon_rates = tuple(
            m for m in self.monitors
            if type(m).on_rates_assigned is not base.on_rates_assigned
        )
        self._mon_clock = tuple(
            m for m in self.monitors
            if type(m).on_event_processed is not base.on_event_processed
        )
        self._mon_lease = tuple(
            m for m in self.monitors
            if type(m).on_bb_lease is not base.on_bb_lease
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, env: "Environment") -> "Observer":
        """Bind to ``env`` and become its active observer.

        Must happen before instrumented components are exercised (hook
        sites read ``env.obs`` at call time, so attaching late simply
        loses earlier samples — it never errors).
        """
        if self.env is not None and self.env is not env:
            raise ValueError("observer is already attached to another environment")
        self.env = env
        env.obs = self
        return self

    def detach(self) -> None:
        """Stop observing (the environment reverts to the disabled path)."""
        if self.env is not None:
            self.env.obs = None
            self.env = None

    @property
    def now(self) -> float:
        if self.env is None:
            raise RuntimeError("observer is not attached to an environment")
        return self.env.now

    # ------------------------------------------------------------------
    # Structured event log / live bus
    # ------------------------------------------------------------------
    def attach_bus(self, bus: "LiveBus") -> "LiveBus":
        """Stream into ``bus`` from now on (one bus per observer)."""
        if self._bus is not None and self._bus is not bus:
            raise ValueError("observer already streams to another live bus")
        bus.attach(self)
        self._bus = bus
        return bus

    @property
    def bus(self) -> Optional["LiveBus"]:
        return self._bus

    def log_event(self, component: str, event: str, **fields: Any) -> dict:
        """Publish one structured event record (``repro.obs.log/1``).

        The deterministic copy lands in :attr:`events` (wall-clock
        free); an attached live bus receives a second copy that gets a
        ``ts`` stamp at flush time.
        """
        sim_time = self.env.now if self.env is not None else 0.0
        record = make_event(sim_time, component, event, fields)
        self.events.append(record)
        self.recent_events.append(record)
        bus = self._bus
        if bus is not None:
            bus.push({"kind": "event", **record})
        return record

    # ------------------------------------------------------------------
    # Storage hooks
    # ------------------------------------------------------------------
    def on_storage_occupancy(self, service: str, used: float, capacity: float) -> None:
        """A service's content table changed (file added or deleted)."""
        for monitor in self._mon_occupancy:
            monitor.on_storage_occupancy(service, used, capacity)
        if not self._storage:
            return
        self.registry.timeseries(f"storage.{service}.occupancy_bytes").sample(
            self.now, used
        )
        self.registry.gauge(f"storage.{service}.capacity_bytes").set(capacity)

    def on_storage_op(self, service: str, kind: str, nbytes: float) -> None:
        """A read/write/stage operation was issued against a service."""
        if not self._storage:
            return
        self.registry.counter(f"storage.{service}.{kind}_ops").inc()
        bytes_total = self.registry.counter(f"storage.{service}.{kind}_bytes")
        bytes_total.inc(nbytes)
        self.registry.timeseries(f"storage.{service}.cumulative_{kind}_bytes").sample(
            self.now, bytes_total.value
        )

    # ------------------------------------------------------------------
    # Network hooks
    # ------------------------------------------------------------------
    def on_flow_admitted(self, n_active: int) -> None:
        if not self._network:
            return
        self.registry.timeseries("network.active_flows").sample(self.now, n_active)

    def on_flow_finished(self, flow: "Flow", n_active: int) -> None:
        if not self._network:
            return
        self.registry.timeseries("network.active_flows").sample(self.now, n_active)
        self.registry.counter("network.flows_completed").inc()
        self.registry.counter("network.bytes_completed").inc(flow.size)
        self.flows.append(
            {
                "label": flow.label,
                "size": flow.size,
                "start": getattr(flow, "started_at", None),
                "end": self.now,
                "max_rate": getattr(flow, "max_rate", None),
            }
        )
        bandwidth = flow.achieved_bandwidth
        if bandwidth is not None and flow.size > 0:
            service = flow.label.partition(":")[0] if flow.label else "unlabeled"
            self.registry.timeseries(
                f"network.{service}.achieved_bandwidth"
            ).sample(self.now, bandwidth)

    def on_rate_solve(
        self, flows_solved: int, links_touched: int, solver_calls: int = 1
    ) -> None:
        """The rate allocator ran: ``flows_solved`` flow rates were
        recomputed over ``links_touched`` links, in ``solver_calls``
        oracle invocations (one per recomputed component on the
        incremental path; always 1 for the global solver)."""
        if not self._network:
            return
        self.registry.counter("network.solver_calls").inc(solver_calls)
        self.registry.counter("network.links_touched").inc(links_touched)
        self.registry.counter("network.flows_solved").inc(flows_solved)

    def on_rates_assigned(self, flows: "Iterable[Flow]") -> None:
        """The allocator settled rates for the active flow set.

        Pure monitor feed: the metric story is already told by
        :meth:`on_rate_solve`; this hook exists so capacity monitors see
        the *assigned* rates, not just solver call counts.
        """
        for monitor in self._mon_rates:
            monitor.on_rates_assigned(flows)

    # ------------------------------------------------------------------
    # Compute hooks
    # ------------------------------------------------------------------
    def on_core_allocation(
        self, host: str, busy: int, total: int, queued: int
    ) -> None:
        """A host's core allocator granted or released cores."""
        if not self._compute:
            return
        self.registry.timeseries(f"compute.{host}.busy_cores").sample(self.now, busy)
        self.registry.gauge(f"compute.{host}.total_cores").set(total)
        self.registry.timeseries(f"compute.{host}.queue_depth").sample(
            self.now, queued
        )

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def on_ready_depth(self, depth: int) -> None:
        """Tasks whose dependencies are met but that have not started."""
        if not self._engine:
            return
        self.registry.timeseries("engine.ready_tasks").sample(self.now, depth)

    def on_task_complete(self, record: "TaskRecord", category: str) -> None:
        """A task finished; derive its lifecycle spans from the record."""
        if not self._engine:
            return
        self.registry.counter("engine.tasks_completed").inc()
        spans = spans_from_record(record, category)
        self.spans.extend(spans)
        bus = self._bus
        if bus is not None:
            for span in spans:
                bus.push({
                    "kind": "span_close",
                    "sim_time": span.end,
                    "name": span.name,
                    "category": span.category,
                    "track": span.track,
                    "start": span.start,
                    "end": span.end,
                })

    # ------------------------------------------------------------------
    # Wait-cause hooks (the profiler's causal signal)
    # ------------------------------------------------------------------
    def on_task_blocked(
        self, task: str, cause: WaitCause, detail: str = ""
    ) -> None:
        """``task`` stopped making progress, waiting on ``cause``.

        ``cause`` must be a :class:`~repro.obs.waits.WaitCause` member
        (lint rule SIM070 rejects ad-hoc strings at the call sites), so
        wait decompositions from any two runs are comparable.  A second
        ``blocked`` for an already-open (task, cause) pair refreshes the
        detail but keeps the original start.
        """
        if not self._engine:
            return
        key = (task, WaitCause(cause))
        if key not in self._open_waits:
            self._open_waits[key] = (self.now, detail)
            bus = self._bus
            if bus is not None:
                bus.push({
                    "kind": "wait_open",
                    "sim_time": self.now,
                    "task": task,
                    "cause": key[1].value,
                    "detail": detail,
                })

    def on_task_unblocked(self, task: str, cause: WaitCause) -> None:
        """``task`` resumed after a :meth:`on_task_blocked` for ``cause``.

        Zero-duration intervals (blocked and unblocked inside the same
        simulated instant — e.g. cores granted immediately) are dropped:
        they carry no wait time and would only bloat profiles.  An
        ``unblocked`` with no matching open interval is ignored, so hook
        sites never need to track whether the observer saw the start.
        """
        if not self._engine:
            return
        opened = self._open_waits.pop((task, WaitCause(cause)), None)
        if opened is None:
            return
        start, detail = opened
        bus = self._bus
        if bus is not None:
            bus.push({
                "kind": "wait_close",
                "sim_time": self.now,
                "task": task,
                "cause": WaitCause(cause).value,
                "start": start,
            })
        if self.now <= start:
            return
        interval = WaitInterval(
            task=task,
            cause=WaitCause(cause),
            start=start,
            end=self.now,
            detail=detail,
        )
        self.waits.append(interval)
        self.registry.counter(f"engine.wait.{interval.cause.value}_seconds").inc(
            interval.duration
        )

    # ------------------------------------------------------------------
    # Burst-buffer lease hooks
    # ------------------------------------------------------------------
    def on_bb_lease(
        self, action: str, granules: int, free: int, total: int, job: str
    ) -> None:
        """The BB provisioner queued, granted, or released a lease.

        ``free``/``total`` are the provisioner's granule counts *after*
        the action, so lease-balance monitors can cross-check its ledger
        against their own running total.
        """
        self.log_event(
            "storage", f"bb_lease_{action}",
            granules=granules, free=free, total=total, job=job,
        )
        for monitor in self._mon_lease:
            monitor.on_bb_lease(action, granules, free, total, job)

    # ------------------------------------------------------------------
    # DES kernel hooks
    # ------------------------------------------------------------------
    def on_event_processed(self, when: Optional[float] = None) -> None:
        for monitor in self._mon_clock:
            monitor.on_event_processed(when)
        if not self._des:
            return
        self.registry.counter("des.events_processed").inc()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "attached" if self.env is not None else "detached"
        return (
            f"<Observer {state}: {len(self.registry)} metrics, "
            f"{len(self.spans)} spans>"
        )
