"""The observer: the hub every instrumentation hook publishes into.

Design contract — **zero cost when disabled, zero influence when
enabled**:

* Components never hold observer references.  Each hook site reads
  ``env.obs`` (``None`` by default) and bails on ``None`` — the entire
  disabled path is one attribute load and an identity check.
* Hooks only *record*: they never create DES events, never yield, never
  touch simulated state.  An instrumented run is bit-identical to an
  uninstrumented one (asserted in ``tests/obs/test_overhead.py``).

Enable by attaching an observer to the environment before services are
built::

    obs = Observer()
    env = des.Environment()
    obs.attach(env)
    ...  # build platform/services/engine on env, run
    export_run(obs, "telemetry/")        # see repro.obs.exporters

Metric groups (``Observer(metrics=...)`` restricts collection):

========  ==========================================================
group     signals
========  ==========================================================
storage   per-service occupancy, capacity, cumulative bytes, op counts
network   concurrent-flow count, per-service achieved bandwidth
compute   per-host busy cores and allocation queue depth
engine    ready-task depth, task lifecycle spans, completion counts
des       kernel events processed
========  ==========================================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Optional

from repro.obs.probes import MetricRegistry
from repro.obs.spans import Span, spans_from_record
from repro.obs.waits import WaitCause, WaitInterval

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.environment import Environment
    from repro.network.flownet import Flow
    from repro.traces.events import TaskRecord

#: The metric groups an observer can collect, in documentation order.
METRIC_GROUPS = ("storage", "network", "compute", "engine", "des")


class Observer:
    """Collects metrics and spans from an instrumented simulation.

    Parameters
    ----------
    metrics:
        Iterable of group names to collect (see :data:`METRIC_GROUPS`);
        ``None`` collects everything.
    """

    def __init__(self, metrics: Optional[Iterable[str]] = None) -> None:
        groups = frozenset(metrics) if metrics is not None else frozenset(METRIC_GROUPS)
        unknown = groups - frozenset(METRIC_GROUPS)
        if unknown:
            raise ValueError(
                f"unknown metric groups: {', '.join(sorted(unknown))} "
                f"(choose from {', '.join(METRIC_GROUPS)})"
            )
        self.groups = groups
        self.registry = MetricRegistry()
        self.spans: list[Span] = []
        #: Closed blocked intervals per task (see :mod:`repro.obs.waits`).
        self.waits: list[WaitInterval] = []
        #: Still-open blocked intervals: (task, cause) -> (start, detail).
        self._open_waits: dict[tuple[str, WaitCause], tuple[float, str]] = {}
        #: Completed-flow records (label, size, interval) — the
        #: profiler's raw material for contention analysis.
        self.flows: list[dict] = []
        self.env: Optional["Environment"] = None
        # Group flags are plain attributes so enabled-path hooks pay one
        # attribute test, not a set lookup.
        self._storage = "storage" in groups
        self._network = "network" in groups
        self._compute = "compute" in groups
        self._engine = "engine" in groups
        self._des = "des" in groups

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, env: "Environment") -> "Observer":
        """Bind to ``env`` and become its active observer.

        Must happen before instrumented components are exercised (hook
        sites read ``env.obs`` at call time, so attaching late simply
        loses earlier samples — it never errors).
        """
        if self.env is not None and self.env is not env:
            raise ValueError("observer is already attached to another environment")
        self.env = env
        env.obs = self
        return self

    def detach(self) -> None:
        """Stop observing (the environment reverts to the disabled path)."""
        if self.env is not None:
            self.env.obs = None
            self.env = None

    @property
    def now(self) -> float:
        if self.env is None:
            raise RuntimeError("observer is not attached to an environment")
        return self.env.now

    # ------------------------------------------------------------------
    # Storage hooks
    # ------------------------------------------------------------------
    def on_storage_occupancy(self, service: str, used: float, capacity: float) -> None:
        """A service's content table changed (file added or deleted)."""
        if not self._storage:
            return
        self.registry.timeseries(f"storage.{service}.occupancy_bytes").sample(
            self.now, used
        )
        self.registry.gauge(f"storage.{service}.capacity_bytes").set(capacity)

    def on_storage_op(self, service: str, kind: str, nbytes: float) -> None:
        """A read/write/stage operation was issued against a service."""
        if not self._storage:
            return
        self.registry.counter(f"storage.{service}.{kind}_ops").inc()
        bytes_total = self.registry.counter(f"storage.{service}.{kind}_bytes")
        bytes_total.inc(nbytes)
        self.registry.timeseries(f"storage.{service}.cumulative_{kind}_bytes").sample(
            self.now, bytes_total.value
        )

    # ------------------------------------------------------------------
    # Network hooks
    # ------------------------------------------------------------------
    def on_flow_admitted(self, n_active: int) -> None:
        if not self._network:
            return
        self.registry.timeseries("network.active_flows").sample(self.now, n_active)

    def on_flow_finished(self, flow: "Flow", n_active: int) -> None:
        if not self._network:
            return
        self.registry.timeseries("network.active_flows").sample(self.now, n_active)
        self.registry.counter("network.flows_completed").inc()
        self.registry.counter("network.bytes_completed").inc(flow.size)
        self.flows.append(
            {
                "label": flow.label,
                "size": flow.size,
                "start": getattr(flow, "started_at", None),
                "end": self.now,
                "max_rate": getattr(flow, "max_rate", None),
            }
        )
        bandwidth = flow.achieved_bandwidth
        if bandwidth is not None and flow.size > 0:
            service = flow.label.partition(":")[0] if flow.label else "unlabeled"
            self.registry.timeseries(
                f"network.{service}.achieved_bandwidth"
            ).sample(self.now, bandwidth)

    def on_rate_solve(
        self, flows_solved: int, links_touched: int, solver_calls: int = 1
    ) -> None:
        """The rate allocator ran: ``flows_solved`` flow rates were
        recomputed over ``links_touched`` links, in ``solver_calls``
        oracle invocations (one per recomputed component on the
        incremental path; always 1 for the global solver)."""
        if not self._network:
            return
        self.registry.counter("network.solver_calls").inc(solver_calls)
        self.registry.counter("network.links_touched").inc(links_touched)
        self.registry.counter("network.flows_solved").inc(flows_solved)

    # ------------------------------------------------------------------
    # Compute hooks
    # ------------------------------------------------------------------
    def on_core_allocation(
        self, host: str, busy: int, total: int, queued: int
    ) -> None:
        """A host's core allocator granted or released cores."""
        if not self._compute:
            return
        self.registry.timeseries(f"compute.{host}.busy_cores").sample(self.now, busy)
        self.registry.gauge(f"compute.{host}.total_cores").set(total)
        self.registry.timeseries(f"compute.{host}.queue_depth").sample(
            self.now, queued
        )

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def on_ready_depth(self, depth: int) -> None:
        """Tasks whose dependencies are met but that have not started."""
        if not self._engine:
            return
        self.registry.timeseries("engine.ready_tasks").sample(self.now, depth)

    def on_task_complete(self, record: "TaskRecord", category: str) -> None:
        """A task finished; derive its lifecycle spans from the record."""
        if not self._engine:
            return
        self.registry.counter("engine.tasks_completed").inc()
        self.spans.extend(spans_from_record(record, category))

    # ------------------------------------------------------------------
    # Wait-cause hooks (the profiler's causal signal)
    # ------------------------------------------------------------------
    def on_task_blocked(
        self, task: str, cause: WaitCause, detail: str = ""
    ) -> None:
        """``task`` stopped making progress, waiting on ``cause``.

        ``cause`` must be a :class:`~repro.obs.waits.WaitCause` member
        (lint rule SIM070 rejects ad-hoc strings at the call sites), so
        wait decompositions from any two runs are comparable.  A second
        ``blocked`` for an already-open (task, cause) pair refreshes the
        detail but keeps the original start.
        """
        if not self._engine:
            return
        self._open_waits.setdefault((task, WaitCause(cause)), (self.now, detail))

    def on_task_unblocked(self, task: str, cause: WaitCause) -> None:
        """``task`` resumed after a :meth:`on_task_blocked` for ``cause``.

        Zero-duration intervals (blocked and unblocked inside the same
        simulated instant — e.g. cores granted immediately) are dropped:
        they carry no wait time and would only bloat profiles.  An
        ``unblocked`` with no matching open interval is ignored, so hook
        sites never need to track whether the observer saw the start.
        """
        if not self._engine:
            return
        opened = self._open_waits.pop((task, WaitCause(cause)), None)
        if opened is None:
            return
        start, detail = opened
        if self.now <= start:
            return
        interval = WaitInterval(
            task=task,
            cause=WaitCause(cause),
            start=start,
            end=self.now,
            detail=detail,
        )
        self.waits.append(interval)
        self.registry.counter(f"engine.wait.{interval.cause.value}_seconds").inc(
            interval.duration
        )

    # ------------------------------------------------------------------
    # DES kernel hooks
    # ------------------------------------------------------------------
    def on_event_processed(self) -> None:
        if not self._des:
            return
        self.registry.counter("des.events_processed").inc()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "attached" if self.env is not None else "detached"
        return (
            f"<Observer {state}: {len(self.registry)} metrics, "
            f"{len(self.spans)} spans>"
        )
