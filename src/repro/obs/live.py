"""The streaming telemetry bus: watch a run while it executes.

Post-run exports (:func:`repro.obs.exporters.export_run`) answer "what
happened"; the live bus answers "what is happening".  An attached
:class:`LiveBus` receives typed records (structured log events, span
closes, wait opens/closes) from the observer's hooks into a *bounded*
ring buffer and, every ``flush_every`` pushes, drains the ring to
``<directory>/``:

``events.ndjson``
    the drained records, each stamped with a wall-clock ``ts`` at flush
    time (the only place wall time enters the telemetry stack — the
    simulation itself never sees it);
``snapshots.ndjson``
    one incremental metric snapshot per flush: the counters, gauges and
    series *that changed* since the previous snapshot, with a strictly
    increasing ``seq``;
``heartbeat.json``
    rewritten atomically on every flush so a tail knows the producer is
    alive (and, via ``closed``, when it finished).

Both NDJSON files open with a header line ``{"schema":
"repro.obs.live/1"}``.  The ring bounds memory: if a consumer of the
bus cannot keep up (flush interval too large for the ring), the oldest
records are dropped and counted in ``dropped`` — the live stream is a
lossy window, never a source of truth.  The deterministic record —
``Observer.events``, the registry, the trace — is unaffected by the bus
entirely: pushes copy, flushes only read.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.observer import Observer

#: Live-stream format identifier; bump on breaking changes.
LIVE_SCHEMA = "repro.obs.live/1"


def _atomic_write_json(path: Path, doc: dict) -> None:
    """Rewrite ``path`` without a window where a tail sees a torn file."""
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(doc, sort_keys=True) + "\n")
    os.replace(tmp, path)


class LiveBus:
    """Bounded ring buffer flushing incremental NDJSON to a directory.

    Parameters
    ----------
    directory:
        Target directory (created on first flush), conventionally
        ``<obs-dir>/live/``.
    ring_size:
        Maximum records buffered between flushes; overflow drops the
        oldest record and increments the ``dropped`` total.
    flush_every:
        Flush after this many pushes.  Count-based (not time-based) so
        the *set of flushed records* is deterministic even though their
        ``ts`` stamps are not.
    clock:
        Wall-clock source for ``ts`` stamps; injectable for tests.
    """

    def __init__(
        self,
        directory: "str | Path",
        ring_size: int = 4096,
        flush_every: int = 256,
        clock: Callable[[], float] = time.time,  # lint: ignore[SIM001] — wall time never enters the simulation
    ) -> None:
        if ring_size < 1 or flush_every < 1:
            raise ValueError("ring_size and flush_every must be >= 1")
        self.directory = Path(directory)
        self.ring_size = ring_size
        self.flush_every = flush_every
        self._clock = clock
        self._ring: deque[dict[str, Any]] = deque(maxlen=ring_size)
        self._since_flush = 0
        self.dropped = 0
        self.seq = 0
        self.closed = False
        self._observer: Optional["Observer"] = None
        self._started = False
        # Last-flushed probe values, for incremental snapshots.
        self._last_counters: dict[str, float] = {}
        self._last_gauges: dict[str, float] = {}
        self._last_series: dict[str, tuple[int, float]] = {}

    # ------------------------------------------------------------------
    # Producer side (called from Observer hooks)
    # ------------------------------------------------------------------
    def attach(self, observer: "Observer") -> None:
        if self._observer is not None and self._observer is not observer:
            raise ValueError("live bus is already attached to another observer")
        self._observer = observer

    def push(self, record: dict[str, Any]) -> None:
        """Buffer one typed record; flushes when the interval is reached."""
        if self.closed:
            return
        if len(self._ring) == self.ring_size:
            self.dropped += 1
        self._ring.append(record)
        self._since_flush += 1
        if self._since_flush >= self.flush_every:
            self.flush()

    # ------------------------------------------------------------------
    # Flush / close
    # ------------------------------------------------------------------
    def flush(self) -> None:
        """Drain the ring and write one incremental snapshot."""
        if self.closed:
            return
        ts = self._clock()
        self._ensure_files()
        self._since_flush = 0
        drained = list(self._ring)
        self._ring.clear()
        if drained:
            with (self.directory / "events.ndjson").open("a") as fh:
                for record in drained:
                    stamped = dict(record)
                    stamped["ts"] = ts
                    fh.write(json.dumps(stamped, sort_keys=True) + "\n")
        self.seq += 1
        snapshot = self._delta_snapshot(ts)
        with (self.directory / "snapshots.ndjson").open("a") as fh:
            fh.write(json.dumps(snapshot, sort_keys=True) + "\n")
        _atomic_write_json(self.directory / "heartbeat.json", {
            "schema": LIVE_SCHEMA,
            "ts": ts,
            "seq": self.seq,
            "sim_time": snapshot["sim_time"],
            "dropped": self.dropped,
            "closed": self.closed,
        })

    def close(self) -> None:
        """Final flush, then mark the stream finished in the heartbeat."""
        if self.closed:
            return
        self.flush()
        self.closed = True
        heartbeat = self.directory / "heartbeat.json"
        if heartbeat.exists():
            doc = json.loads(heartbeat.read_text())
            doc["closed"] = True
            _atomic_write_json(heartbeat, doc)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _ensure_files(self) -> None:
        if self._started:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        header = json.dumps({"schema": LIVE_SCHEMA}, sort_keys=True) + "\n"
        (self.directory / "events.ndjson").write_text(header)
        (self.directory / "snapshots.ndjson").write_text(header)
        self._started = True

    def _sim_time(self) -> Optional[float]:
        observer = self._observer
        if observer is None or observer.env is None:
            return None
        return observer.env.now

    def _delta_snapshot(self, ts: float) -> dict[str, Any]:
        """Changed probes since the last flush, plus stream bookkeeping."""
        counters: dict[str, float] = {}
        gauges: dict[str, float] = {}
        series: dict[str, float] = {}
        observer = self._observer
        if observer is not None:
            registry = observer.registry
            for name, probe in registry.counters.items():
                if self._last_counters.get(name) != probe.value:
                    counters[name] = self._last_counters[name] = probe.value
            for name, probe in registry.gauges.items():
                if self._last_gauges.get(name) != probe.value:
                    gauges[name] = self._last_gauges[name] = probe.value
            for name, probe in registry.series.items():
                if not probe.values:
                    continue
                state = (len(probe.values), probe.values[-1])
                if self._last_series.get(name) != state:
                    self._last_series[name] = state
                    series[name] = probe.values[-1]
        return {
            "seq": self.seq,
            "ts": ts,
            "sim_time": self._sim_time(),
            "counters": counters,
            "gauges": gauges,
            "series": series,
            "dropped": self.dropped,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<LiveBus {self.directory} seq={self.seq} "
            f"buffered={len(self._ring)} dropped={self.dropped}>"
        )
