"""Run manifests: the provenance record exported next to telemetry.

A manifest captures *what produced* a telemetry directory — the exact
:class:`~repro.simulator.SimulatorConfig`, a digest of the platform
description, workflow identity, simulator version, and headline results
— so any figure or trace can be traced back to its inputs and
regenerated.  Manifests are deliberately wall-clock-free: two runs of
the same configuration produce byte-identical manifests.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from repro import __version__

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observer import Observer
    from repro.platform.spec import PlatformSpec
    from repro.simulator import SimulatorConfig
    from repro.traces.events import ExecutionTrace
    from repro.workflow.model import Workflow

#: Manifest format identifier; bump on breaking layout changes.  The
#: v1 tag is still emitted for configless manifests — notably the sweep
#: cache's key documents, whose content addresses must never shift for
#: unchanged points — and always accepted on read.
MANIFEST_SCHEMA = "repro.obs.manifest/1"

#: Manifests that carry a config serialize its v2 form
#: (:meth:`repro.config.Config.to_doc`: model knobs plus observability
#: switches) under this tag.
MANIFEST_SCHEMA_V2 = "repro.obs.manifest/2"


def platform_digest(spec: "PlatformSpec") -> str:
    """Stable sha256 digest of a platform description.

    Computed over the canonical JSON serialization, so two specs that
    serialize identically share a digest regardless of construction.
    """
    from repro.platform.serialization import platform_to_json

    return hashlib.sha256(platform_to_json(spec).encode("utf-8")).hexdigest()


def build_manifest(
    *,
    config: "Optional[SimulatorConfig]" = None,
    platform: "Optional[PlatformSpec]" = None,
    workflow: "Optional[Workflow]" = None,
    trace: "Optional[ExecutionTrace]" = None,
    observer: "Optional[Observer]" = None,
    extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Assemble a manifest document from whichever parts are known."""
    doc: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "simulator_version": __version__,
    }
    if config is not None:
        from repro.config import Config

        doc["schema"] = MANIFEST_SCHEMA_V2
        doc["config"] = Config.from_any(config).to_doc()
    if platform is not None:
        doc["platform"] = {
            "digest": platform_digest(platform),
            "n_hosts": len(platform.hosts),
            "n_links": len(platform.links),
        }
    if workflow is not None:
        doc["workflow"] = {
            "name": workflow.name,
            "n_tasks": len(workflow),
            "n_files": len(workflow.files),
        }
    if trace is not None:
        doc["result"] = {
            "makespan": trace.makespan,
            "n_events": len(trace.events),
            "n_tasks": len(trace.records),
            "n_io_operations": len(trace.io_operations),
        }
    if observer is not None:
        doc["metrics"] = observer.registry.names()
        doc["n_spans"] = len(observer.spans)
    if extra:
        doc.update(extra)
    return doc


def config_from_manifest(doc: dict[str, Any]) -> "SimulatorConfig":
    """Reconstruct the exact :class:`SimulatorConfig` a manifest records.

    Reads both the v1 layout (flat ``SimulatorConfig`` fields) and the
    v2 layout (:meth:`repro.config.Config.to_doc`, which adds the
    observability switches); only the model knobs are returned.  Use
    :func:`config_v2_from_manifest` to keep the full v2 object.
    """
    from repro.config import Config

    return Config.from_any(dict(doc["config"])).to_simulator_config()


def config_v2_from_manifest(doc: dict[str, Any]) -> "Any":
    """The full :class:`repro.config.Config` a manifest records.

    v1 manifests yield a :class:`~repro.config.Config` with the model
    knobs set and every observability switch at its default.
    """
    from repro.config import Config

    return Config.from_any(dict(doc["config"]))


def write_manifest(doc: dict[str, Any], path: "str | Path") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
