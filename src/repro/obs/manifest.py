"""Run manifests: the provenance record exported next to telemetry.

A manifest captures *what produced* a telemetry directory — the exact
:class:`~repro.simulator.SimulatorConfig`, a digest of the platform
description, workflow identity, simulator version, and headline results
— so any figure or trace can be traced back to its inputs and
regenerated.  Manifests are deliberately wall-clock-free: two runs of
the same configuration produce byte-identical manifests.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from repro import __version__

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observer import Observer
    from repro.platform.spec import PlatformSpec
    from repro.simulator import SimulatorConfig
    from repro.traces.events import ExecutionTrace
    from repro.workflow.model import Workflow

#: Manifest format identifier; bump on breaking layout changes.
MANIFEST_SCHEMA = "repro.obs.manifest/1"


def platform_digest(spec: "PlatformSpec") -> str:
    """Stable sha256 digest of a platform description.

    Computed over the canonical JSON serialization, so two specs that
    serialize identically share a digest regardless of construction.
    """
    from repro.platform.serialization import platform_to_json

    return hashlib.sha256(platform_to_json(spec).encode("utf-8")).hexdigest()


def build_manifest(
    *,
    config: "Optional[SimulatorConfig]" = None,
    platform: "Optional[PlatformSpec]" = None,
    workflow: "Optional[Workflow]" = None,
    trace: "Optional[ExecutionTrace]" = None,
    observer: "Optional[Observer]" = None,
    extra: Optional[dict[str, Any]] = None,
) -> dict[str, Any]:
    """Assemble a manifest document from whichever parts are known."""
    doc: dict[str, Any] = {
        "schema": MANIFEST_SCHEMA,
        "simulator_version": __version__,
    }
    if config is not None:
        fields = asdict(config)
        fields["bb_mode"] = config.bb_mode.value
        doc["config"] = fields
    if platform is not None:
        doc["platform"] = {
            "digest": platform_digest(platform),
            "n_hosts": len(platform.hosts),
            "n_links": len(platform.links),
        }
    if workflow is not None:
        doc["workflow"] = {
            "name": workflow.name,
            "n_tasks": len(workflow),
            "n_files": len(workflow.files),
        }
    if trace is not None:
        doc["result"] = {
            "makespan": trace.makespan,
            "n_events": len(trace.events),
            "n_tasks": len(trace.records),
            "n_io_operations": len(trace.io_operations),
        }
    if observer is not None:
        doc["metrics"] = observer.registry.names()
        doc["n_spans"] = len(observer.spans)
    if extra:
        doc.update(extra)
    return doc


def config_from_manifest(doc: dict[str, Any]) -> "SimulatorConfig":
    """Reconstruct the exact :class:`SimulatorConfig` a manifest records."""
    from repro.simulator import SimulatorConfig
    from repro.storage import BBMode

    fields = dict(doc["config"])
    fields["bb_mode"] = BBMode(fields["bb_mode"])
    return SimulatorConfig(**fields)


def write_manifest(doc: dict[str, Any], path: "str | Path") -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
    return path
