"""The structured event log: ``repro.obs.log/1``.

Simulator subsystems never write ad-hoc text to stdout/stderr (lint
rules SIM040/SIM080 reject it); anything worth telling a human or a
tailing tool is a *structured event* published through the observer::

    obs.log_event("storage", "insufficient_storage",
                  service="bb-private", file="w1.fits", need=2.1e9)

An event record is a plain dict with a fixed envelope:

========== ===========================================================
field      meaning
========== ===========================================================
``ts``     wall-clock seconds (added by the live bus at flush time;
           ``None`` in deterministic post-run exports)
``sim_time`` simulation clock at emission
``component`` emitting subsystem (``des``, ``network``, ``storage``,
           ``compute``, ``wms``, ``sweep``)
``event``  short snake_case event name
``fields`` free-form JSON-plain payload
========== ===========================================================

Records are serialized as NDJSON: one JSON object per line, preceded by
a single header line carrying the schema tag, so a consumer can
validate the format before parsing gigabytes of events.  Post-run
exports (``events.ndjson`` in a telemetry directory) are wall-clock
free and therefore byte-identical across runs of the same
configuration; the live stream adds ``ts`` stamps.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterator, Optional

#: Event-log format identifier; bump on breaking envelope changes.
LOG_SCHEMA = "repro.obs.log/1"

#: The components sanctioned to emit events (mirrors the subsystems
#: lint rule SIM080 covers, plus the observability layer itself).
COMPONENTS = ("des", "network", "storage", "compute", "wms", "sweep", "obs")


def make_event(
    sim_time: float,
    component: str,
    event: str,
    fields: Optional[dict[str, Any]] = None,
    ts: Optional[float] = None,
) -> dict[str, Any]:
    """Build one schema-conforming event record."""
    return {
        "ts": ts,
        "sim_time": sim_time,
        "component": component,
        "event": event,
        "fields": dict(fields) if fields else {},
    }


def header() -> dict[str, Any]:
    """The NDJSON stream's first line."""
    return {"schema": LOG_SCHEMA}


def write_events(
    events: "list[dict[str, Any]]", path: "str | Path"
) -> Path:
    """Write a complete event stream (header + records) as NDJSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    lines = [json.dumps(header(), sort_keys=True)]
    lines.extend(json.dumps(e, sort_keys=True) for e in events)
    path.write_text("\n".join(lines) + "\n")
    return path


def read_events(path: "str | Path") -> list[dict[str, Any]]:
    """Read an NDJSON event stream, checking the header schema tag."""
    records = list(iter_ndjson(path))
    if not records or records[0].get("schema") != LOG_SCHEMA:
        raise ValueError(
            f"{path}: not a {LOG_SCHEMA} stream "
            f"(header: {records[0] if records else 'missing'})"
        )
    return records[1:]


def iter_ndjson(path: "str | Path") -> Iterator[dict[str, Any]]:
    """Yield one parsed object per non-empty NDJSON line.

    Tolerates a truncated final line (a live producer may be mid-write);
    any other parse failure raises.
    """
    text = Path(path).read_text()
    lines = text.splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            yield json.loads(line)
        except json.JSONDecodeError:
            if i == len(lines) - 1 and not text.endswith("\n"):
                return  # mid-write tail from a live producer
            raise
