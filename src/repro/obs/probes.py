"""Metric primitives: counters, gauges, and timestamped series.

Three probe kinds cover every signal the simulator publishes:

* :class:`Counter` — monotonically increasing totals (bytes moved,
  operations issued, events processed);
* :class:`Gauge` — a single last-value scalar (a service's configured
  capacity, a final utilization figure);
* :class:`TimeSeries` — a step function sampled *on change* (burst
  buffer occupancy, busy cores, concurrent flows).  Discrete-event
  simulations make push-on-change sampling exact: between samples the
  value cannot have changed, so no periodic sampler process is needed
  (and none could perturb the simulation);
* :class:`Histogram` — bucketed observations of a repeated quantity
  (per-point wall times in a sweep campaign), for cheap percentile
  estimates without keeping every sample.

Probes live in a :class:`MetricRegistry`, created lazily by name so
instrumentation points never need declaring metrics up front.
"""

from __future__ import annotations

from typing import Iterator, Optional, Sequence


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A last-value scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Gauge {self.name}={self.value}>"


class TimeSeries:
    """A timestamped step series, sampled whenever the value changes.

    Consecutive samples at the same timestamp collapse to the last one
    (a DES processes many state changes at one instant; only the value
    the instant settles on is observable).  Timestamps must be
    non-decreasing — they come from the simulation clock.
    """

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def sample(self, time: float, value: float) -> None:
        if self.times:
            last = self.times[-1]
            if time < last:
                raise ValueError(
                    f"series {self.name!r}: time went backwards "
                    f"({time} < {last})"
                )
            if time == last:  # lint: ignore[SIM022] — same-instant collapse is intentional
                self.values[-1] = value
                return
        self.times.append(time)
        self.values.append(value)

    def items(self) -> Iterator[tuple[float, float]]:
        return zip(self.times, self.values)

    @property
    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    @property
    def peak(self) -> Optional[float]:
        return max(self.values) if self.values else None

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TimeSeries {self.name}: {len(self)} samples>"


#: Default histogram bucket upper bounds, in seconds: tuned for the
#: wall times of sweep points (sub-second micro points up to ten-minute
#: full-scale simulations).  The implicit final bucket is +inf.
DEFAULT_SECONDS_BUCKETS = (
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0, 600.0,
)


class Histogram:
    """Bucketed observations with cumulative counts (Prometheus-style).

    ``bounds`` are the inclusive upper edges of the finite buckets; an
    implicit +inf bucket catches everything above the last bound.
    ``counts[i]`` is the number of observations ``<= bounds[i]`` (the
    +inf count is :attr:`count`).
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum")

    def __init__(
        self, name: str, bounds: Sequence[float] = DEFAULT_SECONDS_BUCKETS
    ) -> None:
        if not bounds or any(b <= a for a, b in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r}: bounds must be strictly increasing"
            )
        self.name = name
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * len(self.bounds)
        self.count = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[i] += 1

    def quantile(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the ``q``-th observation); ``None`` when empty, and the
        last finite bound when the quantile lands in the +inf bucket."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = q * self.count
        for bound, cumulative in zip(self.bounds, self.counts):
            if cumulative >= rank:
                return bound
        return self.bounds[-1]

    def snapshot(self) -> dict:
        """JSON-ready view: cumulative ``(le, count)`` pairs plus totals."""
        return {
            "buckets": [
                {"le": bound, "count": cumulative}
                for bound, cumulative in zip(self.bounds, self.counts)
            ],
            "count": self.count,
            "sum": self.sum,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Histogram {self.name}: {self.count} observations>"


class MetricRegistry:
    """Lazily-created probes, addressed by dotted metric name.

    Names follow ``<group>.<subject>.<quantity>`` —
    ``storage.bb-private.occupancy_bytes``, ``compute.cn0.busy_cores``.
    One name maps to exactly one probe kind; asking for the same name
    with a different kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.series: dict[str, TimeSeries] = {}
        self.histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        probe = self.counters.get(name)
        if probe is None:
            self._claim(name)
            probe = self.counters[name] = Counter(name)
        return probe

    def gauge(self, name: str) -> Gauge:
        probe = self.gauges.get(name)
        if probe is None:
            self._claim(name)
            probe = self.gauges[name] = Gauge(name)
        return probe

    def timeseries(self, name: str) -> TimeSeries:
        probe = self.series.get(name)
        if probe is None:
            self._claim(name)
            probe = self.series[name] = TimeSeries(name)
        return probe

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_SECONDS_BUCKETS
    ) -> Histogram:
        probe = self.histograms.get(name)
        if probe is None:
            self._claim(name)
            probe = self.histograms[name] = Histogram(name, bounds)
        return probe

    def _claim(self, name: str) -> None:
        if (
            name in self.counters
            or name in self.gauges
            or name in self.series
            or name in self.histograms
        ):
            raise ValueError(f"metric {name!r} already exists with another kind")

    def names(self) -> list[str]:
        """Every registered metric name, sorted."""
        return sorted(
            [*self.counters, *self.gauges, *self.series, *self.histograms]
        )

    def snapshot(self) -> dict:
        """Plain-data view of every probe (JSON-ready)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "series": {
                n: {"times": list(s.times), "values": list(s.values)}
                for n, s in sorted(self.series.items())
            },
            "histograms": {
                n: h.snapshot() for n, h in sorted(self.histograms.items())
            },
        }

    def __len__(self) -> int:
        return (
            len(self.counters)
            + len(self.gauges)
            + len(self.series)
            + len(self.histograms)
        )
