"""Metric primitives: counters, gauges, and timestamped series.

Three probe kinds cover every signal the simulator publishes:

* :class:`Counter` — monotonically increasing totals (bytes moved,
  operations issued, events processed);
* :class:`Gauge` — a single last-value scalar (a service's configured
  capacity, a final utilization figure);
* :class:`TimeSeries` — a step function sampled *on change* (burst
  buffer occupancy, busy cores, concurrent flows).  Discrete-event
  simulations make push-on-change sampling exact: between samples the
  value cannot have changed, so no periodic sampler process is needed
  (and none could perturb the simulation).

Probes live in a :class:`MetricRegistry`, created lazily by name so
instrumentation points never need declaring metrics up front.
"""

from __future__ import annotations

from typing import Iterator, Optional


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r}: negative increment {amount}")
        self.value += amount

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Counter {self.name}={self.value}>"


class Gauge:
    """A last-value scalar."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Gauge {self.name}={self.value}>"


class TimeSeries:
    """A timestamped step series, sampled whenever the value changes.

    Consecutive samples at the same timestamp collapse to the last one
    (a DES processes many state changes at one instant; only the value
    the instant settles on is observable).  Timestamps must be
    non-decreasing — they come from the simulation clock.
    """

    __slots__ = ("name", "times", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.times: list[float] = []
        self.values: list[float] = []

    def sample(self, time: float, value: float) -> None:
        if self.times:
            last = self.times[-1]
            if time < last:
                raise ValueError(
                    f"series {self.name!r}: time went backwards "
                    f"({time} < {last})"
                )
            if time == last:  # lint: ignore[SIM022] — same-instant collapse is intentional
                self.values[-1] = value
                return
        self.times.append(time)
        self.values.append(value)

    def items(self) -> Iterator[tuple[float, float]]:
        return zip(self.times, self.values)

    @property
    def last(self) -> Optional[float]:
        return self.values[-1] if self.values else None

    @property
    def peak(self) -> Optional[float]:
        return max(self.values) if self.values else None

    def __len__(self) -> int:
        return len(self.times)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TimeSeries {self.name}: {len(self)} samples>"


class MetricRegistry:
    """Lazily-created probes, addressed by dotted metric name.

    Names follow ``<group>.<subject>.<quantity>`` —
    ``storage.bb-private.occupancy_bytes``, ``compute.cn0.busy_cores``.
    One name maps to exactly one probe kind; asking for the same name
    with a different kind is a programming error and raises.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.series: dict[str, TimeSeries] = {}

    def counter(self, name: str) -> Counter:
        probe = self.counters.get(name)
        if probe is None:
            self._claim(name)
            probe = self.counters[name] = Counter(name)
        return probe

    def gauge(self, name: str) -> Gauge:
        probe = self.gauges.get(name)
        if probe is None:
            self._claim(name)
            probe = self.gauges[name] = Gauge(name)
        return probe

    def timeseries(self, name: str) -> TimeSeries:
        probe = self.series.get(name)
        if probe is None:
            self._claim(name)
            probe = self.series[name] = TimeSeries(name)
        return probe

    def _claim(self, name: str) -> None:
        if name in self.counters or name in self.gauges or name in self.series:
            raise ValueError(f"metric {name!r} already exists with another kind")

    def names(self) -> list[str]:
        """Every registered metric name, sorted."""
        return sorted([*self.counters, *self.gauges, *self.series])

    def snapshot(self) -> dict:
        """Plain-data view of every probe (JSON-ready)."""
        return {
            "counters": {n: c.value for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "series": {
                n: {"times": list(s.times), "values": list(s.values)}
                for n, s in sorted(self.series.items())
            },
        }

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.series)
