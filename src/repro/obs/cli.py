"""``repro-obs`` — validate, watch, and report on telemetry.

Three subcommands over the observability file formats:

* ``repro-obs validate <dir>...`` — schema-check exported telemetry
  directories (same checks as ``python -m repro.obs``);
* ``repro-obs watch <live-dir>`` — tail a live directory (a sweep's
  ``repro.sweep.live/1`` stream or a single run's ``repro.obs.live/1``
  bus) and render progress: completed/cached/failed counts, per-point
  heartbeat age, p50/p99 point latency, and an ETA.  ``--once`` renders
  a single frame and exits — it works on finished directories too;
* ``repro-obs report <live-dir> -o report.html`` — write a
  self-contained static HTML report (stat tiles, a point-duration
  histogram, and the point table) from the same stream.

The watcher is a harness tool: it reads the host clock to compute
heartbeat ages (pragma-suppressed SIM001), never the simulation clock.
"""

from __future__ import annotations

import argparse
import html
import json
import sys
import time
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.obs.log import iter_ndjson
from repro.obs.validate import error_path, validate_obs_dir

#: Heartbeat age (s) past which a live run is flagged as possibly stalled.
STALL_AFTER_S = 30.0


# ----------------------------------------------------------------------
# Live-directory loading
# ----------------------------------------------------------------------
class WatchError(RuntimeError):
    """The directory does not contain a recognizable live stream."""


def load_live_dir(directory: "str | Path") -> dict[str, Any]:
    """Read a live directory into one state dict.

    Returns ``{"kind": "sweep" | "run", "heartbeat": ..., "events":
    [...]}``; the kind is detected from the heartbeat schema.  Raises
    :class:`WatchError` when there is no heartbeat to key off.
    """
    directory = Path(directory)
    heartbeat_path = directory / "heartbeat.json"
    if not heartbeat_path.is_file():
        raise WatchError(
            f"{directory}: no heartbeat.json — not a live telemetry "
            "directory (pass a --live sweep dir or an obs live/ dir)"
        )
    heartbeat = json.loads(heartbeat_path.read_text())
    schema = heartbeat.get("schema", "")
    if schema.startswith("repro.sweep.live/"):
        kind = "sweep"
        stream = directory / "sweep.ndjson"
    elif schema.startswith("repro.obs.live/"):
        kind = "run"
        stream = directory / "events.ndjson"
    else:
        raise WatchError(
            f"{heartbeat_path}: unrecognized heartbeat schema {schema!r}"
        )
    events: list[dict[str, Any]] = []
    if stream.is_file():
        events = [r for r in iter_ndjson(stream) if "schema" not in r]
    return {
        "kind": kind,
        "directory": directory,
        "heartbeat": heartbeat,
        "events": events,
    }


def point_durations(events: "list[dict[str, Any]]") -> list[float]:
    """Wall-time samples of settled point attempts, in stream order."""
    return [
        float(e["duration"])
        for e in events
        if e.get("event") in ("point_completed", "point_failed", "point_retry")
        and isinstance(e.get("duration"), (int, float))
    ]


def quantile(samples: "list[float]", q: float) -> Optional[float]:
    """Nearest-rank quantile of raw samples (``None`` when empty)."""
    if not samples:
        return None
    ordered = sorted(samples)
    index = min(len(ordered) - 1, max(0, round(q * (len(ordered) - 1))))
    return ordered[index]


def sweep_eta(
    progress: dict[str, Any], durations: "list[float]"
) -> Optional[float]:
    """Naive remaining-time estimate: remaining × mean ÷ parallelism."""
    total = progress.get("total") or 0
    done = sum(
        progress.get(k) or 0 for k in ("completed", "cached", "failed")
    )
    remaining = total - done
    if remaining <= 0 or not durations:
        return None
    mean = sum(durations) / len(durations)
    workers = max(1.0, float(progress.get("in_flight") or 0))
    return remaining * mean / workers


def _format_seconds(value: Optional[float]) -> str:
    if value is None:
        return "—"
    if value >= 120:
        return f"{value / 60:.1f}m"
    return f"{value:.1f}s"


# ----------------------------------------------------------------------
# watch
# ----------------------------------------------------------------------
def render_sweep(state: dict[str, Any], now: float) -> str:
    """One text frame of sweep progress."""
    heartbeat = state["heartbeat"]
    progress = heartbeat.get("progress", {})
    closed = bool(heartbeat.get("closed"))
    age = now - float(heartbeat.get("ts", now))
    total = int(progress.get("total") or 0)
    completed = int(progress.get("completed") or 0)
    cached = int(progress.get("cached") or 0)
    failed = int(progress.get("failed") or 0)
    retried = int(progress.get("retried") or 0)
    done = completed + cached + failed

    if closed:
        status = "FAILED" if failed else "DONE"
    elif age > STALL_AFTER_S:
        status = f"STALLED? (heartbeat {age:.0f}s ago)"
    else:
        status = f"RUNNING (heartbeat {age:.1f}s ago)"

    width = 30
    filled = round(width * done / total) if total else width
    bar = "#" * filled + "." * (width - filled)

    lines = [
        f"sweep {heartbeat.get('sweep_id', '?')} — {status}",
        f"  [{bar}] {done}/{total} points — "
        f"{completed} completed, {cached} cached, {failed} failed, "
        f"{retried} retried",
    ]
    in_flight = heartbeat.get("in_flight") or {}
    if in_flight:
        lines.append(f"  in flight ({len(in_flight)}):")
        for pid, started in sorted(in_flight.items()):
            lines.append(f"    {pid} — running {now - float(started):.1f}s")
    durations = point_durations(state["events"])
    p50 = quantile(durations, 0.50)
    p99 = quantile(durations, 0.99)
    eta = None if closed else sweep_eta(progress, durations)
    lines.append(
        f"  point latency p50 {_format_seconds(p50)}  "
        f"p99 {_format_seconds(p99)}"
        + (f"   ETA ~{_format_seconds(eta)}" if eta is not None else "")
    )
    return "\n".join(lines)


def render_run(state: dict[str, Any], now: float) -> str:
    """One text frame of a single simulation's live bus."""
    heartbeat = state["heartbeat"]
    closed = bool(heartbeat.get("closed"))
    age = now - float(heartbeat.get("ts", now))
    if closed:
        status = "DONE"
    elif age > STALL_AFTER_S:
        status = f"STALLED? (heartbeat {age:.0f}s ago)"
    else:
        status = f"RUNNING (heartbeat {age:.1f}s ago)"
    lines = [
        f"run {state['directory']} — {status}",
        f"  sim time {heartbeat.get('sim_time') or 0.0:.1f}s — "
        f"{heartbeat.get('seq', 0)} flushes, "
        f"{len(state['events'])} bus records, "
        f"{heartbeat.get('dropped', 0)} dropped",
    ]
    kinds: dict[str, int] = {}
    for record in state["events"]:
        kind = record.get("kind", "?")
        kinds[kind] = kinds.get(kind, 0) + 1
    if kinds:
        summary = ", ".join(f"{n} {k}" for k, n in sorted(kinds.items()))
        lines.append(f"  {summary}")
    return "\n".join(lines)


def render(state: dict[str, Any], now: float) -> str:
    if state["kind"] == "sweep":
        return render_sweep(state, now)
    return render_run(state, now)


def watch(directory: "str | Path", once: bool, interval: float) -> int:
    """Render the live directory until it closes (or once)."""
    while True:
        try:
            state = load_live_dir(directory)
        except WatchError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        now = time.time()  # lint: ignore[SIM001] — harness wall clock
        print(render(state, now))
        if once or state["heartbeat"].get("closed"):
            return 0
        time.sleep(interval)
        print()


# ----------------------------------------------------------------------
# report
# ----------------------------------------------------------------------
_REPORT_CSS = """\
:root { color-scheme: light dark; }
body {
  margin: 0; padding: 24px;
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  background: var(--page); color: var(--text-primary);
}
.viz-root {
  color-scheme: light;
  --page:           #f9f9f7;
  --surface-1:      #fcfcfb;
  --text-primary:   #0b0b0b;
  --text-secondary: #52514e;
  --text-muted:     #898781;
  --gridline:       #e1e0d9;
  --border:         rgba(11,11,11,0.10);
  --series-1:       #2a78d6;
  --status-good:    #0ca30c;
  --status-critical:#d03b3b;
  --status-warning: #fab219;
}
@media (prefers-color-scheme: dark) {
  :root:where(:not([data-theme="light"])) .viz-root {
    color-scheme: dark;
    --page:           #0d0d0d;
    --surface-1:      #1a1a19;
    --text-primary:   #ffffff;
    --text-secondary: #c3c2b7;
    --text-muted:     #898781;
    --gridline:       #2c2c2a;
    --border:         rgba(255,255,255,0.10);
    --series-1:       #3987e5;
    --status-good:    #0ca30c;
    --status-critical:#d03b3b;
    --status-warning: #fab219;
  }
}
:root[data-theme="dark"] .viz-root {
  color-scheme: dark;
  --page:           #0d0d0d;
  --surface-1:      #1a1a19;
  --text-primary:   #ffffff;
  --text-secondary: #c3c2b7;
  --text-muted:     #898781;
  --gridline:       #2c2c2a;
  --border:         rgba(255,255,255,0.10);
  --series-1:       #3987e5;
  --status-good:    #0ca30c;
  --status-critical:#d03b3b;
  --status-warning: #fab219;
}
h1 { font-size: 20px; margin: 0 0 4px; }
.subtitle { color: var(--text-secondary); margin: 0 0 20px; font-size: 13px; }
.tiles { display: flex; flex-wrap: wrap; gap: 12px; margin-bottom: 24px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 12px 16px; min-width: 110px;
}
.tile .label { font-size: 12px; color: var(--text-secondary); }
.tile .value { font-size: 24px; margin-top: 2px; }
.tile .value .unit { font-size: 13px; color: var(--text-secondary); }
.card {
  background: var(--surface-1); border: 1px solid var(--border);
  border-radius: 8px; padding: 16px; margin-bottom: 24px;
}
.card h2 { font-size: 14px; margin: 0 0 12px; }
.hist { display: flex; align-items: flex-end; gap: 2px; height: 120px; }
.hist .bin {
  flex: 1; background: var(--series-1);
  border-radius: 4px 4px 0 0; min-height: 1px; position: relative;
}
.hist .bin:hover { filter: brightness(1.15); }
.hist .bin .tip {
  display: none; position: absolute; bottom: 100%; left: 50%;
  transform: translateX(-50%); margin-bottom: 6px; white-space: nowrap;
  background: var(--surface-1); color: var(--text-primary);
  border: 1px solid var(--border); border-radius: 6px;
  padding: 4px 8px; font-size: 12px; z-index: 2;
}
.hist .bin:hover .tip { display: block; }
.hist-axis {
  display: flex; justify-content: space-between;
  color: var(--text-muted); font-size: 11px; margin-top: 4px;
}
table { border-collapse: collapse; width: 100%; font-size: 13px; }
th {
  text-align: left; color: var(--text-secondary); font-weight: 600;
  border-bottom: 1px solid var(--gridline); padding: 6px 10px;
}
td { border-bottom: 1px solid var(--gridline); padding: 6px 10px; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.status { white-space: nowrap; }
.status.good { color: var(--status-good); }
.status.critical { color: var(--status-critical); }
.status.neutral { color: var(--text-secondary); }
"""


def _status_cell(status: str) -> str:
    if status == "completed":
        return '<span class="status good">✓ completed</span>'
    if status == "failed":
        return '<span class="status critical">✕ failed</span>'
    return f'<span class="status neutral">• {html.escape(status)}</span>'


def _histogram_bins(
    durations: "list[float]", n_bins: int = 20
) -> "list[tuple[float, float, int]]":
    """(lo, hi, count) fixed-width bins over the sample range."""
    if not durations:
        return []
    lo, hi = min(durations), max(durations)
    if hi <= lo:
        return [(lo, hi, len(durations))]
    width = (hi - lo) / n_bins
    counts = [0] * n_bins
    for d in durations:
        counts[min(n_bins - 1, int((d - lo) / width))] += 1
    return [
        (lo + i * width, lo + (i + 1) * width, c)
        for i, c in enumerate(counts)
    ]


def build_report_html(state: dict[str, Any]) -> str:
    """Self-contained static HTML for a sweep live directory."""
    heartbeat = state["heartbeat"]
    events = state["events"]
    progress = heartbeat.get("progress", {})
    durations = point_durations(events)
    p50 = quantile(durations, 0.50)
    p99 = quantile(durations, 0.99)
    closed = bool(heartbeat.get("closed"))
    failed = int(progress.get("failed") or 0)
    if not closed:
        status = "running"
    elif failed:
        status = "failed"
    else:
        status = "done"

    tiles = [
        ("Points", f"{int(progress.get('total') or 0)}", ""),
        ("Completed", f"{int(progress.get('completed') or 0)}", ""),
        ("Cached", f"{int(progress.get('cached') or 0)}", ""),
        ("Failed", f"{failed}", ""),
        ("Retried", f"{int(progress.get('retried') or 0)}", ""),
        ("p50 latency", _format_seconds(p50), ""),
        ("p99 latency", _format_seconds(p99), ""),
    ]
    tile_html = "".join(
        f'<div class="tile"><div class="label">{html.escape(label)}</div>'
        f'<div class="value">{html.escape(value)}'
        f'<span class="unit">{html.escape(unit)}</span></div></div>'
        for label, value, unit in tiles
    )

    bins = _histogram_bins(durations)
    peak = max((c for _, _, c in bins), default=1) or 1
    bin_html = "".join(
        f'<div class="bin" style="height:{max(1, round(100 * c / peak))}%">'
        f'<span class="tip">{c} point(s) · '
        f"{lo:.2f}–{hi:.2f}s</span></div>"
        for lo, hi, c in bins
    )
    if bins:
        hist_html = (
            f'<div class="hist">{bin_html}</div>'
            f'<div class="hist-axis"><span>{bins[0][0]:.2f}s</span>'
            f"<span>{bins[-1][1]:.2f}s</span></div>"
        )
    else:
        hist_html = '<p class="subtitle">no settled points yet</p>'

    # Last event per point wins: the table shows the final state.
    final: dict[str, dict[str, Any]] = {}
    for record in events:
        pid = record.get("point_id")
        if pid:
            final[pid] = record
    rows = []
    for pid in sorted(final):
        record = final[pid]
        event = record.get("event", "")
        status_name = {
            "point_completed": "completed",
            "point_cached": "cached",
            "point_failed": "failed",
            "point_started": "running",
            "point_retry": "retrying",
        }.get(event, event)
        duration = record.get("duration")
        duration_text = (
            f"{duration:.2f}"
            if isinstance(duration, (int, float))
            else "—"
        )
        error = html.escape(str(record.get("error", "") or ""))
        rows.append(
            f"<tr><td>{html.escape(pid)}</td>"
            f"<td>{_status_cell(status_name)}</td>"
            f'<td class="num">{duration_text}</td>'
            f"<td>{error}</td></tr>"
        )
    table_html = (
        "<table><thead><tr><th>point</th><th>status</th>"
        '<th style="text-align:right">wall time (s)</th><th>error</th>'
        "</tr></thead><tbody>" + "".join(rows) + "</tbody></table>"
    )

    sweep_id = html.escape(str(heartbeat.get("sweep_id", "?")))
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>sweep {sweep_id} — repro-obs report</title>
<style>
{_REPORT_CSS}
</style>
</head>
<body class="viz-root">
<h1>Sweep {sweep_id}</h1>
<p class="subtitle">status: {status} · schema {html.escape(str(heartbeat.get("schema", "")))}</p>
<div class="tiles">{tile_html}</div>
<div class="card"><h2>Point wall-time distribution</h2>{hist_html}</div>
<div class="card"><h2>Points</h2>{table_html}</div>
</body>
</html>
"""


def report(directory: "str | Path", output: "str | Path") -> int:
    try:
        state = load_live_dir(directory)
    except WatchError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if state["kind"] != "sweep":
        print(
            "error: report needs a sweep live directory "
            "(repro.sweep.live/1 heartbeat)",
            file=sys.stderr,
        )
        return 2
    output = Path(output)
    output.parent.mkdir(parents=True, exist_ok=True)
    output.write_text(build_report_html(state))
    print(f"wrote {output}")
    return 0


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-obs",
        description="Validate, watch, and report on repro telemetry.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_validate = sub.add_parser(
        "validate", help="schema-check exported telemetry directories"
    )
    p_validate.add_argument("directories", nargs="+")

    p_watch = sub.add_parser(
        "watch", help="tail a live directory and render progress"
    )
    p_watch.add_argument("directory")
    p_watch.add_argument(
        "--once", action="store_true",
        help="render one frame and exit (works on finished dirs)",
    )
    p_watch.add_argument(
        "--interval", type=float, default=2.0,
        help="refresh period in seconds (default: 2)",
    )

    p_report = sub.add_parser(
        "report", help="write a static HTML report from a sweep live dir"
    )
    p_report.add_argument("directory")
    p_report.add_argument(
        "-o", "--output", default="report.html",
        help="output HTML path (default: report.html)",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "validate":
        failed = False
        for directory in args.directories:
            errors = validate_obs_dir(directory)
            if errors:
                failed = True
                for error in errors:
                    print(
                        f"{error_path(directory, error)}: {error}",
                        file=sys.stderr,
                    )
            else:
                print(f"{directory}: ok")
        return 1 if failed else 0
    if args.command == "watch":
        return watch(args.directory, args.once, args.interval)
    if args.command == "report":
        return report(args.directory, args.output)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
