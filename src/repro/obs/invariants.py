"""Online invariant monitors: fail at the timestep, not at the makespan.

A silent modeling bug — an allocator handing out more bandwidth than a
link has, a burst buffer accepting more bytes than its pool, the event
queue travelling backwards in time — corrupts every downstream figure
while the run itself completes "successfully".  Monitors registered on
an :class:`~repro.obs.observer.Observer` check these invariants *online*
(inside the hook that carries the relevant state) and raise
:class:`InvariantViolation` with the recent event chain the moment one
breaks, so the offending decision is still on the stack.

Monitors are observers of observers: they never touch simulated state,
so a monitored run that completes is bit-identical to an unmonitored
one.  With no monitors registered the per-hook cost is one truthiness
test on an empty tuple.

Standard monitors (:func:`standard_monitors`):

* :class:`BBOccupancyMonitor` — every storage service's occupancy stays
  at or below its capacity (relative tolerance 1e-9);
* :class:`LinkCapacityMonitor` — after every rate solve, the flow-rate
  sum over each link stays within its effective capacity (rel 1e-9);
* :class:`EventMonotonicityMonitor` — the DES clock never decreases
  across processed events;
* :class:`LeaseBalanceMonitor` — the BB provisioner's granule ledger
  balances: free + outstanding == pool, with free in [0, pool].
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.observer import Observer

#: Relative slack for float-accumulation noise in capacity comparisons.
_REL_TOL = 1e-9


class InvariantViolation(RuntimeError):
    """A model invariant broke mid-run.

    Carries the violated ``invariant`` name, a human-readable
    ``detail``, and the observer's recent event ``chain`` (most recent
    last) so the report shows *how* the simulation got here, not just
    that it did.
    """

    def __init__(
        self, invariant: str, detail: str, chain: "list[dict[str, Any]]"
    ) -> None:
        self.invariant = invariant
        self.detail = detail
        self.chain = list(chain)
        tail = "\n".join(
            f"  [{r.get('sim_time')}] {r.get('component')}.{r.get('event')} "
            f"{r.get('fields')}"
            for r in self.chain[-8:]
        )
        super().__init__(
            f"invariant {invariant!r} violated: {detail}"
            + (f"\nrecent event chain (most recent last):\n{tail}" if tail else "")
        )


class InvariantMonitor:
    """Base class: named checks over observer hook payloads.

    Subclasses override the ``on_*`` methods they care about.  Every
    successful check must go through :meth:`passed` so the per-monitor
    check counters exist even for runs with zero violations — "no
    violations reported" and "nothing was checked" must be
    distinguishable in CI.
    """

    name = "invariant"

    def bind(self, observer: "Observer") -> None:
        self._observer = observer
        self._checks = observer.registry.counter(f"invariants.{self.name}.checks")

    def passed(self) -> None:
        self._checks.inc()

    def fail(self, detail: str, **fields: Any) -> None:
        observer = self._observer
        observer.log_event("obs", "invariant_violation",
                           invariant=self.name, detail=detail, **fields)
        observer.registry.counter("invariants.violations").inc()
        raise InvariantViolation(self.name, detail, list(observer.recent_events))

    # Hook surface (all optional) ---------------------------------------
    def on_storage_occupancy(
        self, service: str, used: float, capacity: float
    ) -> None: ...

    def on_rates_assigned(self, flows) -> None: ...

    def on_event_processed(self, when: Optional[float]) -> None: ...

    def on_bb_lease(
        self, action: str, granules: int, free: int, total: int, job: str
    ) -> None: ...


class BBOccupancyMonitor(InvariantMonitor):
    """Storage occupancy must never exceed capacity."""

    name = "bb_occupancy"

    def on_storage_occupancy(
        self, service: str, used: float, capacity: float
    ) -> None:
        if used > capacity * (1 + _REL_TOL):
            self.fail(
                f"service {service!r} holds {used:.6e} B, capacity is "
                f"{capacity:.6e} B",
                service=service, used=used, capacity=capacity,
            )
        self.passed()


class LinkCapacityMonitor(InvariantMonitor):
    """Per-link flow-rate sums must respect effective link capacity.

    Checked against the same effective capacity the allocators see:
    ``link.effective_bandwidth(n_users)`` with the user count taken over
    the active flows traversing the link.
    """

    name = "link_capacity"

    def on_rates_assigned(self, flows) -> None:
        loads: dict[str, float] = {}
        users: dict[str, int] = {}
        links: dict[str, Any] = {}
        for flow in flows:
            for link in flow.links:
                loads[link.name] = loads.get(link.name, 0.0) + flow.rate
                users[link.name] = users.get(link.name, 0) + 1
                links[link.name] = link
        for name in sorted(loads):
            capacity = links[name].effective_bandwidth(users[name])
            if loads[name] > capacity * (1 + _REL_TOL):
                self.fail(
                    f"link {name!r} carries {loads[name]:.6e} B/s over "
                    f"effective capacity {capacity:.6e} B/s "
                    f"({users[name]} flows)",
                    link=name, load=loads[name], capacity=capacity,
                    flows=users[name],
                )
        self.passed()


class EventMonotonicityMonitor(InvariantMonitor):
    """The DES clock must be non-decreasing across processed events."""

    name = "event_monotonicity"

    def __init__(self) -> None:
        self._last: Optional[float] = None

    def on_event_processed(self, when: Optional[float]) -> None:
        if when is None:
            return  # legacy call site without a timestamp
        if self._last is not None and when < self._last:
            self.fail(
                f"event processed at t={when} after t={self._last}",
                when=when, previous=self._last,
            )
        self._last = when
        self.passed()


class LeaseBalanceMonitor(InvariantMonitor):
    """The BB provisioner's granule ledger must balance.

    Maintains its own outstanding-granule count from lease events and
    cross-checks the provisioner's reported free count: a double
    release, a grant that was never carved, or a free count outside
    ``[0, pool]`` all surface here.
    """

    name = "lease_balance"

    def __init__(self) -> None:
        self._outstanding = 0

    def on_bb_lease(
        self, action: str, granules: int, free: int, total: int, job: str
    ) -> None:
        if action == "granted":
            self._outstanding += granules
        elif action == "released":
            self._outstanding -= granules
        else:
            return  # "queued" carries no ledger change
        if self._outstanding < 0:
            self.fail(
                f"released more granules than were granted "
                f"(outstanding={self._outstanding} after {action} of "
                f"{granules} for job {job!r})",
                action=action, granules=granules, job=job,
            )
        if not 0 <= free <= total:
            self.fail(
                f"free granule count {free} outside pool [0, {total}]",
                free=free, total=total, job=job,
            )
        if self._outstanding + free != total:
            self.fail(
                f"ledger imbalance: outstanding {self._outstanding} + free "
                f"{free} != pool {total}",
                outstanding=self._outstanding, free=free, total=total,
            )
        self.passed()


def standard_monitors() -> "list[InvariantMonitor]":
    """One fresh instance of every standard monitor."""
    return [
        BBOccupancyMonitor(),
        LinkCapacityMonitor(),
        EventMonotonicityMonitor(),
        LeaseBalanceMonitor(),
    ]
