"""Telemetry exporters: Chrome trace-event JSON, CSV series, manifests.

Layout of one exported run directory (``export_run``)::

    <dir>/
      manifest.json          # provenance (repro.obs.manifest)
      trace.json             # Chrome trace-event JSON (open in Perfetto)
      events.ndjson          # structured event log (repro.obs.log/1),
                             # written only when events were emitted
      metrics/
        index.csv            # metric name -> series file
        counters.csv         # metric,value
        gauges.csv           # metric,value
        <metric>.csv         # time,value  (one per time series)

``trace.json`` loads directly into https://ui.perfetto.dev or
``chrome://tracing``: task/phase spans render as nested slices on one
lane per host, and every time series renders as a counter track.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

from repro.obs.observer import Observer

#: Microseconds per simulated second (Chrome trace timestamps are µs).
_US = 1e6


def _sanitize(name: str) -> str:
    """A metric name as a safe filename component."""
    return "".join(c if (c.isalnum() or c in "._-") else "-" for c in name)


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------
def chrome_trace(
    observer: Observer, *, pid: int = 1, profile: Optional[Any] = None
) -> dict[str, Any]:
    """Build a Chrome trace-event document from an observer's data.

    Spans become complete (``"ph": "X"``) events — one lane (*tid*) per
    track/host — and every time series becomes a counter (``"ph": "C"``)
    track.  Events are sorted by timestamp, so consumers (including
    :mod:`repro.obs.validate`) can rely on monotonic ``ts``.

    ``profile`` (a :class:`repro.profile.Profile`) adds a dedicated
    "critical path" lane: one slice per critical-path segment, named by
    the attributed resource, so the makespan attribution is visible
    right next to the task spans in Perfetto.
    """
    events: list[dict[str, Any]] = []

    tids: dict[str, int] = {}
    for span in observer.spans:
        tid = tids.setdefault(span.track, len(tids) + 1)
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": span.start * _US,
                "dur": span.duration * _US,
                "pid": pid,
                "tid": tid,
                "args": dict(span.args),
            }
        )
    if profile is not None:
        tid = tids.setdefault("critical path", len(tids) + 1)
        for segment in profile.critical_path:
            events.append(
                {
                    "name": segment.resource,
                    "cat": "critical-path",
                    "ph": "X",
                    "ts": segment.start * _US,
                    "dur": segment.duration * _US,
                    "pid": pid,
                    "tid": tid,
                    "args": {"task": segment.task, "detail": segment.detail},
                }
            )
    for name, series in sorted(observer.registry.series.items()):
        for time, value in series.items():
            events.append(
                {
                    "name": name,
                    "ph": "C",
                    "ts": time * _US,
                    "pid": pid,
                    "tid": 0,
                    "args": {"value": value},
                }
            )
    events.sort(key=lambda e: (e["ts"], e.get("tid", 0), e["name"]))

    metadata = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro simulation"},
        }
    ]
    for track, tid in sorted(tids.items(), key=lambda kv: kv[1]):
        metadata.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": track},
            }
        )
    return {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": {
                name: counter.value
                for name, counter in sorted(observer.registry.counters.items())
            },
        },
    }


def write_chrome_trace(
    observer: Observer, path: "str | Path", profile: Optional[Any] = None
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(chrome_trace(observer, profile=profile), indent=1) + "\n"
    )
    return path


# ----------------------------------------------------------------------
# CSV time series
# ----------------------------------------------------------------------
def write_metric_csvs(observer: Observer, directory: "str | Path") -> list[Path]:
    """One ``time,value`` CSV per series plus counter/gauge/index tables.

    Returns every path written.  CSVs are plain enough for pandas,
    gnuplot, or a spreadsheet — no reader library required.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[Path] = []

    index_rows: list[tuple[str, str]] = []
    for name, series in sorted(observer.registry.series.items()):
        filename = f"{_sanitize(name)}.csv"
        lines = ["time,value"]
        lines.extend(f"{t!r},{v!r}" for t, v in series.items())
        path = directory / filename
        path.write_text("\n".join(lines) + "\n")
        written.append(path)
        index_rows.append((name, filename))

    index = directory / "index.csv"
    index.write_text(
        "\n".join(["metric,file"] + [f"{n},{f}" for n, f in index_rows]) + "\n"
    )
    written.append(index)

    counters = directory / "counters.csv"
    counters.write_text(
        "\n".join(
            ["metric,value"]
            + [
                f"{name},{counter.value!r}"
                for name, counter in sorted(observer.registry.counters.items())
            ]
        )
        + "\n"
    )
    written.append(counters)

    gauges = directory / "gauges.csv"
    gauges.write_text(
        "\n".join(
            ["metric,value"]
            + [
                f"{name},{gauge.value!r}"
                for name, gauge in sorted(observer.registry.gauges.items())
            ]
        )
        + "\n"
    )
    written.append(gauges)
    return written


# ----------------------------------------------------------------------
# One-call run export
# ----------------------------------------------------------------------
def export_run(
    observer: Observer,
    directory: "str | Path",
    manifest: Optional[dict[str, Any]] = None,
    profile: Optional[Any] = None,
) -> Path:
    """Write a complete telemetry directory for one run.

    ``manifest`` is the document from
    :func:`repro.obs.manifest.build_manifest`; when omitted a minimal
    one (version + metric catalogue) is generated.  ``profile`` (a
    :class:`repro.profile.Profile`) additionally writes ``profile.json``
    and the folded-stacks ``profile.folded``, and merges the
    critical-path lane into ``trace.json``.
    """
    from repro.obs.manifest import build_manifest, write_manifest

    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    if manifest is None:
        manifest = build_manifest(observer=observer)
    write_manifest(manifest, directory / "manifest.json")
    write_chrome_trace(observer, directory / "trace.json", profile=profile)
    write_metric_csvs(observer, directory / "metrics")
    if observer.events:
        from repro.obs.log import write_events

        # Deterministic copy: records keep ts=None (wall time only ever
        # enters via the live bus's flush stamps).
        write_events(observer.events, directory / "events.ndjson")
    if profile is not None:
        from repro.profile import write_flamegraph, write_profile

        write_profile(profile, directory / "profile.json")
        write_flamegraph(profile, directory / "profile.folded")
    bus = observer.bus
    if bus is not None:
        bus.close()
    return directory
