"""The simulation environment: clock, event queue, and main loop."""
# lint: hot-path - the main loop; step() runs once per simulation event

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.des.core import (
    Event,
    EventPriority,
    EventQueue,
    SimulationError,
    StopSimulation,
)
from repro.des.process import Process


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout delay={self.delay} at {id(self):#x}>"


class Environment:
    """Owns the simulation clock and executes events in time order.

    Parameters
    ----------
    initial_time:
        Starting value of the simulation clock (default ``0.0``).
    """

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue = EventQueue()
        self._active_process: Optional[Process] = None
        #: Attached :class:`repro.obs.Observer`, or ``None`` (the
        #: default).  This is the single attachment point the whole
        #: instrumentation layer hangs off: every hook site in the
        #: simulator reads ``env.obs`` and bails on ``None``, so the
        #: disabled path costs one attribute load per hook.  Observers
        #: only record — they never schedule events or advance time.
        self.obs = None

    # ------------------------------------------------------------------
    # Clock and introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none remain."""
        return self._queue.peek_time()

    def __len__(self) -> int:
        """Number of scheduled (not yet processed) events."""
        return len(self._queue)

    # ------------------------------------------------------------------
    # Event factories
    # ------------------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def process(self, generator: Generator) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> Event:
        from repro.des.conditions import AllOf

        return AllOf(self, list(events))

    def any_of(self, events: Iterable[Event]) -> Event:
        from repro.des.conditions import AnyOf

        return AnyOf(self, list(events))

    # ------------------------------------------------------------------
    # Scheduling and the main loop
    # ------------------------------------------------------------------
    def schedule(
        self,
        event: Event,
        priority: EventPriority = EventPriority.NORMAL,
        delay: float = 0.0,
    ) -> None:
        """Queue ``event`` to be processed ``delay`` units from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        self._queue.push(self._now + delay, int(priority), event)

    def step(self) -> None:
        """Process the single next event; raise ``EmptySchedule`` if none."""
        if not self._queue:
            raise EmptySchedule()
        when, event = self._queue.pop()
        if when < self._now:  # pragma: no cover - defensive
            raise SimulationError("event scheduled in the past")
        self._now = when

        callbacks = event.callbacks
        event.callbacks = None  # mark processed
        assert callbacks is not None
        for callback in callbacks:
            callback(event)

        obs = self.obs
        if obs is not None:
            obs.on_event_processed(when)

        if not event._ok and not event.defused:
            # An unhandled failure: re-raise so bugs surface loudly.
            exc = event.value
            if obs is not None:
                obs.log_event(
                    "des", "sim_error",
                    error=type(exc).__name__, detail=str(exc),
                )
            raise exc

    def run(self, until: "float | Event | None" = None) -> Any:
        """Run the simulation.

        ``until`` may be:

        * ``None`` — run until the event queue is exhausted;
        * a number — run until the clock reaches that time;
        * an :class:`Event` — run until that event is processed, returning
          its value.
        """
        stop_value: Any = None
        if until is not None:
            if isinstance(until, Event):
                if until.processed:
                    return until.value

                def _stop(event: Event) -> None:
                    if not event.ok:
                        # Propagate failures of the awaited event.
                        event.defuse()
                        raise event.value
                    raise StopSimulation(event.value)

                if until.callbacks is None:  # pragma: no cover - defensive
                    raise SimulationError("cannot wait on a processed event")
                until.callbacks.append(_stop)
            else:
                at = float(until)
                if at < self._now:
                    raise ValueError(
                        f"until={at} is in the past (now={self._now})"
                    )
                # A stop event at the target time with URGENT priority so
                # that events scheduled at exactly `until` are NOT executed
                # (SimPy semantics: run(until=t) halts the clock at t).
                def _halt(event: Event) -> None:
                    raise StopSimulation(None)

                stop_event = Event(self)
                stop_event._ok = True
                stop_event._value = None
                stop_event.callbacks.append(_halt)
                self.schedule(
                    stop_event,
                    priority=EventPriority.URGENT,
                    delay=at - self._now,
                )

        try:
            while self._queue:
                self.step()
        except StopSimulation as stop:
            stop_value = stop.value
            if isinstance(until, Event):
                return stop_value
            return None
        except EmptySchedule:  # pragma: no cover - loop guard handles it
            pass

        if until is not None and not isinstance(until, Event):
            # Queue drained before reaching the target time: advance clock.
            self._now = max(self._now, float(until))
            return None
        if isinstance(until, Event) and not until.triggered:
            raise SimulationError(
                "run(until=event) finished but the event never triggered"
            )
        return until.value if isinstance(until, Event) else None


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""
