"""Discrete-event simulation kernel.

A from-scratch, generator-based discrete-event simulation (DES) engine in
the style of SimPy / SimGrid's actor layer.  Every higher layer of the
library (network flows, storage services, compute services, the workflow
engine) is built on this kernel.

The central object is :class:`~repro.des.environment.Environment`, which
owns the simulation clock and the pending-event queue.  Simulated
activities are *processes*: plain Python generators that ``yield`` events
(timeouts, other processes, resource requests, ...) and are resumed when
those events fire.

Example
-------
>>> from repro import des
>>> env = des.Environment()
>>> def clock(env, name, tick):
...     while True:
...         yield env.timeout(tick)
>>> _ = env.process(clock(env, "fast", 0.5))
>>> env.run(until=2.0)
>>> env.now
2.0
"""

from repro.des.core import (
    Event,
    EventPriority,
    EventQueue,
    Interrupt,
    SimulationError,
    StopSimulation,
)
from repro.des.environment import Environment, Timeout
from repro.des.process import Process
from repro.des.conditions import AllOf, AnyOf, Condition, ConditionValue
from repro.des.resources import (
    Container,
    PriorityResource,
    Resource,
    ResourceRequest,
    Store,
)

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "Container",
    "Environment",
    "Event",
    "EventPriority",
    "EventQueue",
    "Interrupt",
    "PriorityResource",
    "Process",
    "Resource",
    "ResourceRequest",
    "SimulationError",
    "StopSimulation",
    "Store",
    "Timeout",
]
