"""Composite events: wait for *all* or *any* of a set of events."""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Sequence

from repro.des.core import Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.environment import Environment


class ConditionValue:
    """Ordered mapping of events → values for the events that fired.

    Preserves the order in which the events were passed to the condition,
    so results line up with the request order regardless of completion
    order.
    """

    def __init__(self) -> None:
        self.events: list[Event] = []

    def __getitem__(self, event: Event):
        if event not in self.events:
            raise KeyError(repr(event))
        return event.value

    def __contains__(self, event: Event) -> bool:
        return event in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def keys(self) -> list[Event]:
        return list(self.events)

    def values(self) -> list:
        return [e.value for e in self.events]

    def todict(self) -> dict[Event, object]:
        return {e: e.value for e in self.events}

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Event that triggers when ``evaluate(events, fired_count)`` is true.

    Fails immediately if any constituent event fails (the failure is
    propagated, matching SimPy semantics).
    """

    __slots__ = ("_events", "_evaluate", "_fired", "_done")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[Sequence[Event], int], bool],
        events: Sequence[Event],
    ) -> None:
        super().__init__(env)
        self._events = list(events)
        self._evaluate = evaluate
        self._fired = 0
        self._done: set[int] = set()

        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")

        if not self._events or self._evaluate(self._events, 0):
            # Trivially satisfied (e.g. AllOf([])).
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.callbacks is None:
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _collect_values(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            if id(event) in self._done:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self.triggered:
            # Condition already decided; late arrivals are ignored but a
            # late *failure* must still be defused to avoid crashing run().
            if not event._ok:
                event.defuse()
            return
        if not event._ok:
            event.defuse()
            self.fail(event._value)
            return
        self._fired += 1
        self._done.add(id(event))
        if self._evaluate(self._events, self._fired):
            self.succeed(self._collect_values())


class AllOf(Condition):
    """Triggers once every constituent event has triggered."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Sequence[Event]) -> None:
        super().__init__(env, lambda events, count: count >= len(events), events)


class AnyOf(Condition):
    """Triggers as soon as one constituent event triggers."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Sequence[Event]) -> None:
        if not list(events):
            raise ValueError("AnyOf requires at least one event")
        super().__init__(env, lambda events, count: count >= 1, events)
