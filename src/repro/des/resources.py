"""Shared resources for processes: semaphores, counters, and object stores.

These mirror the classic DES resource triad:

* :class:`Resource` — a semaphore with ``capacity`` slots and a FIFO
  request queue (``PriorityResource`` adds priority ordering).
* :class:`Container` — a continuous quantity (e.g. bytes of BB capacity)
  with blocking ``get``/``put``.
* :class:`Store` — a queue of Python objects with blocking ``get``/``put``.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.des.core import Event, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.environment import Environment


class ResourceRequest(Event):
    """A pending request for one slot of a :class:`Resource`.

    Usable as a context manager::

        with resource.request() as req:
            yield req
            ...  # holding the slot
        # slot released
    """

    __slots__ = ("resource", "priority", "_order")

    def __init__(self, resource: "Resource", priority: float = 0.0) -> None:
        super().__init__(resource.env)
        self.resource = resource
        self.priority = priority
        resource._order += 1
        self._order = resource._order
        resource._queue_request(self)

    def cancel(self) -> None:
        """Withdraw an un-granted request (no-op if already granted)."""
        if not self.triggered:
            self.resource._cancel(self)

    def __enter__(self) -> "ResourceRequest":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.resource.release(self)

    def __lt__(self, other: "ResourceRequest") -> bool:
        return (self.priority, self._order) < (other.priority, other._order)


class Resource:
    """Semaphore with ``capacity`` slots and FIFO granting."""

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self._order = 0
        self._waiting: list[ResourceRequest] = []
        self._users: set[ResourceRequest] = set()

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return len(self._users)

    @property
    def queue(self) -> list[ResourceRequest]:
        """Pending (not yet granted) requests, in grant order."""
        return sorted(self._waiting)

    def request(self, priority: float = 0.0) -> ResourceRequest:
        """Request one slot.  The returned event fires when granted."""
        return ResourceRequest(self, priority)

    def release(self, request: ResourceRequest) -> None:
        """Release a granted slot (idempotent for un-granted requests)."""
        if request in self._users:
            self._users.remove(request)
            self._grant()
        else:
            request.cancel()

    # ------------------------------------------------------------------
    def _queue_request(self, request: ResourceRequest) -> None:
        heapq.heappush(self._waiting, request)
        self._grant()

    def _cancel(self, request: ResourceRequest) -> None:
        try:
            self._waiting.remove(request)
            heapq.heapify(self._waiting)
        except ValueError:
            pass

    def _grant(self) -> None:
        while self._waiting and len(self._users) < self._capacity:
            request = heapq.heappop(self._waiting)
            self._users.add(request)
            request.succeed()


class PriorityResource(Resource):
    """A :class:`Resource` whose requests are granted lowest-priority-first.

    Functionally identical to :class:`Resource` (which already honors the
    ``priority`` argument); this alias exists so call sites can make the
    priority discipline explicit.
    """


class Container:
    """A continuous quantity with blocking ``get``/``put``.

    Used e.g. for burst-buffer capacity accounting: producers ``put``
    bytes, consumers ``get`` them, and both block when the container is
    full/empty respectively.
    """

    def __init__(
        self,
        env: "Environment",
        capacity: float = float("inf"),
        init: float = 0.0,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if init < 0 or init > capacity:
            raise ValueError(f"init={init} outside [0, {capacity}]")
        self.env = env
        self._capacity = capacity
        self._level = float(init)
        self._getters: list[tuple[float, Event]] = []
        self._putters: list[tuple[float, Event]] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    @property
    def level(self) -> float:
        return self._level

    def get(self, amount: float) -> Event:
        """Remove ``amount``; the event fires once enough is available."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        event = Event(self.env)
        self._getters.append((amount, event))
        self._settle()
        return event

    def put(self, amount: float) -> Event:
        """Add ``amount``; the event fires once there is room."""
        if amount <= 0:
            raise ValueError(f"amount must be positive, got {amount}")
        if amount > self._capacity:
            raise ValueError(
                f"amount={amount} can never fit in capacity={self._capacity}"
            )
        event = Event(self.env)
        self._putters.append((amount, event))
        self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            if self._putters:
                amount, event = self._putters[0]
                if self._level + amount <= self._capacity:
                    self._putters.pop(0)
                    self._level += amount
                    event.succeed()
                    progress = True
            if self._getters:
                amount, event = self._getters[0]
                if amount <= self._level:
                    self._getters.pop(0)
                    self._level -= amount
                    event.succeed()
                    progress = True


class Store:
    """FIFO store of arbitrary items with blocking ``get``/``put``."""

    def __init__(self, env: "Environment", capacity: float = float("inf")) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.env = env
        self._capacity = capacity
        self.items: list[Any] = []
        self._getters: list[tuple[Optional[Callable[[Any], bool]], Event]] = []
        self._putters: list[tuple[Any, Event]] = []

    @property
    def capacity(self) -> float:
        return self._capacity

    def put(self, item: Any) -> Event:
        """Insert ``item``; blocks while the store is full."""
        event = Event(self.env)
        self._putters.append((item, event))
        self._settle()
        return event

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        """Remove and return an item; blocks while none (matching) exists.

        With a ``filter`` the first item satisfying it is returned
        (FilterStore behaviour).
        """
        event = Event(self.env)
        self._getters.append((filter, event))
        self._settle()
        return event

    def _settle(self) -> None:
        progress = True
        while progress:
            progress = False
            while self._putters and len(self.items) < self._capacity:
                item, event = self._putters.pop(0)
                self.items.append(item)
                event.succeed()
                progress = True
            if self._getters and self.items:
                remaining: list[tuple[Optional[Callable[[Any], bool]], Event]] = []
                for flt, event in self._getters:
                    chosen_index = None
                    for i, item in enumerate(self.items):
                        if flt is None or flt(item):
                            chosen_index = i
                            break
                    if chosen_index is None:
                        remaining.append((flt, event))
                    else:
                        event.succeed(self.items.pop(chosen_index))
                        progress = True
                self._getters = remaining
