"""Processes: generator coroutines driven by the event loop.

A process wraps a generator.  Each value the generator yields must be an
:class:`~repro.des.core.Event`; the process sleeps until that event fires
and is then resumed with the event's value (or the event's exception is
thrown into it).  The process itself *is* an event that triggers when the
generator terminates, so processes can wait on each other.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.des.core import Event, EventPriority, Interrupt, SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.des.environment import Environment


class _Initialize(Event):
    """Kernel-internal event that kicks off a freshly created process."""

    __slots__ = ()

    def __init__(self, env: "Environment", process: "Process") -> None:
        super().__init__(env)
        self._ok = True
        self._value = None
        self.callbacks.append(process._resume)
        env.schedule(self, priority=EventPriority.URGENT)


class Process(Event):
    """An executing generator.  Triggers when the generator finishes.

    The event value is the generator's return value; if the generator
    raises, the process fails with that exception.
    """

    __slots__ = ("_generator", "_target", "name")

    def __init__(self, env: "Environment", generator: Generator) -> None:
        if not hasattr(generator, "throw"):
            raise TypeError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        #: The event this process is currently waiting on (None if it has
        #: not started or has finished).
        self._target: Optional[Event] = None
        self.name = getattr(generator, "__name__", str(generator))
        _Initialize(env, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not terminated."""
        return not self.triggered

    @property
    def target(self) -> Optional[Event]:
        """The event the process is waiting on."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a terminated process is an error; interrupting a
        process from itself is also an error.
        """
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self.env.active_process is self:
            raise SimulationError("a process cannot interrupt itself")

        # Deliver the interrupt via an urgent event so ordering relative to
        # the simulation clock stays well-defined.
        interrupt_event = Event(self.env)
        interrupt_event._ok = False
        interrupt_event._value = Interrupt(cause)
        interrupt_event.defuse()
        interrupt_event.callbacks.append(self._resume)
        self.env.schedule(interrupt_event, priority=EventPriority.URGENT)

    # ------------------------------------------------------------------
    # Kernel internals
    # ------------------------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        env = self.env
        previous, env._active_process = env._active_process, self

        # Detach from the event we were waiting on (it may differ from
        # `event` when an interrupt arrives while waiting).
        if self._target is not None and self._target is not event:
            # The interrupted wait target remains pending; remove our
            # callback so a later trigger does not resume us twice.
            if self._target.callbacks is not None:
                try:
                    self._target.callbacks.remove(self._resume)
                except ValueError:  # pragma: no cover - defensive
                    pass
        self._target = None

        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    # The event failed; propagate into the generator.  Mark
                    # the failure as handled: the generator now owns it.
                    event.defuse()
                    next_event = self._generator.throw(event._value)
            except StopIteration as stop:
                env._active_process = previous
                self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active_process = previous
                self.fail(exc)
                return

            if not isinstance(next_event, Event):
                env._active_process = previous
                error = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                self.fail(error)
                return

            if next_event.callbacks is not None:
                # Event still pending or triggered-but-unprocessed: wait.
                next_event.callbacks.append(self._resume)
                self._target = next_event
                env._active_process = previous
                return

            # Event already processed: feed its value straight back in.
            event = next_event

    def __repr__(self) -> str:
        state = "alive" if self.is_alive else "finished"
        return f"<Process {self.name} {state} at {id(self):#x}>"
