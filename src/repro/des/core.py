"""Core event machinery for the DES kernel.

Defines :class:`Event` — the unit of scheduling — and
:class:`EventQueue` — the pending-event heap — together with the
exceptions used to control simulation flow.  Events move through three
states: *pending* (created, not yet triggered), *triggered* (given a value
or an exception and placed on the environment's queue), and *processed*
(its callbacks have run).
"""
# lint: hot-path - step()/push()/pop() run once per simulation event

from __future__ import annotations

import enum
from heapq import heappop, heappush
from typing import TYPE_CHECKING, Any, Callable, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.des.environment import Environment


class SimulationError(Exception):
    """Base class for errors raised by the simulation kernel."""


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Environment.run` early.

    Carries the value of the event that requested the stop.
    """

    def __init__(self, value: Any = None) -> None:
        super().__init__(value)
        self.value = value


class Interrupt(Exception):
    """Raised inside a process that was interrupted by another process.

    The ``cause`` is whatever object the interrupter supplied; it usually
    explains *why* the victim was interrupted (e.g. "preempted").
    """

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)

    @property
    def cause(self) -> Any:
        return self.args[0]


class EventPriority(enum.IntEnum):
    """Tie-break ordering for events scheduled at the same simulated time.

    Lower values run first.  URGENT is reserved for kernel bookkeeping
    (e.g. process resumption after an interrupt) that must precede user
    events at the same timestamp.  DEFERRED runs after every other event
    at its timestamp — it exists for end-of-instant batch work such as
    :class:`~repro.network.FlowNetwork`'s coalesced rate solve, which
    must observe *all* same-timestamp admits/drains before computing
    (re-scheduling a DEFERRED event from within another DEFERRED event
    at the same timestamp is safe: it simply runs later in the same
    instant).
    """

    URGENT = 0
    HIGH = 1
    NORMAL = 2
    LOW = 3
    DEFERRED = 4


# Sentinel distinguishing "not yet triggered" from "triggered with None".
_PENDING = object()


class EventQueue:
    """The kernel's pending-event heap: 3-tuples, one packed tiebreaker.

    Each entry is ``(time, key, event)`` where ``key`` packs the event's
    priority and a monotonically increasing serial into one int:
    ``(priority << 52) | serial``.  Since the serial never reaches
    2**52 in any feasible run, the packed key orders exactly like the
    historical ``(time, priority, serial, event)`` 4-tuples — priority
    dominates, serial breaks the remaining ties FIFO — while each push
    allocates one tuple element fewer and each comparison resolves on
    the second slot instead of cascading through the third.  The key is
    unique per entry, so tuple comparison never reaches (or requires
    ordering on) the :class:`Event` itself.
    """

    __slots__ = ("_heap", "_serial")

    #: Bits reserved for the FIFO serial below the packed priority.
    PRIORITY_SHIFT = 52

    def __init__(self) -> None:
        self._heap: list[Tuple[float, int, "Event"]] = []
        self._serial = 0

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, when: float, priority: int, event: "Event") -> None:
        """Enqueue ``event`` at time ``when`` with ``priority``."""
        self._serial += 1
        heappush(
            self._heap,
            (when, (priority << EventQueue.PRIORITY_SHIFT) | self._serial, event),
        )

    def peek_time(self) -> float:
        """Time of the earliest entry, or ``inf`` when empty."""
        return self._heap[0][0] if self._heap else float("inf")

    def pop(self) -> Tuple[float, "Event"]:
        """Remove and return ``(time, event)`` for the earliest entry."""
        when, _key, event = heappop(self._heap)
        return when, event


class Event:
    """An event that may happen at some point in simulated time.

    Events are one-shot: once triggered with :meth:`succeed` or
    :meth:`fail` they cannot be re-triggered.  Processes wait on events by
    yielding them; arbitrary callables can also be attached via
    :attr:`callbacks`.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with this event once it is processed.  Set to
        #: ``None`` after processing (an event cannot be waited on twice).
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: bool = True
        self._defused: bool = False

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has a value (or exception)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if not self.triggered:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The value the event was triggered with.

        For failed events this is the exception instance.
        """
        if self._value is _PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    @property
    def defused(self) -> bool:
        """True if a failed event's exception has been handled.

        An un-defused failure propagates out of :meth:`Environment.run`
        so programming errors are never silently dropped.
        """
        return self._defused

    def defuse(self) -> None:
        """Mark a failed event's exception as handled."""
        self._defused = True

    # ------------------------------------------------------------------
    # Triggering
    # ------------------------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed with ``exception``."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another (for chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(event._value)

    # ------------------------------------------------------------------
    # Composition
    # ------------------------------------------------------------------
    def __and__(self, other: "Event") -> "Event":
        from repro.des.conditions import AllOf

        return AllOf(self.env, [self, other])

    def __or__(self, other: "Event") -> "Event":
        from repro.des.conditions import AnyOf

        return AnyOf(self.env, [self, other])

    def __repr__(self) -> str:
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"
