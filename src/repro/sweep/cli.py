"""Command-line interface: ``repro-sweep`` / ``python -m repro.sweep``.

Runs figure sweeps through the deterministic sweep engine::

    repro-sweep fig13 --workers 4            # parallel, cached
    repro-sweep fig13 --workers 4            # re-run: pure cache read
    repro-sweep all --quick --no-cache
    repro-sweep fig13 --list-points          # show the spec, run nothing

Caching is on by default (``results/.cache/``); ``--no-cache`` disables
it and ``--cache-dir`` relocates it.  ``--obs-dir`` namespaces
per-point telemetry into ``<obs-dir>/<experiment>/<point-id>/`` and
fails fast on collision.  ``--stats-json`` exports the campaign's
telemetry counters (points completed/cached/failed, wall time,
point-latency histogram).  ``--live`` streams progress into
``<LIVE>/<experiment>/`` for ``repro-obs watch``.
"""

from __future__ import annotations

import argparse
import importlib
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments import ALL_EXPERIMENTS
from repro.sweep.cache import DEFAULT_CACHE_DIR
from repro.sweep.runner import SweepError, SweepOptions
from repro.sweep.telemetry import SweepTelemetry


def sweepable_experiments() -> list[str]:
    """Experiment ids that define a sweep spec (all but table1)."""
    out = []
    for experiment_id in ALL_EXPERIMENTS:
        module = importlib.import_module(f"repro.experiments.{experiment_id}")
        if hasattr(module, "sweep_spec"):
            out.append(experiment_id)
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sweep",
        description="Run the paper's figure sweeps through the "
        "deterministic parallel sweep engine (repro.sweep).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help="sweep ids (fig4 … fig14) or 'all'",
    )
    parser.add_argument("--quick", action="store_true",
                        help="reduced trial counts and sweep densities")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes (1 = in-process serial path)")
    parser.add_argument("--retries", type=int, default=0,
                        help="resubmissions per failing/timing-out point")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-point wall-clock budget in seconds "
                        "(needs --workers > 1)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the result cache")
    parser.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR),
                        help=f"cache location (default: {DEFAULT_CACHE_DIR})")
    parser.add_argument("--obs-dir",
                        help="namespace per-point telemetry into "
                        "<obs-dir>/<experiment>/<point-id>/ (collision fails fast)")
    parser.add_argument("--live",
                        help="stream live sweep progress into "
                        "<LIVE>/<experiment>/ (tail with `repro-obs watch`)")
    parser.add_argument("--output-dir",
                        help="write <id>.json and <id>.csv into this directory")
    parser.add_argument("--stats-json",
                        help="write campaign telemetry (cache hits, wall time) "
                        "to this JSON file")
    parser.add_argument("--list-points", action="store_true",
                        help="print each spec's point ids and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    available = sweepable_experiments()
    requested = list(args.experiments)
    if requested == ["all"]:
        requested = available
    unknown = [e for e in requested if e not in available]
    if unknown:
        print(
            f"error: not sweepable: {', '.join(unknown)} "
            f"(choose from {', '.join(available)})",
            file=sys.stderr,
        )
        return 2

    if args.list_points:
        for experiment_id in requested:
            module = importlib.import_module(f"repro.experiments.{experiment_id}")
            spec = module.sweep_spec(quick=args.quick)
            print(f"{spec.sweep_id} ({len(spec)} points, version {spec.version}):")
            for pid in spec.point_ids:
                print(f"  {pid}")
        return 0

    stats: dict[str, dict] = {}
    for experiment_id in requested:
        module = importlib.import_module(f"repro.experiments.{experiment_id}")
        telemetry = SweepTelemetry(experiment_id)
        options = SweepOptions(
            workers=args.workers,
            retries=args.retries,
            timeout=args.timeout,
            cache_dir=None if args.no_cache else Path(args.cache_dir),
            obs_dir=Path(args.obs_dir) / experiment_id if args.obs_dir else None,
            live_dir=Path(args.live) / experiment_id if args.live else None,
            telemetry=telemetry,
        )
        try:
            result = module.run(quick=args.quick, sweep=options)
        except SweepError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(result.render())
        snap = telemetry.snapshot()
        stats[experiment_id] = snap
        counters = snap["counters"]
        print(
            f"\n[{experiment_id}: {int(snap['gauges']['sweep.points_total'])} points — "
            f"{int(counters['sweep.points_completed'])} ran, "
            f"{int(counters['sweep.points_cached'])} cached, "
            f"{int(counters['sweep.points_failed'])} failed — "
            f"{snap['gauges']['sweep.wall_time_s']:.1f}s wall]\n"
        )
        if args.output_dir:
            out = Path(args.output_dir)
            out.mkdir(parents=True, exist_ok=True)
            result.to_json(out / f"{experiment_id}.json")
            result.to_csv(out / f"{experiment_id}.csv")

    if args.stats_json:
        path = Path(args.stats_json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(stats, indent=2, sort_keys=True) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
