"""Live sweep progress: the stream ``repro-obs watch`` tails.

The sweep runner is a harness, so its live stream is simpler than the
simulator's bus: one writer appending point-lifecycle records to
``<live-dir>/sweep.ndjson`` (``repro.sweep.live/1``) and atomically
rewriting ``<live-dir>/heartbeat.json`` after every record.

Record envelope (after the ``{"schema": ...}`` header line):

========== ==========================================================
field      meaning
========== ==========================================================
``ts``     wall-clock seconds
``event``  ``point_started`` / ``point_completed`` / ``point_cached``
           / ``point_failed`` / ``point_retry`` / ``sweep_done``
``point_id`` the point (absent on ``sweep_done``)
``duration`` attempt wall time, on completions/failures
``progress`` counter snapshot: completed/cached/failed/retried/
           in_flight/total
========== ==========================================================

The heartbeat carries the same progress snapshot plus the start
timestamp of every in-flight point, so a watcher can show per-worker
heartbeat age without parsing the whole stream.  All timestamps are
wall-clock (this is harness telemetry; SIM001 pragmas mark the reads).
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Optional

from repro.sweep.telemetry import SweepTelemetry

#: Sweep live-stream format identifier.
SWEEP_LIVE_SCHEMA = "repro.sweep.live/1"


class SweepLiveWriter:
    """Appends point-lifecycle records and maintains the heartbeat."""

    def __init__(
        self,
        directory: "str | Path",
        telemetry: SweepTelemetry,
        clock: Callable[[], float] = time.time,  # lint: ignore[SIM001] — harness wall time
    ) -> None:
        self.directory = Path(directory)
        self.telemetry = telemetry
        self._clock = clock
        self._stream: Optional[Path] = None
        #: point_id -> wall-clock start of its current attempt.
        self.in_flight: dict[str, float] = {}
        self.closed = False

    def _progress(self) -> dict[str, Any]:
        t = self.telemetry
        return {
            "completed": t.completed.value,
            "cached": t.cached.value,
            "failed": t.failed.value,
            "retried": t.retried.value,
            "in_flight": t.in_flight.value,
            "total": t.total.value,
        }

    def record(self, event: str, point_id: Optional[str] = None,
               **fields: Any) -> None:
        """Append one lifecycle record and refresh the heartbeat."""
        if self.closed:
            return
        ts = self._clock()
        if event == "point_started" and point_id is not None:
            self.in_flight[point_id] = ts
        elif point_id is not None:
            self.in_flight.pop(point_id, None)
        doc = {"ts": ts, "event": event, "progress": self._progress()}
        if point_id is not None:
            doc["point_id"] = point_id
        doc.update(fields)
        if self._stream is None:
            self.directory.mkdir(parents=True, exist_ok=True)
            self._stream = self.directory / "sweep.ndjson"
            self._stream.write_text(
                json.dumps({"schema": SWEEP_LIVE_SCHEMA}, sort_keys=True) + "\n"
            )
        with self._stream.open("a") as fh:
            fh.write(json.dumps(doc, sort_keys=True) + "\n")
        self._write_heartbeat(ts)

    def close(self) -> None:
        """Record the terminal ``sweep_done`` event and stop writing."""
        if self.closed:
            return
        self.record("sweep_done")
        self.closed = True
        self._write_heartbeat(self._clock())  # stamp closed: true

    def _write_heartbeat(self, ts: float) -> None:
        doc = {
            "schema": SWEEP_LIVE_SCHEMA,
            "ts": ts,
            "sweep_id": self.telemetry.sweep_id,
            "progress": self._progress(),
            "in_flight": dict(sorted(self.in_flight.items())),
            "closed": self.closed,
        }
        path = self.directory / "heartbeat.json"
        tmp = path.with_suffix(".json.tmp")
        tmp.write_text(json.dumps(doc, sort_keys=True) + "\n")
        os.replace(tmp, path)
