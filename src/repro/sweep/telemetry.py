"""Sweep-campaign telemetry, published through :mod:`repro.obs` probes.

The sweep runner is a *harness*, not a simulation — there is no DES
environment to attach an :class:`~repro.obs.observer.Observer` to — so
it publishes directly into a :class:`~repro.obs.probes.MetricRegistry`:

* ``sweep.points_total`` (gauge) — points in the spec;
* ``sweep.points_completed`` (counter) — points actually executed;
* ``sweep.points_cached`` (counter) — points answered from the cache;
* ``sweep.points_failed`` (counter) — points that exhausted retries;
* ``sweep.points_retried`` (counter) — re-submissions after a failure
  or timeout;
* ``sweep.points_in_flight`` (gauge) — point attempts currently
  executing in a worker (or in-process, on the serial path);
* ``sweep.point_seconds`` (histogram) — per-point attempt wall times,
  bucketed so ``repro-obs watch`` gets p50/p99 without keeping samples;
* ``sweep.wall_time_s`` (gauge) — harness wall time for the campaign.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

from repro.obs.probes import MetricRegistry

#: Telemetry export format identifier.
STATS_SCHEMA = "repro.sweep.stats/1"


class SweepTelemetry:
    """Counters and gauges for one sweep campaign."""

    def __init__(self, sweep_id: str) -> None:
        self.sweep_id = sweep_id
        self.registry = MetricRegistry()
        self.completed = self.registry.counter("sweep.points_completed")
        self.cached = self.registry.counter("sweep.points_cached")
        self.failed = self.registry.counter("sweep.points_failed")
        self.retried = self.registry.counter("sweep.points_retried")
        self.total = self.registry.gauge("sweep.points_total")
        self.in_flight = self.registry.gauge("sweep.points_in_flight")
        self.point_seconds = self.registry.histogram("sweep.point_seconds")
        self.wall_time = self.registry.gauge("sweep.wall_time_s")

    @property
    def cache_hit_ratio(self) -> float:
        """Fraction of points answered from the cache (0 when empty)."""
        total = self.total.value
        return self.cached.value / total if total else 0.0

    def point_latency(self, q: float) -> Optional[float]:
        """Bucket-resolution quantile of per-point wall time (seconds)."""
        return self.point_seconds.quantile(q)

    def snapshot(self) -> dict[str, Any]:
        """JSON-ready view of the campaign's counters and gauges."""
        snap = self.registry.snapshot()
        return {
            "schema": STATS_SCHEMA,
            "sweep_id": self.sweep_id,
            "counters": snap["counters"],
            "gauges": snap["gauges"],
            "histograms": snap["histograms"],
            "point_latency": {
                "p50": self.point_latency(0.50),
                "p99": self.point_latency(0.99),
            },
            "cache_hit_ratio": self.cache_hit_ratio,
        }

    def write(self, path: "str | Path") -> Path:
        """Write the snapshot as JSON (creating parent directories)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n")
        return path
