"""Sweep specifications: named point sets with stable identities.

A :class:`SweepSpec` describes *what* to run — a point function plus a
list of parameter dictionaries — without saying anything about *how*
(workers, cache, retries are :func:`repro.sweep.runner.run_sweep`
concerns).  Specs are plain data: every parameter value must be
JSON-representable so points can cross process boundaries and key the
on-disk cache.

Point ids are derived from the parameters alone (``k=v`` pairs joined
in sorted-key order), so they are stable across runs, Python versions,
and the order axes were declared in.
"""

from __future__ import annotations

import importlib
import itertools
import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping, Sequence

#: Characters allowed verbatim in a point-id directory name; anything
#: else is replaced so per-point telemetry dirs are filesystem-safe.
_UNSAFE = re.compile(r"[^A-Za-z0-9._=,+-]")


def _format_value(value: Any) -> str:
    """Canonical text for one parameter value inside a point id."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def point_id(params: Mapping[str, Any]) -> str:
    """Stable identity of one sweep point: ``k=v`` pairs, keys sorted."""
    if not params:
        raise ValueError("a sweep point needs at least one parameter")
    return ",".join(f"{k}={_format_value(params[k])}" for k in sorted(params))


def sanitize_point_id(pid: str) -> str:
    """A filesystem-safe directory name for a point id."""
    return _UNSAFE.sub("_", pid)


def resolve_func(ref: str) -> Callable[..., Any]:
    """Import the point function behind a ``"pkg.mod:callable"`` reference."""
    module_name, _, attr = ref.partition(":")
    if not module_name or not attr:
        raise ValueError(
            f"point function reference {ref!r} must look like 'pkg.mod:callable'"
        )
    module = importlib.import_module(module_name)
    try:
        func = getattr(module, attr)
    except AttributeError:
        raise ValueError(f"{module_name!r} has no attribute {attr!r}") from None
    if not callable(func):
        raise ValueError(f"{ref!r} does not reference a callable")
    return func


def _check_json_plain(pid: str, params: Mapping[str, Any]) -> None:
    try:
        text = json.dumps(params, sort_keys=True, allow_nan=False)
    except (TypeError, ValueError) as error:
        raise ValueError(
            f"point {pid!r} has non-JSON-representable parameters: {error}"
        ) from None
    # Round-trip must be lossless (tuples, numpy scalars, etc. are not).
    if json.loads(text) != dict(params):
        raise ValueError(
            f"point {pid!r} parameters do not survive a JSON round trip; "
            "use plain int/float/str/bool/list values"
        )


@dataclass(frozen=True)
class SweepSpec:
    """A deterministic set of sweep points over one point function.

    Parameters
    ----------
    sweep_id:
        Campaign name (``"fig13"``); namespaces cache keys and ids.
    func:
        ``"pkg.mod:callable"`` reference to a module-level function
        ``f(params: dict) -> value`` (value must be JSON-representable).
        A dotted reference — not a closure — so worker processes can
        import it.
    points:
        The parameter dictionaries, one per point.
    version:
        Code-version salt for the cache: bump it whenever the point
        function's semantics change so stale cache entries die.
    pass_obs_dir:
        When true and the runner was given an ``obs_dir``, the point
        function is called as ``f(params, obs_dir=<dir>)`` with its
        private per-point telemetry directory.
    """

    sweep_id: str
    func: str
    points: tuple[Mapping[str, Any], ...] = field(default_factory=tuple)
    version: int = 1
    pass_obs_dir: bool = False

    def __post_init__(self) -> None:
        if not self.sweep_id:
            raise ValueError("sweep_id must be non-empty")
        if ":" not in self.func:
            raise ValueError(
                f"func {self.func!r} must be a 'pkg.mod:callable' reference"
            )
        object.__setattr__(self, "points", tuple(dict(p) for p in self.points))
        seen: dict[str, str] = {}
        for params in self.points:
            pid = point_id(params)
            _check_json_plain(pid, params)
            safe = sanitize_point_id(pid)
            if safe in seen and seen[safe] != pid:
                raise ValueError(
                    f"points {seen[safe]!r} and {pid!r} collide after "
                    "filesystem sanitization"
                )
            if seen.get(safe) == pid:
                raise ValueError(f"duplicate sweep point {pid!r}")
            seen[safe] = pid

    @classmethod
    def cartesian(
        cls,
        sweep_id: str,
        func: str,
        axes: Mapping[str, Sequence[Any]],
        *,
        constants: Mapping[str, Any] | None = None,
        version: int = 1,
        pass_obs_dir: bool = False,
    ) -> "SweepSpec":
        """Build the full cross product of ``axes`` (plus ``constants``)."""
        if not axes:
            raise ValueError("cartesian sweep needs at least one axis")
        names = list(axes)
        points = [
            {**(constants or {}), **dict(zip(names, combo))}
            for combo in itertools.product(*(axes[n] for n in names))
        ]
        return cls(
            sweep_id=sweep_id,
            func=func,
            points=tuple(points),
            version=version,
            pass_obs_dir=pass_obs_dir,
        )

    @property
    def point_ids(self) -> tuple[str, ...]:
        """All point ids, in deterministic (sorted) execution order."""
        return tuple(sorted(point_id(p) for p in self.points))

    def points_by_id(self) -> dict[str, Mapping[str, Any]]:
        """Point id → parameters, in deterministic (sorted) order."""
        indexed = {point_id(p): p for p in self.points}
        return {pid: indexed[pid] for pid in sorted(indexed)}

    def __len__(self) -> int:
        return len(self.points)
