"""The sweep runner: deterministic fan-out with caching and retries.

Design rules (the contract ``docs/SWEEP.md`` documents):

* **Determinism** — results are always assembled in point-id order,
  never completion order, and every point value is canonicalized
  through a JSON round trip before it is stored or returned.  A
  4-worker run is therefore byte-identical to a 1-worker run.
* **Caching** — with a :class:`~repro.sweep.cache.SweepCache` attached,
  each point is looked up by its content address before anything is
  executed; a re-run with unchanged configuration is a pure cache read.
* **Isolation** — each parallel point attempt runs in its own worker
  *process* (the simulator is CPU-bound and per-process state such as
  calibration memoization must not leak between points).  This module
  is the one place in the codebase allowed to spawn them (SIM050).
* **Bounded retries and timeouts** — a point that raises or exceeds
  its timeout is resubmitted up to ``retries`` times with bounded
  exponential backoff; a point that exhausts its retries marks the
  sweep as failed.  The timeout clock starts when the point's worker
  process starts executing (never while it waits for a worker slot),
  and a timed-out worker is terminated — it cannot keep running
  concurrently with its own retry or wedge the sweep's shutdown.

The runner is a harness, not a simulation: it may legitimately read the
host clock (pragma-suppressed SIM001) because the quantities it times —
campaign wall time, per-point timeouts — are wall-clock quantities.
"""

from __future__ import annotations

import json
import multiprocessing
import multiprocessing.connection
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping, Optional

from repro.sweep.cache import SweepCache, point_key, point_key_doc
from repro.sweep.live import SweepLiveWriter
from repro.sweep.spec import SweepSpec, resolve_func, sanitize_point_id
from repro.sweep.telemetry import SweepTelemetry

#: How long one coordinator poll waits for worker completions (s).
_POLL_INTERVAL = 0.1

#: Exponential-backoff schedule bounds for retries (s).
_BACKOFF_BASE = 0.1
_BACKOFF_CAP = 5.0

#: How long a terminated (SIGTERM) worker gets to exit before SIGKILL (s).
_TERM_GRACE = 2.0


class SweepError(RuntimeError):
    """A sweep failed: telemetry collision or points out of retries."""


@dataclass(frozen=True)
class SweepOptions:
    """How to run a sweep (CLI flags in object form).

    ``cache_dir=None`` (the default) disables caching, which keeps
    library/test runs hermetic; the CLIs default it to
    ``results/.cache`` instead.
    """

    workers: int = 1
    retries: int = 0
    timeout: Optional[float] = None
    cache_dir: Optional[Path] = None
    obs_dir: Optional[Path] = None
    live_dir: Optional[Path] = None
    telemetry: Optional[SweepTelemetry] = None

    def make_cache(self) -> Optional[SweepCache]:
        if self.cache_dir is None:
            return None
        return SweepCache(self.cache_dir)

    def run(self, spec: SweepSpec, *, strict: bool = True) -> "SweepOutcome":
        """Run ``spec`` with these options (the figure modules' path)."""
        return run_sweep(
            spec,
            workers=self.workers,
            retries=self.retries,
            timeout=self.timeout,
            cache=self.make_cache(),
            obs_dir=self.obs_dir,
            live_dir=self.live_dir,
            telemetry=self.telemetry,
            strict=strict,
        )


@dataclass
class PointOutcome:
    """What happened to one sweep point."""

    point_id: str
    params: Mapping[str, Any]
    value: Any
    status: str  # "completed" | "cached" | "failed"
    attempts: int = 1
    error: Optional[str] = None
    cache_key: Optional[str] = None


@dataclass
class SweepOutcome:
    """All point outcomes of one campaign, ordered by point id."""

    sweep_id: str
    points: list[PointOutcome] = field(default_factory=list)
    telemetry: Optional[SweepTelemetry] = None
    wall_time_s: float = 0.0

    def values(self) -> dict[str, Any]:
        """Point id → value, in deterministic (point-id) order."""
        return {p.point_id: p.value for p in self.points}

    def value(self, pid: str) -> Any:
        for p in self.points:
            if p.point_id == pid:
                return p.value
        raise KeyError(f"no point {pid!r} in sweep {self.sweep_id!r}")

    def count(self, status: str) -> int:
        return sum(1 for p in self.points if p.status == status)

    @property
    def failed(self) -> list[PointOutcome]:
        return [p for p in self.points if p.status == "failed"]


def _canonical(value: Any) -> Any:
    """Canonicalize a point value through a JSON round trip.

    Guarantees cached and freshly-computed values are indistinguishable
    (tuples become lists exactly once, floats keep shortest-repr), which
    is what makes serial and parallel runs byte-identical.
    """
    try:
        return json.loads(json.dumps(value, allow_nan=False))
    except (TypeError, ValueError) as error:
        raise SweepError(
            f"point value is not JSON-representable: {error}"
        ) from None


def _execute_point(
    func_ref: str, params: dict[str, Any], obs_dir: Optional[str]
) -> Any:
    """Run one point (worker-process entry; importable, hence picklable)."""
    func = resolve_func(func_ref)
    if obs_dir is not None:
        return func(dict(params), obs_dir=Path(obs_dir))
    return func(dict(params))


def _backoff_delay(attempt: int) -> float:
    """Deterministic bounded exponential backoff before retry ``attempt``."""
    return min(_BACKOFF_BASE * (2 ** max(0, attempt - 1)), _BACKOFF_CAP)


class _ObsLayout:
    """Per-point telemetry directories under one ``--obs-dir``.

    Each point gets ``<obs-dir>/<sanitized-point-id>/``; an existing
    directory is a hard error (fail fast instead of silently clobbering
    a concurrent or previous run's traces).
    """

    def __init__(self, base: Path) -> None:
        self.base = Path(base)

    def claim(self, pid: str) -> Path:
        directory = self.base / sanitize_point_id(pid)
        if directory.exists():
            raise SweepError(
                f"telemetry collision: {directory} already exists; "
                "every sweep run needs a fresh --obs-dir (or per-run subdir)"
            )
        directory.mkdir(parents=True)
        return directory

    def write_manifest(self, directory: Path, doc: dict[str, Any]) -> None:
        path = directory / "point.manifest.json"
        path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def run_sweep(
    spec: SweepSpec,
    *,
    workers: int = 1,
    retries: int = 0,
    timeout: Optional[float] = None,
    cache: Optional[SweepCache] = None,
    obs_dir: "str | Path | None" = None,
    live_dir: "str | Path | None" = None,
    telemetry: Optional[SweepTelemetry] = None,
    strict: bool = True,
) -> SweepOutcome:
    """Run every point of ``spec``; return outcomes ordered by point id.

    Parameters
    ----------
    workers:
        ``1`` runs points in-process, sequentially, in point-id order
        (the serial path); ``>1`` fans points out over that many worker
        processes.  Output is bit-identical either way.
    retries:
        How many times a failing/timing-out point is resubmitted.
    timeout:
        Per-point wall-clock budget in seconds, measured from the
        moment the point's worker process starts (time spent waiting
        for a worker slot never counts).  A worker that exceeds it is
        terminated before the point is retried/failed.  Enforced
        between processes, so it requires ``workers > 1``; the
        in-process serial path cannot preempt a running point.
    cache:
        Optional :class:`SweepCache`; hits skip execution entirely.
    obs_dir:
        Base directory for per-point telemetry; each point gets its own
        ``<obs-dir>/<point-id>/`` (collision → :class:`SweepError`).
    live_dir:
        Directory for the live progress stream (``repro.sweep.live/1``
        — ``sweep.ndjson`` + ``heartbeat.json``), the feed that
        ``repro-obs watch`` tails.  ``None`` disables it.
    strict:
        Raise :class:`SweepError` if any point is still failed after
        retries (default); ``False`` leaves failures in the outcome.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if retries < 0:
        raise ValueError(f"retries must be >= 0, got {retries}")
    if timeout is not None and timeout <= 0:
        raise ValueError(f"timeout must be positive, got {timeout}")

    telemetry = telemetry or SweepTelemetry(spec.sweep_id)
    live = (
        SweepLiveWriter(Path(live_dir), telemetry)
        if live_dir is not None
        else None
    )
    started = time.monotonic()  # lint: ignore[SIM001] — harness wall time
    ordered = spec.points_by_id()
    telemetry.total.set(float(len(ordered)))

    layout = _ObsLayout(Path(obs_dir)) if obs_dir is not None else None
    point_dirs: dict[str, Path] = {}
    if layout is not None:
        for pid in ordered:
            point_dirs[pid] = layout.claim(pid)

    outcomes: dict[str, PointOutcome] = {}
    to_run: dict[str, dict[str, Any]] = {}
    keys: dict[str, str] = {}

    for pid, params in ordered.items():
        params = dict(params)
        if cache is not None:
            key = keys[pid] = point_key(spec, params)
            hit = cache.lookup(key)
            if not SweepCache.is_miss(hit):
                outcomes[pid] = PointOutcome(
                    point_id=pid,
                    params=params,
                    value=hit,
                    status="cached",
                    attempts=0,
                    cache_key=key,
                )
                telemetry.cached.inc()
                if live is not None:
                    live.record("point_cached", pid)
                continue
        to_run[pid] = params

    if to_run:
        if workers == 1:
            _run_serial(
                spec, to_run, outcomes, retries, telemetry, point_dirs, live
            )
        else:
            _run_parallel(
                spec, to_run, outcomes, workers, retries, timeout,
                telemetry, point_dirs, live,
            )
        for pid, outcome in outcomes.items():
            if outcome.status == "completed" and cache is not None:
                key = keys.get(pid) or point_key(spec, dict(ordered[pid]))
                outcome.cache_key = key
                cache.store(key, outcome.value, point_key_doc(spec, dict(ordered[pid])))

    result = SweepOutcome(
        sweep_id=spec.sweep_id,
        points=[outcomes[pid] for pid in ordered],
        telemetry=telemetry,
    )
    result.wall_time_s = time.monotonic() - started  # lint: ignore[SIM001]
    telemetry.wall_time.set(result.wall_time_s)
    if live is not None:
        live.close()

    if layout is not None:
        for pid, outcome in outcomes.items():
            layout.write_manifest(
                point_dirs[pid],
                {
                    "manifest": point_key_doc(spec, dict(ordered[pid])),
                    "point_id": pid,
                    "status": outcome.status,
                    "attempts": outcome.attempts,
                    "error": outcome.error,
                    "cache_key": outcome.cache_key,
                },
            )

    if strict and result.failed:
        details = "; ".join(
            f"{p.point_id}: {p.error}" for p in result.failed[:5]
        )
        raise SweepError(
            f"sweep {spec.sweep_id!r}: {len(result.failed)} point(s) failed "
            f"after {retries} retries — {details}"
        )
    return result


def _obs_arg(spec: SweepSpec, point_dirs: dict[str, Path], pid: str) -> Optional[str]:
    if spec.pass_obs_dir and pid in point_dirs:
        return str(point_dirs[pid])
    return None


def _run_serial(
    spec: SweepSpec,
    to_run: dict[str, dict[str, Any]],
    outcomes: dict[str, PointOutcome],
    retries: int,
    telemetry: SweepTelemetry,
    point_dirs: dict[str, Path],
    live: Optional[SweepLiveWriter] = None,
) -> None:
    """In-process execution, sequential, in point-id order."""
    for pid, params in to_run.items():
        attempts = 0
        error: Optional[str] = None
        value: Any = None
        status = "failed"
        while attempts <= retries:
            attempts += 1
            if attempts > 1:
                telemetry.retried.inc()
                if live is not None:
                    live.record("point_retry", pid, attempt=attempts)
                time.sleep(_backoff_delay(attempts - 1))
            telemetry.in_flight.set(1.0)
            if live is not None:
                live.record("point_started", pid, attempt=attempts)
            begin = time.monotonic()  # lint: ignore[SIM001] — harness wall time
            try:
                value = _canonical(
                    _execute_point(spec.func, params, _obs_arg(spec, point_dirs, pid))
                )
                status = "completed"
                error = None
            except Exception as exc:  # noqa: BLE001 - reported per point
                error = f"{type(exc).__name__}: {exc}"
            finally:
                duration = time.monotonic() - begin  # lint: ignore[SIM001]
                telemetry.in_flight.set(0.0)
                telemetry.point_seconds.observe(duration)
            if status == "completed":
                break
        if status == "completed":
            telemetry.completed.inc()
            if live is not None:
                live.record("point_completed", pid, duration=duration)
        else:
            telemetry.failed.inc()
            if live is not None:
                live.record("point_failed", pid, duration=duration, error=error)
        outcomes[pid] = PointOutcome(
            point_id=pid, params=params, value=value,
            status=status, attempts=attempts, error=error,
        )


def _point_worker(
    conn, func_ref: str, params: dict[str, Any], obs_dir: Optional[str]
) -> None:
    """Worker-process entry: run one point, send one ``(tag, payload)``.

    The value is canonicalized *in the worker*, so a non-JSON point
    value comes back as an ordinary per-point error and goes through
    the same retry/strict/lenient bookkeeping as any other exception
    (matching the serial path) instead of aborting the whole sweep.
    """
    try:
        value = _canonical(_execute_point(func_ref, params, obs_dir))
    except BaseException as exc:  # noqa: BLE001 - reported per point
        conn.send(("error", f"{type(exc).__name__}: {exc}"))
    else:
        conn.send(("ok", value))
    finally:
        conn.close()


@dataclass
class _RunningPoint:
    """One in-flight point attempt: its process, pipe, and deadline."""

    pid: str
    proc: multiprocessing.Process
    conn: "multiprocessing.connection.Connection"
    deadline: Optional[float]  # None = no timeout
    started: float = 0.0       # monotonic start, for the wall-time histogram


def _reap(proc: multiprocessing.Process) -> Optional[int]:
    """Make sure ``proc`` is gone: join, escalating SIGTERM → SIGKILL.

    Returns the process exit code (negative = killed by that signal).
    """
    proc.join(_TERM_GRACE)
    if proc.is_alive():
        proc.terminate()
        proc.join(_TERM_GRACE)
    if proc.is_alive():
        proc.kill()
        proc.join()
    code = proc.exitcode
    proc.close()
    return code


def _run_parallel(
    spec: SweepSpec,
    to_run: dict[str, dict[str, Any]],
    outcomes: dict[str, PointOutcome],
    workers: int,
    retries: int,
    timeout: Optional[float],
    telemetry: SweepTelemetry,
    point_dirs: dict[str, Path],
    live: Optional[SweepLiveWriter] = None,
) -> None:
    """Worker-process execution with per-point timeout and retries.

    Each point attempt gets its own worker process and at most
    ``workers`` run at once; the rest wait in a queue.  The timeout
    deadline is set when an attempt's process *starts* — a queued point
    can never expire before it has run — and an expired worker is
    terminated, so a wedged point costs exactly ``timeout`` (plus
    retries), never blocks shutdown, and cannot keep writing telemetry
    concurrently with its own retry.
    """
    mp = multiprocessing.get_context()
    attempts = {pid: 0 for pid in to_run}
    errors: dict[str, str] = {}
    resubmit_at: dict[str, float] = {}
    # Launch in point-id order (determinism of *launch* order is not
    # required for correctness — results are reordered — but it makes
    # worker logs reproducible).
    queued = deque(to_run)
    running: list[_RunningPoint] = []

    def launch(pid: str) -> None:
        attempts[pid] += 1
        recv_conn, send_conn = mp.Pipe(duplex=False)
        proc = mp.Process(
            target=_point_worker,
            args=(
                send_conn,
                spec.func,
                to_run[pid],
                _obs_arg(spec, point_dirs, pid),
            ),
        )
        proc.start()
        send_conn.close()  # worker holds the only send end now
        now = time.monotonic()  # lint: ignore[SIM001] — harness timeout
        deadline = now + timeout if timeout is not None else None
        running.append(_RunningPoint(pid, proc, recv_conn, deadline, now))
        telemetry.in_flight.set(float(len(running)))
        if live is not None:
            live.record("point_started", pid, attempt=attempts[pid])

    def settle(pid: str, tag: str, payload: Any, now: float,
               duration: float = 0.0) -> None:
        telemetry.point_seconds.observe(duration)
        if tag == "ok":
            outcomes[pid] = PointOutcome(
                point_id=pid,
                params=to_run[pid],
                value=payload,
                status="completed",
                attempts=attempts[pid],
            )
            telemetry.completed.inc()
            if live is not None:
                live.record("point_completed", pid, duration=duration)
            return
        errors[pid] = payload
        if attempts[pid] <= retries:
            resubmit_at[pid] = now + _backoff_delay(attempts[pid])
            if live is not None:
                live.record(
                    "point_retry", pid,
                    attempt=attempts[pid], duration=duration, error=payload,
                )
        else:
            outcomes[pid] = PointOutcome(
                point_id=pid,
                params=to_run[pid],
                value=None,
                status="failed",
                attempts=attempts[pid],
                error=errors[pid],
            )
            telemetry.failed.inc()
            if live is not None:
                live.record(
                    "point_failed", pid, duration=duration, error=payload
                )

    try:
        while queued or running or resubmit_at:
            now = time.monotonic()  # lint: ignore[SIM001] — harness clock
            for pid in [p for p, t in resubmit_at.items() if t <= now]:
                del resubmit_at[pid]
                telemetry.retried.inc()
                queued.append(pid)
            while queued and len(running) < workers:
                launch(queued.popleft())
            if not running:
                time.sleep(_POLL_INTERVAL)
                continue

            # Sleep until a worker reports/exits or the poll interval
            # elapses (wakes us for deadlines and due retries).
            waitables = [r.conn for r in running] + [
                r.proc.sentinel for r in running
            ]
            multiprocessing.connection.wait(waitables, timeout=_POLL_INTERVAL)
            now = time.monotonic()  # lint: ignore[SIM001] — harness clock

            still_running: list[_RunningPoint] = []
            for r in running:
                # Liveness is read *before* the pipe: a worker's result
                # send happens-before its exit, so when ``alive`` reads
                # False any delivered result is already buffered and
                # ``poll()`` sees it (a bare EOF means the worker really
                # died without reporting — segfault, os._exit, OOM kill).
                alive = r.proc.is_alive()
                if r.conn.poll():
                    try:
                        tag, payload = r.conn.recv()
                    except (EOFError, OSError):
                        tag = None  # pipe closed with no result: a crash
                    r.conn.close()
                    code = _reap(r.proc)
                    if tag is None:
                        tag, payload = (
                            "error",
                            f"WorkerCrash: worker exited with code {code} "
                            "before producing a result",
                        )
                    settle(r.pid, tag, payload, now, now - r.started)
                elif not alive:
                    r.conn.close()
                    code = _reap(r.proc)
                    settle(
                        r.pid,
                        "error",
                        f"WorkerCrash: worker exited with code {code} "
                        "before producing a result",
                        now,
                        now - r.started,
                    )
                elif r.deadline is not None and r.deadline <= now:
                    r.proc.terminate()
                    r.conn.close()
                    _reap(r.proc)
                    settle(
                        r.pid,
                        "error",
                        f"TimeoutError: point exceeded {timeout}s budget",
                        now,
                        now - r.started,
                    )
                else:
                    still_running.append(r)
            running = still_running
            telemetry.in_flight.set(float(len(running)))
    finally:
        # Unexpected exit (KeyboardInterrupt, telemetry bug): leave no
        # orphaned workers behind.
        for r in running:
            r.proc.terminate()
            r.conn.close()
            _reap(r.proc)
        telemetry.in_flight.set(0.0)
