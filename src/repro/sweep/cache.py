"""Content-addressed result cache for sweep points.

Layout (under ``results/.cache/`` by default)::

    <cache-dir>/<key[:2]>/<key>.json

where ``key`` is the sha256 of the canonical JSON of the point's
*provenance document* — a :func:`repro.obs.manifest.build_manifest`
manifest carrying the simulator version (the code salt), the sweep id,
the point-function reference, the spec version, and the point's full
parameter dictionary.  Any change to any of those yields a different
key, so invalidation is automatic: nothing is ever overwritten, stale
entries are simply never addressed again.

Entries are written atomically (temp file + rename) so concurrent
workers and concurrent sweep processes can share one cache directory.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import TYPE_CHECKING, Any, Optional

from repro.obs.manifest import build_manifest

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sweep.spec import SweepSpec

#: Cache entry format identifier; bump on breaking layout changes
#: (doubles as part of the key, so a bump invalidates every entry).
CACHE_SCHEMA = "repro.sweep.cache/1"

#: Default on-disk location, relative to the working directory.
DEFAULT_CACHE_DIR = Path("results") / ".cache"

#: Sentinel distinguishing "no entry" from "entry with value None".
_MISS = object()


def point_key_doc(spec: "SweepSpec", params: dict[str, Any]) -> dict[str, Any]:
    """The provenance document a point's cache key is computed over."""
    return build_manifest(
        extra={
            "cache_schema": CACHE_SCHEMA,
            "sweep": {
                "sweep_id": spec.sweep_id,
                "func": spec.func,
                "version": spec.version,
            },
            "params": dict(params),
        }
    )


def point_key(spec: "SweepSpec", params: dict[str, Any]) -> str:
    """Content address of one point: sha256 over the canonical key doc."""
    canonical = json.dumps(
        point_key_doc(spec, params), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


class SweepCache:
    """On-disk store of point results, addressed by content key."""

    def __init__(self, directory: "str | Path" = DEFAULT_CACHE_DIR) -> None:
        self.directory = Path(directory)
        self.hits = 0
        self.misses = 0

    def _path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.json"

    def lookup(self, key: str) -> Any:
        """The cached value for ``key``, or the :data:`MISS` sentinel."""
        path = self._path(key)
        try:
            doc = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            return _MISS
        # A corrupt or foreign-schema entry is a miss, not a crash:
        # the point simply recomputes and overwrites it.
        if (
            not isinstance(doc, dict)
            or doc.get("schema") != CACHE_SCHEMA
            or "value" not in doc
        ):
            self.misses += 1
            return _MISS
        self.hits += 1
        return doc["value"]

    @staticmethod
    def is_miss(value: Any) -> bool:
        return value is _MISS

    def store(self, key: str, value: Any, key_doc: dict[str, Any]) -> Path:
        """Persist ``value`` under ``key`` (atomic, concurrency-safe)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": CACHE_SCHEMA,
            "key": key,
            "manifest": key_doc,
            "value": value,
        }
        tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
        tmp.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
        return path

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*/*.json"))
