"""Deterministic parallel sweep engine.

Every figure the repository reproduces is a parameter sweep — stage
fraction × pipelines × platform — and the 1000Genomes case study makes
each point expensive.  This package runs those sweeps as first-class
campaigns:

* :class:`SweepSpec` — a named, versioned set of points (cartesian grid
  or explicit list) with stable, order-independent point ids, executed
  by a module-level point function referenced as ``"pkg.mod:callable"``;
* :func:`run_sweep` — fans points out over a
  ``ProcessPoolExecutor`` with *deterministic result ordering* (always
  by point id, never by completion order), per-point timeout/retry with
  bounded backoff, and per-point telemetry counters threaded through
  :mod:`repro.obs` probes;
* :class:`SweepCache` — a content-addressed on-disk cache under
  ``results/.cache/`` keyed by the :mod:`repro.obs.manifest` provenance
  document (simulator version acts as the code salt), so a re-run with
  an unchanged configuration is a pure cache read.

Serial execution (``workers=1``) and parallel execution produce
bit-identical outputs: every point value is canonicalized through JSON
before it is returned or stored, and results are assembled in point-id
order.

CLI: ``repro-sweep fig13 --workers 4`` (or ``python -m repro.sweep``).
See ``docs/SWEEP.md`` for the spec format, cache layout and
invalidation rules, and worker/retry/timeout semantics.
"""

from repro.sweep.cache import CACHE_SCHEMA, DEFAULT_CACHE_DIR, SweepCache
from repro.sweep.runner import (
    PointOutcome,
    SweepError,
    SweepOptions,
    SweepOutcome,
    run_sweep,
)
from repro.sweep.spec import SweepSpec, point_id, resolve_func, sanitize_point_id
from repro.sweep.telemetry import SweepTelemetry

__all__ = [
    "CACHE_SCHEMA",
    "DEFAULT_CACHE_DIR",
    "PointOutcome",
    "SweepCache",
    "SweepError",
    "SweepOptions",
    "SweepOutcome",
    "SweepSpec",
    "SweepTelemetry",
    "point_id",
    "resolve_func",
    "run_sweep",
    "sanitize_point_id",
]
