"""workflow-io-bb: simulating scientific workflows on HPC platforms with burst buffers.

Reproduction of Pottier, Ferreira da Silva, Casanova, Deelman —
"Modeling the Performance of Scientific Workflow Executions on HPC
Platforms with Burst Buffers" (IEEE CLUSTER 2020).

Layering (bottom up):

* :mod:`repro.des` — discrete-event simulation kernel;
* :mod:`repro.network` — flow-level max-min fair bandwidth sharing;
* :mod:`repro.platform` — platform specs, Table I presets, JSON I/O;
* :mod:`repro.storage` — PFS, shared (private/striped) and on-node BBs;
* :mod:`repro.compute` — gang core allocation, Amdahl task timing;
* :mod:`repro.workflow` — DAGs, SWarp & 1000Genomes generators, WfCommons I/O;
* :mod:`repro.wms` — the workflow engine and placement policies;
* :mod:`repro.model` — the paper's Eqs. (1)–(4), fitting, metrics;
* :mod:`repro.traces` — event traces, Gantt rendering, bandwidth accounting;
* :mod:`repro.emulation` — the "real machine" stand-in for validation;
* :mod:`repro.scenarios` — one-call builders for the paper's scenarios;
* :mod:`repro.simulator` — WRENCH-style files-in/trace-out facade;
* :mod:`repro.experiments` — regeneration of every table and figure;
* :mod:`repro.analysis` — speedups, plateaus, crossovers, summaries.

The quickest entry points::

    from repro.scenarios import run_swarp, run_genomes
    from repro.simulator import Simulator
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "compute",
    "des",
    "emulation",
    "experiments",
    "model",
    "network",
    "platform",
    "scenarios",
    "simulator",
    "storage",
    "traces",
    "wms",
    "workflow",
]
