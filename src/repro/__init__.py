"""workflow-io-bb: simulating scientific workflows on HPC platforms with burst buffers.

Reproduction of Pottier, Ferreira da Silva, Casanova, Deelman —
"Modeling the Performance of Scientific Workflow Executions on HPC
Platforms with Burst Buffers" (IEEE CLUSTER 2020).

Layering (bottom up):

* :mod:`repro.des` — discrete-event simulation kernel;
* :mod:`repro.network` — flow-level max-min fair bandwidth sharing;
* :mod:`repro.platform` — platform specs, Table I presets, JSON I/O;
* :mod:`repro.storage` — PFS, shared (private/striped) and on-node BBs;
* :mod:`repro.compute` — gang core allocation, Amdahl task timing;
* :mod:`repro.workflow` — DAGs, SWarp & 1000Genomes generators, WfCommons I/O;
* :mod:`repro.wms` — the workflow engine and placement policies;
* :mod:`repro.model` — the paper's Eqs. (1)–(4), fitting, metrics;
* :mod:`repro.traces` — event traces, Gantt rendering, bandwidth accounting;
* :mod:`repro.profile` — critical-path profiling and makespan attribution;
* :mod:`repro.emulation` — the "real machine" stand-in for validation;
* :mod:`repro.scenarios` — one-call builders for the paper's scenarios;
* :mod:`repro.simulator` — WRENCH-style files-in/trace-out facade;
* :mod:`repro.experiments` — regeneration of every table and figure;
* :mod:`repro.analysis` — speedups, plateaus, crossovers, summaries.

The quickest entry point is the top-level facade::

    import repro

    result = repro.simulate("platform.json", "workflow.json")
    print(result.makespan)

with :func:`repro.scenarios.run_swarp` / ``run_genomes`` for the paper's
prebuilt scenarios and :class:`repro.Simulator` for finer control.
"""

__version__ = "1.0.0"

#: Public names re-exported lazily (keeps ``import repro`` light: the
#: facade pulls in numpy-heavy layers only when first touched).
_API = {
    "simulate": ("repro.api", "simulate"),
    "Result": ("repro.api", "Result"),
    "Config": ("repro.config", "Config"),
    "Simulator": ("repro.simulator", "Simulator"),
    "SimulatorConfig": ("repro.simulator", "SimulatorConfig"),
    "BBMode": ("repro.storage", "BBMode"),
    "build_profile": ("repro.profile", "build_profile"),
    "diff_profiles": ("repro.profile", "diff_profiles"),
}

__all__ = [
    *sorted(_API),
    "analysis",
    "compute",
    "des",
    "emulation",
    "experiments",
    "model",
    "network",
    "platform",
    "profile",
    "scenarios",
    "simulator",
    "storage",
    "traces",
    "wms",
    "workflow",
]


def __getattr__(name: str):
    try:
        module, attr = _API[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    value = getattr(importlib.import_module(module), attr)
    globals()[name] = value  # cache: subsequent lookups skip __getattr__
    return value
