"""Calibration fitting: recover model parameters from measured runs.

The paper instantiates its model from one observation per task plus a
published λ_io.  When a *scaling curve* ``{(p, T(p))}`` is available
(e.g. Figure 6's core sweep), the general model (Eq. 3) can be fitted
instead — these helpers do that with non-linear least squares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import least_squares

from repro.model.equations import observed_time


@dataclass(frozen=True)
class FitResult:
    """Outcome of a calibration fit."""

    tc1: float          # fitted sequential compute time, seconds
    alpha: float        # fitted Amdahl fraction
    lambda_io: float    # λ_io used or fitted
    residual: float     # RMS relative residual of the fit

    def predict(self, p: int) -> float:
        """Predicted observed time on ``p`` cores."""
        return observed_time(self.tc1, p, self.lambda_io, self.alpha)


def fit_amdahl_alpha(
    cores: Sequence[int],
    times: Sequence[float],
    lambda_io: float,
) -> FitResult:
    """Fit (T_c(1), α) to an observed scaling curve at fixed λ_io.

    Minimizes relative residuals so small-p and large-p points weigh
    equally.  Requires at least two distinct core counts.
    """
    p = np.asarray(cores, dtype=float)
    t = np.asarray(times, dtype=float)
    if p.shape != t.shape or p.size < 2:
        raise ValueError("need at least two (cores, time) observations")
    if np.any(p <= 0) or np.any(t <= 0):
        raise ValueError("cores and times must be positive")
    if len(set(p.tolist())) < 2:
        raise ValueError("need at least two distinct core counts")
    if not (0.0 <= lambda_io < 1.0):
        raise ValueError("lambda_io must be in [0, 1)")

    def residuals(theta: np.ndarray) -> np.ndarray:
        tc1, alpha = theta
        predicted = (alpha + (1.0 - alpha) / p) * tc1 / (1.0 - lambda_io)
        return (predicted - t) / t

    # Initial guess: perfect speedup from the largest-p observation.
    i = int(np.argmax(p))
    tc1_guess = float(p[i] * (1.0 - lambda_io) * t[i])
    solution = least_squares(
        residuals,
        x0=[tc1_guess, 0.1],
        bounds=([1e-12, 0.0], [np.inf, 1.0]),
    )
    tc1, alpha = solution.x
    rms = float(np.sqrt(np.mean(solution.fun**2)))
    return FitResult(tc1=float(tc1), alpha=float(alpha), lambda_io=lambda_io, residual=rms)


def fit_lambda_io(
    total_times: Sequence[float], compute_times: Sequence[float]
) -> float:
    """Estimate λ_io as the mean observed I/O fraction over repeated runs."""
    total = np.asarray(total_times, dtype=float)
    compute = np.asarray(compute_times, dtype=float)
    if total.shape != compute.shape or total.size == 0:
        raise ValueError("need matching, non-empty time arrays")
    if np.any(total <= 0) or np.any(compute < 0) or np.any(compute > total):
        raise ValueError("times must satisfy 0 <= compute <= total, total > 0")
    return float(np.mean(1.0 - compute / total))
