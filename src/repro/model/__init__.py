"""The paper's performance model (Section IV-A) and calibration tools."""

from repro.model.equations import (
    amdahl_speedup,
    amdahl_time,
    io_fraction_from_times,
    observed_time,
    sequential_compute_time,
)
from repro.model.fitting import FitResult, fit_amdahl_alpha, fit_lambda_io
from repro.model.metrics import (
    mean_relative_error,
    per_point_relative_error,
    trend_agreement,
)

__all__ = [
    "FitResult",
    "amdahl_speedup",
    "amdahl_time",
    "fit_amdahl_alpha",
    "fit_lambda_io",
    "io_fraction_from_times",
    "mean_relative_error",
    "observed_time",
    "per_point_relative_error",
    "sequential_compute_time",
    "trend_agreement",
]
