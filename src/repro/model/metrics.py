"""Accuracy metrics used in the paper's validation (Section IV-B)."""

from __future__ import annotations

from typing import Sequence

import numpy as np


def per_point_relative_error(
    measured: Sequence[float], simulated: Sequence[float]
) -> list[float]:
    """``|sim − meas| / meas`` per point (the paper's error measure)."""
    m = np.asarray(measured, dtype=float)
    s = np.asarray(simulated, dtype=float)
    if m.shape != s.shape or m.size == 0:
        raise ValueError("need matching, non-empty arrays")
    if np.any(m <= 0):
        raise ValueError("measured values must be positive")
    return list(np.abs(s - m) / m)


def mean_relative_error(
    measured: Sequence[float], simulated: Sequence[float]
) -> float:
    """Average relative error — the paper reports e.g. 5.6% for private mode."""
    return float(np.mean(per_point_relative_error(measured, simulated)))


def trend_agreement(
    measured: Sequence[float], simulated: Sequence[float]
) -> float:
    """Fraction of consecutive steps whose direction matches.

    1.0 means the simulated curve rises/falls exactly where the measured
    one does (the paper cares about *trends*, not absolute agreement);
    0.0 means every step disagrees.  Flat steps (relative change below
    0.1%) match anything.
    """
    m = np.asarray(measured, dtype=float)
    s = np.asarray(simulated, dtype=float)
    if m.shape != s.shape or m.size < 2:
        raise ValueError("need at least two points")
    dm = np.diff(m) / m[:-1]
    ds = np.diff(s) / s[:-1]
    flat = 1e-3
    agree = 0
    for a, b in zip(dm, ds):
        if abs(a) < flat or abs(b) < flat:
            agree += 1
        elif (a > 0) == (b > 0):
            agree += 1
    return agree / len(dm)
