"""Equations (1)-(4) of the paper.

Notation (matching the paper):

* ``T_i(p)`` — observed execution time of task *i* on *p* cores,
  including I/O;
* ``λ_io`` — observed fraction of that time spent in I/O;
* ``T_c(p)`` — pure compute time on *p* cores (infinitely fast storage);
* ``α`` — Amdahl's-law non-parallelizable fraction.

Eq. (1):  ``T_c(p) = (1 − λ_io) · T(p)``
Eq. (2):  ``T_c(p) = α · T_c(1) + (1 − α) · T_c(1) / p``
Eq. (3):  ``T_c(1) = (1 − λ_io) · T(p) / (α + (1 − α)/p)``
Eq. (4):  ``T_c(1) = p · (1 − λ_io) · T(p)``        (α = 0 special case)
"""

from __future__ import annotations


def _validate(p: int, lambda_io: float, alpha: float) -> None:
    if p <= 0:
        raise ValueError(f"core count must be positive, got {p}")
    if not (0.0 <= lambda_io < 1.0):
        raise ValueError(f"lambda_io must be in [0, 1), got {lambda_io}")
    if not (0.0 <= alpha <= 1.0):
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")


def amdahl_time(tc1: float, p: int, alpha: float = 0.0) -> float:
    """Eq. (2): parallel compute time of a task on ``p`` cores."""
    _validate(p, 0.0, alpha)
    if tc1 < 0:
        raise ValueError("sequential time must be non-negative")
    return alpha * tc1 + (1.0 - alpha) * tc1 / p


def amdahl_speedup(p: int, alpha: float = 0.0) -> float:
    """Speedup on ``p`` cores under Amdahl's law."""
    _validate(p, 0.0, alpha)
    return 1.0 / (alpha + (1.0 - alpha) / p)


def sequential_compute_time(
    observed: float, p: int, lambda_io: float, alpha: float = 0.0
) -> float:
    """Eqs. (3)/(4): recover ``T_c(1)`` from an observed execution.

    With the paper's headline assumption ``alpha = 0`` this reduces to
    Eq. (4): ``T_c(1) = p (1 − λ_io) T(p)``.
    """
    _validate(p, lambda_io, alpha)
    if observed < 0:
        raise ValueError("observed time must be non-negative")
    return (1.0 - lambda_io) * observed / (alpha + (1.0 - alpha) / p)


def observed_time(
    tc1: float, p: int, lambda_io: float, alpha: float = 0.0
) -> float:
    """Forward model: predicted observed time given ``T_c(1)``.

    Inverse of :func:`sequential_compute_time`; useful for closing the
    loop in calibration tests.
    """
    _validate(p, lambda_io, alpha)
    return amdahl_time(tc1, p, alpha) / (1.0 - lambda_io)


def io_fraction_from_times(total: float, compute: float) -> float:
    """Eq. (1) rearranged: ``λ_io = 1 − T_c(p)/T(p)``."""
    if total <= 0:
        raise ValueError("total time must be positive")
    if compute < 0 or compute > total:
        raise ValueError("compute time must be within [0, total]")
    return 1.0 - compute / total
