"""Shared infrastructure for the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import TYPE_CHECKING, Any, Optional, Sequence

from repro.model.equations import sequential_compute_time
from repro.platform.presets import TABLE_I
from repro.scenarios import run_swarp
from repro.sweep import SweepOptions
from repro.workflow.calibration import COMBINE_LAMBDA_IO, RESAMPLE_LAMBDA_IO

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sweep import SweepSpec


def sweep_values(
    spec: "SweepSpec", sweep: Optional[SweepOptions] = None
) -> dict[str, Any]:
    """Run a figure's sweep; return point id → value.

    Every figure harness funnels through here, so one engine decides
    workers, caching, retries, and telemetry for all of them.  With no
    options this is the serial, uncached path — bit-identical to any
    parallel run of the same spec.
    """
    options = sweep if sweep is not None else SweepOptions()
    return options.run(spec).values()


@dataclass(frozen=True)
class CalibratedSwarp:
    """Eq. (4)-calibrated SWarp task work for one system.

    Produced by :func:`calibrate_swarp`: the observed PFS baseline is
    measured on the *emulated* platform (standing in for the paper's
    real characterization runs), together with each task's observed I/O
    fraction λ_io — the same two quantities the paper takes from its
    measurements and from Daley et al. [24].
    """

    system: str
    cores: int
    observed_resample_t: float
    observed_combine_t: float
    lambda_resample: float
    lambda_combine: float
    resample_flops: float
    combine_flops: float


@lru_cache(maxsize=None)
def calibrate_swarp(system: str, cores: int = 32) -> CalibratedSwarp:
    """Characterize-and-calibrate, per the paper's Section IV-A.

    Runs the emulated PFS baseline (no files in the BB — the
    configuration λ_io is traditionally characterized in) at ``cores``
    cores, measures each task's observed execution time and I/O
    fraction, then applies Eq. (4) — ``T_c(1) = p (1 − λ_io) T(p)`` — to
    recover the sequential compute time, converting to flops with the
    system's calibrated core speed so the simple simulator can be
    instantiated on either platform.
    """
    reference = run_swarp(
        system=system,
        input_fraction=0.0,
        intermediates_in_bb=False,
        cores_per_task=cores,
        include_stage_in=False,
        emulated=True,
        seed=None,  # noise-free reference
    )
    resample_record = reference.trace.task_record("resample_0")
    combine_record = reference.trace.task_record("combine_0")
    t_resample = resample_record.duration
    t_combine = combine_record.duration
    lambda_resample = resample_record.io_fraction
    lambda_combine = combine_record.io_fraction
    speed = TABLE_I[system]["core_speed"]
    return CalibratedSwarp(
        system=system,
        cores=cores,
        observed_resample_t=t_resample,
        observed_combine_t=t_combine,
        lambda_resample=lambda_resample,
        lambda_combine=lambda_combine,
        resample_flops=sequential_compute_time(t_resample, cores, lambda_resample)
        * speed,
        combine_flops=sequential_compute_time(t_combine, cores, lambda_combine)
        * speed,
    )


@dataclass
class ExperimentResult:
    """A table/figure regenerated as structured rows."""

    experiment_id: str
    title: str
    columns: tuple[str, ...]
    rows: list[tuple[Any, ...]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(tuple(values))

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        try:
            index = self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r}") from None
        return [row[index] for row in self.rows]

    def to_json(self, path: "str | Path | None" = None) -> str:
        """Serialize rows + notes as JSON (optionally writing ``path``)."""
        import json
        from pathlib import Path

        doc = {
            "experiment": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(r) for r in self.rows],
            "notes": list(self.notes),
        }
        text = json.dumps(doc, indent=2)
        if path is not None:
            Path(path).write_text(text)
        return text

    def to_csv(self, path: "str | Path | None" = None) -> str:
        """Serialize the rows as CSV (optionally writing ``path``)."""
        import csv
        import io
        from pathlib import Path

        buffer = io.StringIO()
        writer = csv.writer(buffer, lineterminator="\n")
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        text = buffer.getvalue()
        if path is not None:
            Path(path).write_text(text)
        return text

    def render(self) -> str:
        """Plain-text table in the style of the paper's reported rows."""
        def fmt(value: Any) -> str:
            if isinstance(value, float):
                return f"{value:.3f}"
            return str(value)

        header = [f"{self.experiment_id}: {self.title}", ""]
        widths = [
            max(len(c), *(len(fmt(r[i])) for r in self.rows)) if self.rows else len(c)
            for i, c in enumerate(self.columns)
        ]
        header.append(
            "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        )
        header.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            header.append(
                "  ".join(fmt(v).ljust(w) for v, w in zip(row, widths))
            )
        if self.notes:
            header.append("")
            header.extend(f"note: {n}" for n in self.notes)
        return "\n".join(header)
