"""Figure 5: Resample and Combine times across storage tiers and BB modes.

Six panels in the paper: {private, striped, on-node} × {Resample,
Combine}, each comparing intermediate files on the BB vs. on the PFS
while sweeping the fraction of input files staged into the BB.

Paper findings regenerated here:

* private mode: Resample improves as more inputs sit in the BB, and
  writing intermediates to the BB beats the PFS (up to ~1.5×);
* Combine in private mode is nearly constant (single storage layer);
* striped mode trails private consistently (the paper's prose claims up
  to two orders of magnitude; see EXPERIMENTS.md for why we reproduce a
  smaller factor);
* on-node improves for both tasks with more data in the BB and
  outperforms the shared implementation; Summit's PFS is itself fast.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.experiments.common import ExperimentResult, sweep_values
from repro.experiments.configs import (
    ALL_CONFIGS,
    CONFIGS_BY_LABEL,
    FRACTIONS,
    N_TRIALS,
    N_TRIALS_QUICK,
)
from repro.scenarios import run_swarp
from repro.sweep import SweepOptions, SweepSpec, point_id


def task_times(config, fraction, intermediates_in_bb, seed) -> tuple[float, float]:
    result = run_swarp(
        input_fraction=fraction,
        intermediates_in_bb=intermediates_in_bb,
        n_pipelines=1,
        cores_per_task=32,
        include_stage_in=False,
        emulated=True,
        seed=seed,
        **config.scenario_kwargs(),
    )
    return (
        result.mean_duration("resample"),
        result.mean_duration("combine"),
    )


def compute_point(params: dict[str, Any]) -> list[float]:
    """One sweep point: mean resample/combine times over the trial seeds."""
    config = CONFIGS_BY_LABEL[params["config"]]
    n_trials = params["n_trials"]
    samples = [
        task_times(config, params["fraction"], params["intermediates_in_bb"], seed)
        for seed in range(n_trials)
    ]
    return [
        sum(s[0] for s in samples) / n_trials,
        sum(s[1] for s in samples) / n_trials,
    ]


def _fractions(quick: bool):
    return FRACTIONS[::2] if quick else FRACTIONS


def sweep_spec(quick: bool = False) -> SweepSpec:
    return SweepSpec.cartesian(
        "fig5",
        "repro.experiments.fig5:compute_point",
        axes={
            "config": [c.label for c in ALL_CONFIGS],
            "intermediates_in_bb": [True, False],
            "fraction": [float(f) for f in _fractions(quick)],
        },
        constants={"n_trials": N_TRIALS_QUICK if quick else N_TRIALS},
    )


def run(quick: bool = False, sweep: Optional[SweepOptions] = None) -> ExperimentResult:
    n_trials = N_TRIALS_QUICK if quick else N_TRIALS
    values = sweep_values(sweep_spec(quick), sweep)
    result = ExperimentResult(
        experiment_id="fig5",
        title="Resample/Combine execution times (1 pipeline, 32 cores/task) "
        "vs. % inputs in BB, intermediates on BB or PFS",
        columns=(
            "config",
            "intermediates",
            "fraction",
            "resample_s",
            "combine_s",
        ),
    )
    for config in ALL_CONFIGS:
        for intermediates_in_bb in (True, False):
            for fraction in _fractions(quick):
                pid = point_id(
                    {
                        "config": config.label,
                        "intermediates_in_bb": intermediates_in_bb,
                        "fraction": float(fraction),
                        "n_trials": n_trials,
                    }
                )
                resample_s, combine_s = values[pid]
                result.add_row(
                    config.label,
                    "bb" if intermediates_in_bb else "pfs",
                    fraction,
                    resample_s,
                    combine_s,
                )
    result.notes.append(
        "expect: private resample falls with fraction; BB intermediates beat "
        "PFS; combine(private) flat; on-node fastest"
    )
    return result
