"""Queue-policy comparison on the contended multi-job BB scenario.

An experiment family the source paper never runs: its workflows own
their DataWarp reservation outright, so the allocator queue is always
empty and FIFO is vacuously optimal.  Under contention — many jobs
competing for one granule pool — the queueing discipline starts to
matter, and this experiment quantifies *which wait class* each policy
in :mod:`repro.wms.policies` shrinks:

* ``fifo`` — head-of-line blocking: a queued whale allocation makes
  every later small job wait, inflating ``wait:bb_capacity``;
* ``easy-backfill`` / ``conservative-backfill`` — small jobs jump the
  queue using their walltime estimates, collapsing the BB wait;
* ``plan`` — joint cores+BB co-reservation; no resource is held while
  queueing for the other, so the residual wait is the true resource
  shortage, not hold-and-wait amplification.

Each point runs :func:`repro.scenarios.run_contended` with an observer
attached and reports the makespan plus the critical-path attribution
of the two resource-wait classes (via :func:`repro.profile.build_profile`)
and the total per-task busy time — which must be identical across
policies, since a queue policy reorders work but never changes it.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.experiments.common import ExperimentResult, sweep_values
from repro.sweep import SweepOptions, SweepSpec, point_id
from repro.wms.policies import policy_names

#: Wait classes reported per point (critical-path seconds each).
WAIT_CLASSES = ("wait:bb_capacity", "wait:cores")


def compute_point(params: dict[str, Any], obs_dir=None) -> dict[str, float]:
    """One sweep point: contended-scenario metrics for one queue policy.

    Returns a JSON-plain dict: ``makespan``, one entry per
    :data:`WAIT_CLASSES` member (critical-path attribution, seconds),
    and ``busy_s`` — the summed task durations, the policy-invariant
    total work.  With an ``obs_dir`` the full telemetry bundle
    (manifest + profile) is exported per point, so
    ``repro-profile <fifo-point>/ <plan-point>/`` diffs two policies.
    """
    from repro.obs import Observer
    from repro.profile import build_profile
    from repro.scenarios import run_contended

    observer = Observer()
    scenario = run_contended(
        n_jobs=int(params["n_jobs"]),
        queue_policy=params["policy"],
        observer=observer,
    )
    profile = build_profile(scenario.trace, observer=observer)
    if obs_dir is not None:
        from repro.obs import export_run

        export_run(observer, obs_dir, profile=profile)
    attribution = profile.attribution
    busy = sum(r.duration for r in scenario.trace.records.values())
    point = {
        "makespan": scenario.makespan,
        "busy_s": busy,
    }
    for cause in WAIT_CLASSES:
        point[cause] = attribution.get(cause, 0.0)
    return point


def sweep_spec(quick: bool = False) -> SweepSpec:
    return SweepSpec.cartesian(
        "policies",
        "repro.experiments.policies:compute_point",
        axes={"policy": list(policy_names())},
        constants={"n_jobs": 8 if quick else 16},
        pass_obs_dir=True,
    )


def run(quick: bool = False, sweep: Optional[SweepOptions] = None) -> ExperimentResult:
    n_jobs = 8 if quick else 16
    values = sweep_values(sweep_spec(quick), sweep)
    result = ExperimentResult(
        experiment_id="policies",
        title=f"Queue-policy comparison, contended BB scenario ({n_jobs} jobs)",
        columns=("policy", "makespan_s", "wait_bb_s", "wait_cores_s", "busy_s"),
    )
    for policy in policy_names():
        point = values[point_id({"policy": policy, "n_jobs": n_jobs})]
        result.add_row(
            policy,
            point["makespan"],
            point["wait:bb_capacity"],
            point["wait:cores"],
            point["busy_s"],
        )
    result.notes.append(
        "expect: backfill/plan cut wait_bb_s vs fifo; busy_s identical "
        "for every policy (queueing reorders work, never changes it)"
    )
    return result
