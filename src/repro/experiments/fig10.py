"""Figure 10: real vs. simulated makespan — staged-fraction sweep.

The validation core of the paper (Section IV-B): the simple model
(Table I + Eq. 4, perfect speedup, no metadata effects) is calibrated
from the PFS baseline characterization and its makespan predictions are
compared against the measured ("emulated", in this reproduction)
makespans while sweeping the fraction of input files staged into BBs.

Paper findings regenerated here:

* private mode: mean error ≈ 5.6%, and the *trend inverts* — the
  measured makespan rises with the staged fraction while the simulated
  one falls (the only trend mismatch in the paper);
* striped mode: larger error (paper ≈ 12.8%), simulation underestimates
  (no striping fragmentation in the model), worst at the 75% anomaly;
* on-node: mean error ≈ 6.5%, simulation slightly optimistic.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.emulation.trials import run_trials
from repro.experiments.common import ExperimentResult, calibrate_swarp, sweep_values
from repro.experiments.configs import (
    ALL_CONFIGS,
    CONFIGS_BY_LABEL,
    FRACTIONS,
    N_TRIALS,
    N_TRIALS_QUICK,
)
from repro.model import mean_relative_error
from repro.scenarios import run_swarp
from repro.sweep import SweepOptions, SweepSpec, point_id


def measured_makespan(config, fraction: float, seed: int) -> float:
    r = run_swarp(
        input_fraction=fraction,
        intermediates_in_bb=True,
        n_pipelines=1,
        cores_per_task=32,
        include_stage_in=False,
        emulated=True,
        seed=seed,
        **config.scenario_kwargs(),
    )
    return r.makespan


def simulated_makespan(config, fraction: float) -> float:
    calibration = calibrate_swarp(config.system)
    r = run_swarp(
        input_fraction=fraction,
        intermediates_in_bb=True,
        n_pipelines=1,
        cores_per_task=32,
        include_stage_in=False,
        emulated=False,
        resample_flops=calibration.resample_flops,
        combine_flops=calibration.combine_flops,
        **config.scenario_kwargs(),
    )
    return r.makespan


def compute_point(params: dict[str, Any]) -> list[float]:
    """One sweep point: [measured mean, simulated] for (config, fraction)."""
    config = CONFIGS_BY_LABEL[params["config"]]
    stats = run_trials(
        lambda seed: measured_makespan(config, params["fraction"], seed),
        n_trials=params["n_trials"],
    )
    return [stats.mean, simulated_makespan(config, params["fraction"])]


def sweep_spec(quick: bool = False) -> SweepSpec:
    return SweepSpec.cartesian(
        "fig10",
        "repro.experiments.fig10:compute_point",
        axes={
            "config": [c.label for c in ALL_CONFIGS],
            "fraction": [float(f) for f in FRACTIONS],
        },
        constants={"n_trials": N_TRIALS_QUICK if quick else N_TRIALS},
    )


def run(quick: bool = False, sweep: Optional[SweepOptions] = None) -> ExperimentResult:
    n_trials = N_TRIALS_QUICK if quick else N_TRIALS
    values = sweep_values(sweep_spec(quick), sweep)
    result = ExperimentResult(
        experiment_id="fig10",
        title="Real (emulated) vs. simulated makespan vs. % files staged "
        "into BBs (1 pipeline, 32 cores/task)",
        columns=("config", "fraction", "measured_s", "simulated_s", "rel_error"),
    )
    for config in ALL_CONFIGS:
        measured, simulated = [], []
        for fraction in FRACTIONS:
            pid = point_id(
                {
                    "config": config.label,
                    "fraction": float(fraction),
                    "n_trials": n_trials,
                }
            )
            meas, sim = values[pid]
            measured.append(meas)
            simulated.append(sim)
            result.add_row(
                config.label,
                fraction,
                meas,
                sim,
                abs(sim - meas) / meas,
            )
        result.notes.append(
            f"{config.label}: mean relative error "
            f"{mean_relative_error(measured, simulated):.1%} "
            f"(paper: private 5.6%, striped 12.8%, on-node 6.5%)"
        )
    return result
