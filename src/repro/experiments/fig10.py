"""Figure 10: real vs. simulated makespan — staged-fraction sweep.

The validation core of the paper (Section IV-B): the simple model
(Table I + Eq. 4, perfect speedup, no metadata effects) is calibrated
from the PFS baseline characterization and its makespan predictions are
compared against the measured ("emulated", in this reproduction)
makespans while sweeping the fraction of input files staged into BBs.

Paper findings regenerated here:

* private mode: mean error ≈ 5.6%, and the *trend inverts* — the
  measured makespan rises with the staged fraction while the simulated
  one falls (the only trend mismatch in the paper);
* striped mode: larger error (paper ≈ 12.8%), simulation underestimates
  (no striping fragmentation in the model), worst at the 75% anomaly;
* on-node: mean error ≈ 6.5%, simulation slightly optimistic.
"""

from __future__ import annotations

from repro.emulation.trials import run_trials
from repro.experiments.common import ExperimentResult, calibrate_swarp
from repro.experiments.configs import ALL_CONFIGS, FRACTIONS, N_TRIALS, N_TRIALS_QUICK
from repro.model import mean_relative_error
from repro.scenarios import run_swarp


def measured_makespan(config, fraction: float, seed: int) -> float:
    r = run_swarp(
        input_fraction=fraction,
        intermediates_in_bb=True,
        n_pipelines=1,
        cores_per_task=32,
        include_stage_in=False,
        emulated=True,
        seed=seed,
        **config.scenario_kwargs(),
    )
    return r.makespan


def simulated_makespan(config, fraction: float) -> float:
    calibration = calibrate_swarp(config.system)
    r = run_swarp(
        input_fraction=fraction,
        intermediates_in_bb=True,
        n_pipelines=1,
        cores_per_task=32,
        include_stage_in=False,
        emulated=False,
        resample_flops=calibration.resample_flops,
        combine_flops=calibration.combine_flops,
        **config.scenario_kwargs(),
    )
    return r.makespan


def run(quick: bool = False) -> ExperimentResult:
    n_trials = N_TRIALS_QUICK if quick else N_TRIALS
    result = ExperimentResult(
        experiment_id="fig10",
        title="Real (emulated) vs. simulated makespan vs. % files staged "
        "into BBs (1 pipeline, 32 cores/task)",
        columns=("config", "fraction", "measured_s", "simulated_s", "rel_error"),
    )
    for config in ALL_CONFIGS:
        measured, simulated = [], []
        for fraction in FRACTIONS:
            stats = run_trials(
                lambda seed: measured_makespan(config, fraction, seed),
                n_trials=n_trials,
            )
            sim = simulated_makespan(config, fraction)
            measured.append(stats.mean)
            simulated.append(sim)
            result.add_row(
                config.label,
                fraction,
                stats.mean,
                sim,
                abs(sim - stats.mean) / stats.mean,
            )
        result.notes.append(
            f"{config.label}: mean relative error "
            f"{mean_relative_error(measured, simulated):.1%} "
            f"(paper: private 5.6%, striped 12.8%, on-node 6.5%)"
        )
    return result
