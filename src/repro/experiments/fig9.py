"""Figure 9: average achieved I/O bandwidth per BB configuration.

The paper reports the mean bandwidth (MB/s) the SWarp workflow actually
achieves on each configuration — well below every peak in Table I,
because standard POSIX I/O, per-file latencies, metadata serialization,
and contention all eat into it.

We measure it at the task level: bytes moved by a task divided by the
time the task spent in its I/O phases, averaged over the workflow's
tasks and repeated trials (the same definition a Darshan-style profile
of the real runs would yield).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.experiments.common import ExperimentResult, sweep_values
from repro.experiments.configs import (
    ALL_CONFIGS,
    CONFIGS_BY_LABEL,
    N_TRIALS,
    N_TRIALS_QUICK,
)
from repro.platform.units import MB
from repro.scenarios import run_swarp
from repro.sweep import SweepOptions, SweepSpec, point_id

#: The relevant peak each configuration could theoretically reach
#: (Table I: the compute node's path into its BB tier), MB/s.
PEAKS = {"private": 800.0, "striped": 800.0, "on-node": 3300.0}


def task_bandwidths(config, seed: int) -> list[float]:
    """Achieved I/O bandwidth of each compute task, bytes/s."""
    r = run_swarp(
        input_fraction=1.0,
        intermediates_in_bb=True,
        outputs_in_bb=True,
        n_pipelines=4,
        cores_per_task=8,
        include_stage_in=False,
        emulated=True,
        seed=seed,
        **config.scenario_kwargs(),
    )
    out = []
    for record in r.trace.records.values():
        task = r.workflow.task(record.name)
        moved = task.input_bytes + task.output_bytes
        if record.io_time > 0 and moved > 0:
            out.append(moved / record.io_time)
    return out


def compute_point(params: dict[str, Any]) -> list[float]:
    """One sweep point: achieved-bandwidth statistics for one config."""
    config = CONFIGS_BY_LABEL[params["config"]]
    samples: list[float] = []
    for seed in range(params["n_trials"]):
        samples.extend(task_bandwidths(config, seed))
    arr = np.asarray(samples) / MB
    return [
        float(arr.mean()),
        float(np.percentile(arr, 10)),
        float(np.percentile(arr, 90)),
        float(arr.mean() / PEAKS[config.label]),
    ]


def sweep_spec(quick: bool = False) -> SweepSpec:
    return SweepSpec.cartesian(
        "fig9",
        "repro.experiments.fig9:compute_point",
        axes={"config": [c.label for c in ALL_CONFIGS]},
        constants={"n_trials": N_TRIALS_QUICK if quick else N_TRIALS},
    )


def run(quick: bool = False, sweep: Optional[SweepOptions] = None) -> ExperimentResult:
    n_trials = N_TRIALS_QUICK if quick else N_TRIALS
    values = sweep_values(sweep_spec(quick), sweep)
    result = ExperimentResult(
        experiment_id="fig9",
        title="Average achieved I/O bandwidth per BB configuration (MB/s)",
        columns=("config", "mean_MBps", "p10_MBps", "p90_MBps", "peak_fraction"),
    )
    for config in ALL_CONFIGS:
        pid = point_id({"config": config.label, "n_trials": n_trials})
        mean, p10, p90, peak_fraction = values[pid]
        result.add_row(config.label, mean, p10, p90, peak_fraction)
    result.notes.append(
        "expect: on-node ≫ private > striped; all well below Table I peaks"
    )
    return result
