"""Figure 8: run-to-run variability of Resample vs. pipeline count.

Paper findings regenerated here (all files in BB, 1 core per pipeline):

* the on-node implementation is both the fastest and the most stable
  (no network hop → little interference);
* for the shared architecture, private mode outperforms striped and is
  much more stable;
* striped-mode execution time varies by ~15% between runs.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.emulation.trials import run_trials
from repro.experiments.common import ExperimentResult, sweep_values
from repro.experiments.configs import (
    ALL_CONFIGS,
    CONFIGS_BY_LABEL,
    N_TRIALS,
    N_TRIALS_QUICK,
)
from repro.scenarios import run_swarp
from repro.sweep import SweepOptions, SweepSpec, point_id

PIPELINES = (1, 4, 16, 32)


def resample_time(config, n_pipelines: int, seed: int) -> float:
    r = run_swarp(
        input_fraction=1.0,
        intermediates_in_bb=True,
        outputs_in_bb=True,
        n_pipelines=n_pipelines,
        cores_per_task=1,
        include_stage_in=False,
        emulated=True,
        seed=seed,
        **config.scenario_kwargs(),
    )
    return r.mean_duration("resample")


def compute_point(params: dict[str, Any]) -> list[float]:
    """One sweep point: resample variability stats for (config, pipelines)."""
    config = CONFIGS_BY_LABEL[params["config"]]
    stats = run_trials(
        lambda seed: resample_time(config, params["pipelines"], seed),
        n_trials=params["n_trials"],
    )
    return [stats.mean, stats.std, stats.cv, stats.spread]


def _pipelines(quick: bool):
    return (1, 32) if quick else PIPELINES


def sweep_spec(quick: bool = False) -> SweepSpec:
    return SweepSpec.cartesian(
        "fig8",
        "repro.experiments.fig8:compute_point",
        axes={
            "config": [c.label for c in ALL_CONFIGS],
            "pipelines": list(_pipelines(quick)),
        },
        constants={"n_trials": N_TRIALS_QUICK if quick else N_TRIALS},
    )


def run(quick: bool = False, sweep: Optional[SweepOptions] = None) -> ExperimentResult:
    n_trials = N_TRIALS_QUICK if quick else N_TRIALS
    values = sweep_values(sweep_spec(quick), sweep)
    result = ExperimentResult(
        experiment_id="fig8",
        title="Resample variability across repeated runs vs. pipelines "
        "(all files in BB)",
        columns=("config", "pipelines", "mean_s", "std_s", "cv", "spread"),
    )
    for config in ALL_CONFIGS:
        for n in _pipelines(quick):
            pid = point_id(
                {"config": config.label, "pipelines": n, "n_trials": n_trials}
            )
            mean, std, cv, spread = values[pid]
            result.add_row(config.label, n, mean, std, cv, spread)
    result.notes.append(
        "expect: on-node lowest mean and spread; striped spread ~15%"
    )
    return result
