"""Figure 8: run-to-run variability of Resample vs. pipeline count.

Paper findings regenerated here (all files in BB, 1 core per pipeline):

* the on-node implementation is both the fastest and the most stable
  (no network hop → little interference);
* for the shared architecture, private mode outperforms striped and is
  much more stable;
* striped-mode execution time varies by ~15% between runs.
"""

from __future__ import annotations

from repro.emulation.trials import run_trials
from repro.experiments.common import ExperimentResult
from repro.experiments.configs import ALL_CONFIGS, N_TRIALS, N_TRIALS_QUICK
from repro.scenarios import run_swarp

PIPELINES = (1, 4, 16, 32)


def resample_time(config, n_pipelines: int, seed: int) -> float:
    r = run_swarp(
        input_fraction=1.0,
        intermediates_in_bb=True,
        outputs_in_bb=True,
        n_pipelines=n_pipelines,
        cores_per_task=1,
        include_stage_in=False,
        emulated=True,
        seed=seed,
        **config.scenario_kwargs(),
    )
    return r.mean_duration("resample")


def run(quick: bool = False) -> ExperimentResult:
    n_trials = N_TRIALS_QUICK if quick else N_TRIALS
    pipelines = (1, 32) if quick else PIPELINES
    result = ExperimentResult(
        experiment_id="fig8",
        title="Resample variability across repeated runs vs. pipelines "
        "(all files in BB)",
        columns=("config", "pipelines", "mean_s", "std_s", "cv", "spread"),
    )
    for config in ALL_CONFIGS:
        for n in pipelines:
            stats = run_trials(
                lambda seed: resample_time(config, n, seed), n_trials=n_trials
            )
            result.add_row(
                config.label, n, stats.mean, stats.std, stats.cv, stats.spread
            )
    result.notes.append(
        "expect: on-node lowest mean and spread; striped spread ~15%"
    )
    return result
