"""Figure 13: 1000Genomes makespan vs. fraction of input staged into BBs.

The case study of Section IV-C: the calibrated simulator (no emulation
effects — this figure is simulation-only in the paper, too) predicts
the makespan of the 903-task, ~67 GB 1000Genomes workflow on the Cori
and Summit models while sweeping the staged input fraction.

Paper findings regenerated here:

* performance improves (makespan falls) as more input sits in the BB;
* Summit outperforms Cori (bigger BB bandwidth);
* Cori plateaus once ~80% of the input is staged (its single BB node's
  bandwidth saturates); Summit's plateau arrives only near 100%.

This module is also the sweep engine's telemetry showcase: when the
sweep is given an ``--obs-dir``, every point attaches an
:class:`repro.obs.Observer` to its simulation and exports the full
telemetry bundle (manifest + Perfetto trace + metric CSVs) into its
per-point directory.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.config import Config
from repro.experiments.common import ExperimentResult, sweep_values
from repro.network import DEFAULT_ALLOCATOR
from repro.scenarios import run_genomes
from repro.sweep import SweepOptions, SweepSpec, point_id

FRACTIONS = tuple(np.round(np.linspace(0.0, 1.0, 11), 2))


def makespan(system: str, fraction: float, n_chromosomes: int, observer=None) -> float:
    return run_genomes(
        system=system,
        input_fraction=fraction,
        n_chromosomes=n_chromosomes,
        n_compute=8,
        emulated=False,
        observer=observer,
    ).makespan


def compute_point(params: dict[str, Any], obs_dir=None) -> float:
    """One sweep point: simulated makespan for (system, fraction).

    With an ``obs_dir``, the point also exports its telemetry bundle —
    including the critical-path ``profile.json``/``profile.folded`` —
    into its per-point directory, so ``repro-profile <a>/ <b>/`` can
    diff any two sweep points.  The return value stays the bare
    makespan float: profiling is export-only and cannot perturb the
    sweep cache key or the cached value.
    """
    observer = None
    if obs_dir is not None:
        from repro.obs import Observer

        observer = Observer()
    scenario = run_genomes(
        system=params["system"],
        input_fraction=params["fraction"],
        n_chromosomes=params["n_chromosomes"],
        n_compute=8,
        emulated=False,
        observer=observer,
        network_allocator=params.get("network_allocator"),
    )
    if observer is not None:
        from repro.obs import export_run
        from repro.profile import build_profile

        profile = build_profile(scenario.trace, observer=observer)
        export_run(observer, obs_dir, profile=profile)
    return scenario.makespan


def _fractions(quick: bool):
    return FRACTIONS[::2] if quick else FRACTIONS


def _constants(quick: bool, config: "Config | None") -> dict[str, Any]:
    """The non-axis parameters every point carries.

    ``network_allocator`` joins the parameter set only when the config
    picks a non-default discipline, so the cache keys (and per-point
    telemetry directories) of historical default-allocator sweeps are
    untouched.
    """
    constants: dict[str, Any] = {"n_chromosomes": 6 if quick else 22}
    cfg = Config.from_any(config)
    if cfg.network_allocator != DEFAULT_ALLOCATOR:
        constants["network_allocator"] = cfg.network_allocator
    return constants


def sweep_spec(quick: bool = False, config: "Config | None" = None) -> SweepSpec:
    return SweepSpec.cartesian(
        "fig13",
        "repro.experiments.fig13:compute_point",
        axes={
            "system": ["cori", "summit"],
            "fraction": [float(f) for f in _fractions(quick)],
        },
        constants=_constants(quick, config),
        pass_obs_dir=True,
    )


def run(
    quick: bool = False,
    sweep: Optional[SweepOptions] = None,
    config: "Config | None" = None,
) -> ExperimentResult:
    n_chromosomes = 6 if quick else 22
    constants = _constants(quick, config)
    values = sweep_values(sweep_spec(quick, config), sweep)
    result = ExperimentResult(
        experiment_id="fig13",
        title="1000Genomes simulated makespan vs. % input files in BB "
        f"({n_chromosomes} chromosomes)",
        columns=("fraction", "cori_s", "summit_s"),
    )
    for fraction in _fractions(quick):
        row = []
        for system in ("cori", "summit"):
            pid = point_id(
                {**constants, "system": system, "fraction": float(fraction)}
            )
            row.append(values[pid])
        result.add_row(float(fraction), row[0], row[1])
    result.notes.append(
        "expect: both fall with fraction; summit < cori; cori plateau ~80%"
    )
    return result
