"""Figure 13: 1000Genomes makespan vs. fraction of input staged into BBs.

The case study of Section IV-C: the calibrated simulator (no emulation
effects — this figure is simulation-only in the paper, too) predicts
the makespan of the 903-task, ~67 GB 1000Genomes workflow on the Cori
and Summit models while sweeping the staged input fraction.

Paper findings regenerated here:

* performance improves (makespan falls) as more input sits in the BB;
* Summit outperforms Cori (bigger BB bandwidth);
* Cori plateaus once ~80% of the input is staged (its single BB node's
  bandwidth saturates); Summit's plateau arrives only near 100%.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.common import ExperimentResult
from repro.scenarios import run_genomes

FRACTIONS = tuple(np.round(np.linspace(0.0, 1.0, 11), 2))


def makespan(system: str, fraction: float, n_chromosomes: int) -> float:
    return run_genomes(
        system=system,
        input_fraction=fraction,
        n_chromosomes=n_chromosomes,
        n_compute=8,
        emulated=False,
    ).makespan


def run(quick: bool = False) -> ExperimentResult:
    fractions = FRACTIONS[::2] if quick else FRACTIONS
    n_chromosomes = 6 if quick else 22
    result = ExperimentResult(
        experiment_id="fig13",
        title="1000Genomes simulated makespan vs. % input files in BB "
        f"({n_chromosomes} chromosomes)",
        columns=("fraction", "cori_s", "summit_s"),
    )
    for fraction in fractions:
        result.add_row(
            float(fraction),
            makespan("cori", float(fraction), n_chromosomes),
            makespan("summit", float(fraction), n_chromosomes),
        )
    result.notes.append(
        "expect: both fall with fraction; summit < cori; cori plateau ~80%"
    )
    return result
