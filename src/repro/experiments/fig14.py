"""Figure 14: 1000Genomes speedup from staging input into BBs.

Figure 13's data expressed as parallel speedup (makespan at 0% staged
divided by makespan at fraction f), compared against reference speedup
points from prior work (Ferreira da Silva et al. [10]).

The paper stresses that the reference points come from a *different*
configuration — a 2-chromosome instance, an older software stack, and a
different system load — so it treats them as "an interesting reference
point, rather than ... a thorough validation", reporting ≈ 29% error.
We reproduce the comparison structure faithfully: our reference points
are produced by the *emulator* on a 2-chromosome instance (standing in
for the prior measured study), while the simulated curve uses the full
22-chromosome instance, mirroring the paper's mismatch.

Sweep-wise this is the one heterogeneous experiment: the point list
mixes simulated-makespan points (``kind="sim"``) and emulated reference
points (``kind="ref"``), and the speedup ratios are formed from the raw
makespans when the rows are assembled.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Any, Optional

from repro.config import Config
from repro.emulation.calibration import CORI_EFFECTS
from repro.emulation.trials import run_trials
from repro.experiments.common import ExperimentResult, sweep_values
from repro.network import DEFAULT_ALLOCATOR
from repro.model import mean_relative_error
from repro.platform.units import MB
from repro.scenarios import run_genomes
from repro.sweep import SweepOptions, SweepSpec, point_id

FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
REFERENCE_FRACTIONS = (0.4, 0.8, 1.0)  # the prior study measured a few points

#: The reference study ([10]) ran years before the paper's experiments on
#: an older, more loaded software stack (the paper's own caveats: "several
#: aspects of the system have been upgraded ... the load on the system is
#: never the same").  We encode that era difference as a slower effective
#: PFS in the reference emulation.
REFERENCE_ERA_EFFECTS = replace(CORI_EFFECTS, pfs_disk_bandwidth=50 * MB)


def simulated_makespan(
    system: str,
    fraction: float,
    n_chromosomes: int,
    network_allocator: Optional[str] = None,
) -> float:
    return run_genomes(
        system=system,
        input_fraction=fraction,
        n_chromosomes=n_chromosomes,
        n_compute=8,
        network_allocator=network_allocator,
    ).makespan


def reference_makespan(fraction: float, n_trials: int) -> float:
    """Emulated 2-chromosome Cori reference (the prior-work stand-in)."""

    def emulated(seed: int) -> float:
        return run_genomes(
            system="cori",
            input_fraction=fraction,
            n_chromosomes=2,
            n_compute=8,
            emulated=True,
            seed=seed,
            effects=REFERENCE_ERA_EFFECTS,
        ).makespan

    return run_trials(emulated, n_trials=n_trials).mean


def compute_point(params: dict[str, Any]) -> float:
    """One sweep point: a raw makespan, simulated or emulated-reference."""
    if params["kind"] == "sim":
        return simulated_makespan(
            params["system"],
            params["fraction"],
            params["n_chromosomes"],
            network_allocator=params.get("network_allocator"),
        )
    return reference_makespan(params["fraction"], params["n_trials"])


def _fractions(quick: bool):
    return (0.0, 0.5, 1.0) if quick else FRACTIONS


def _sim_constants(config: "Config | None") -> dict[str, Any]:
    """Extra parameters for the simulated points (cache-key-neutral for
    the default allocator, exactly like fig13)."""
    cfg = Config.from_any(config)
    if cfg.network_allocator != DEFAULT_ALLOCATOR:
        return {"network_allocator": cfg.network_allocator}
    return {}


def sweep_spec(quick: bool = False, config: "Config | None" = None) -> SweepSpec:
    n_chromosomes = 6 if quick else 22
    ref_trials = 3 if quick else 5
    points: list[dict[str, Any]] = [
        {
            "kind": "sim",
            "system": system,
            "fraction": float(f),
            "n_chromosomes": n_chromosomes,
            **_sim_constants(config),
        }
        for system in ("cori", "summit")
        for f in _fractions(quick)
    ]
    points += [
        {"kind": "ref", "fraction": float(f), "n_trials": ref_trials}
        for f in (0.0,) + REFERENCE_FRACTIONS
    ]
    return SweepSpec(
        sweep_id="fig14",
        func="repro.experiments.fig14:compute_point",
        points=tuple(points),
    )


def run(
    quick: bool = False,
    sweep: Optional[SweepOptions] = None,
    config: "Config | None" = None,
) -> ExperimentResult:
    n_chromosomes = 6 if quick else 22
    ref_trials = 3 if quick else 5
    fractions = _fractions(quick)
    values = sweep_values(sweep_spec(quick, config), sweep)
    sim_constants = _sim_constants(config)

    def sim(system: str, f: float) -> float:
        return values[
            point_id(
                {
                    "kind": "sim",
                    "system": system,
                    "fraction": float(f),
                    "n_chromosomes": n_chromosomes,
                    **sim_constants,
                }
            )
        ]

    def ref(f: float) -> float:
        return values[
            point_id({"kind": "ref", "fraction": float(f), "n_trials": ref_trials})
        ]

    cori = {f: sim("cori", 0.0) / sim("cori", f) for f in fractions}
    summit = {f: sim("summit", 0.0) / sim("summit", f) for f in fractions}
    reference = {f: ref(0.0) / ref(f) for f in REFERENCE_FRACTIONS}

    result = ExperimentResult(
        experiment_id="fig14",
        title="1000Genomes speedup from staging input into BBs "
        "(+ prior-work reference points)",
        columns=("fraction", "cori_speedup", "summit_speedup", "reference"),
    )
    for f in fractions:
        result.add_row(f, cori[f], summit[f], reference.get(f, float("nan")))

    common = [f for f in reference if f in cori]
    if common:
        err = mean_relative_error(
            [reference[f] for f in common], [cori[f] for f in common]
        )
        result.notes.append(
            f"error vs. 2-chromosome reference: {err:.1%} "
            "(paper: ~29%, attributed to the configuration mismatch)"
        )
    return result
