"""Figure 14: 1000Genomes speedup from staging input into BBs.

Figure 13's data expressed as parallel speedup (makespan at 0% staged
divided by makespan at fraction f), compared against reference speedup
points from prior work (Ferreira da Silva et al. [10]).

The paper stresses that the reference points come from a *different*
configuration — a 2-chromosome instance, an older software stack, and a
different system load — so it treats them as "an interesting reference
point, rather than ... a thorough validation", reporting ≈ 29% error.
We reproduce the comparison structure faithfully: our reference points
are produced by the *emulator* on a 2-chromosome instance (standing in
for the prior measured study), while the simulated curve uses the full
22-chromosome instance, mirroring the paper's mismatch.
"""

from __future__ import annotations

from dataclasses import replace

from repro.emulation.calibration import CORI_EFFECTS
from repro.emulation.trials import run_trials
from repro.experiments.common import ExperimentResult
from repro.model import mean_relative_error
from repro.platform.units import MB
from repro.scenarios import run_genomes

FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
REFERENCE_FRACTIONS = (0.4, 0.8, 1.0)  # the prior study measured a few points

#: The reference study ([10]) ran years before the paper's experiments on
#: an older, more loaded software stack (the paper's own caveats: "several
#: aspects of the system have been upgraded ... the load on the system is
#: never the same").  We encode that era difference as a slower effective
#: PFS in the reference emulation.
REFERENCE_ERA_EFFECTS = replace(CORI_EFFECTS, pfs_disk_bandwidth=50 * MB)


def simulated_speedups(system: str, fractions, n_chromosomes: int) -> dict[float, float]:
    baseline = run_genomes(
        system=system, input_fraction=0.0, n_chromosomes=n_chromosomes, n_compute=8
    ).makespan
    return {
        f: baseline
        / run_genomes(
            system=system, input_fraction=f, n_chromosomes=n_chromosomes, n_compute=8
        ).makespan
        for f in fractions
    }


def reference_speedups(quick: bool = False) -> dict[float, float]:
    """Emulated 2-chromosome Cori reference (the prior-work stand-in)."""
    n_trials = 3 if quick else 5

    def emulated_makespan(fraction: float, seed: int) -> float:
        return run_genomes(
            system="cori",
            input_fraction=fraction,
            n_chromosomes=2,
            n_compute=8,
            emulated=True,
            seed=seed,
            effects=REFERENCE_ERA_EFFECTS,
        ).makespan

    baseline = run_trials(
        lambda seed: emulated_makespan(0.0, seed), n_trials=n_trials
    ).mean
    return {
        f: baseline
        / run_trials(lambda seed: emulated_makespan(f, seed), n_trials=n_trials).mean
        for f in REFERENCE_FRACTIONS
    }


def run(quick: bool = False) -> ExperimentResult:
    n_chromosomes = 6 if quick else 22
    fractions = (0.0, 0.5, 1.0) if quick else FRACTIONS
    result = ExperimentResult(
        experiment_id="fig14",
        title="1000Genomes speedup from staging input into BBs "
        "(+ prior-work reference points)",
        columns=("fraction", "cori_speedup", "summit_speedup", "reference"),
    )
    cori = simulated_speedups("cori", fractions, n_chromosomes)
    summit = simulated_speedups("summit", fractions, n_chromosomes)
    reference = reference_speedups(quick=quick)
    for f in fractions:
        result.add_row(f, cori[f], summit[f], reference.get(f, float("nan")))

    common = [f for f in reference if f in cori]
    if common:
        err = mean_relative_error(
            [reference[f] for f in common], [cori[f] for f in common]
        )
        result.notes.append(
            f"error vs. 2-chromosome reference: {err:.1%} "
            "(paper: ~29%, attributed to the configuration mismatch)"
        )
    return result
