"""Figure 4: stage-in time vs. the fraction of input files staged into BBs.

Paper findings this harness regenerates:

* stage-in time grows linearly with the staged data volume;
* the on-node implementation (Summit) outperforms the shared one (Cori)
  by up to a factor of ~5;
* the striped mode shows an unexpected, reproducible degradation around
  75% staged input;
* both shared modes show visible run-to-run variation (curve envelopes).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.emulation.trials import run_trials
from repro.experiments.common import ExperimentResult, sweep_values
from repro.experiments.configs import (
    ALL_CONFIGS,
    CONFIGS_BY_LABEL,
    FRACTIONS,
    N_TRIALS,
    N_TRIALS_QUICK,
)
from repro.scenarios import run_swarp
from repro.sweep import SweepOptions, SweepSpec, point_id


def stage_in_time(config, fraction: float, seed: int) -> float:
    result = run_swarp(
        input_fraction=fraction,
        intermediates_in_bb=True,
        n_pipelines=1,
        cores_per_task=32,
        include_stage_in=True,
        emulated=True,
        seed=seed,
        **config.scenario_kwargs(),
    )
    return result.trace.task_record("stage_in").duration


def compute_point(params: dict[str, Any]) -> list[float]:
    """One sweep point: stage-in trial statistics for (config, fraction)."""
    config = CONFIGS_BY_LABEL[params["config"]]
    stats = run_trials(
        lambda seed: stage_in_time(config, params["fraction"], seed),
        n_trials=params["n_trials"],
    )
    return [stats.mean, stats.std, stats.min, stats.max]


def sweep_spec(quick: bool = False) -> SweepSpec:
    return SweepSpec.cartesian(
        "fig4",
        "repro.experiments.fig4:compute_point",
        axes={
            "fraction": [float(f) for f in FRACTIONS],
            "config": [c.label for c in ALL_CONFIGS],
        },
        constants={"n_trials": N_TRIALS_QUICK if quick else N_TRIALS},
    )


def run(quick: bool = False, sweep: Optional[SweepOptions] = None) -> ExperimentResult:
    n_trials = N_TRIALS_QUICK if quick else N_TRIALS
    values = sweep_values(sweep_spec(quick), sweep)
    result = ExperimentResult(
        experiment_id="fig4",
        title="Stage-In execution time vs. % of input files staged into BBs "
        "(1 pipeline, 32 cores/task)",
        columns=("fraction", "config", "mean_s", "std_s", "min_s", "max_s"),
    )
    for fraction in FRACTIONS:
        for config in ALL_CONFIGS:
            pid = point_id(
                {
                    "fraction": float(fraction),
                    "config": config.label,
                    "n_trials": n_trials,
                }
            )
            mean, std, min_s, max_s = values[pid]
            result.add_row(fraction, config.label, mean, std, min_s, max_s)
    result.notes.append(
        "expect: linear growth; on-node ≪ private ≪ striped; striped bump at 75%"
    )
    return result
