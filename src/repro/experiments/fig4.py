"""Figure 4: stage-in time vs. the fraction of input files staged into BBs.

Paper findings this harness regenerates:

* stage-in time grows linearly with the staged data volume;
* the on-node implementation (Summit) outperforms the shared one (Cori)
  by up to a factor of ~5;
* the striped mode shows an unexpected, reproducible degradation around
  75% staged input;
* both shared modes show visible run-to-run variation (curve envelopes).
"""

from __future__ import annotations

from repro.emulation.trials import run_trials
from repro.experiments.common import ExperimentResult
from repro.experiments.configs import ALL_CONFIGS, FRACTIONS, N_TRIALS, N_TRIALS_QUICK
from repro.scenarios import run_swarp


def stage_in_time(config, fraction: float, seed: int) -> float:
    result = run_swarp(
        input_fraction=fraction,
        intermediates_in_bb=True,
        n_pipelines=1,
        cores_per_task=32,
        include_stage_in=True,
        emulated=True,
        seed=seed,
        **config.scenario_kwargs(),
    )
    return result.trace.task_record("stage_in").duration


def run(quick: bool = False) -> ExperimentResult:
    n_trials = N_TRIALS_QUICK if quick else N_TRIALS
    result = ExperimentResult(
        experiment_id="fig4",
        title="Stage-In execution time vs. % of input files staged into BBs "
        "(1 pipeline, 32 cores/task)",
        columns=("fraction", "config", "mean_s", "std_s", "min_s", "max_s"),
    )
    for fraction in FRACTIONS:
        for config in ALL_CONFIGS:
            stats = run_trials(
                lambda seed: stage_in_time(config, fraction, seed),
                n_trials=n_trials,
            )
            result.add_row(
                fraction, config.label, stats.mean, stats.std, stats.min, stats.max
            )
    result.notes.append(
        "expect: linear growth; on-node ≪ private ≪ striped; striped bump at 75%"
    )
    return result
