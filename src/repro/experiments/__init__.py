"""Experiment harnesses: one module per table/figure of the paper.

Each module exposes ``run(quick=False, sweep=None) -> ExperimentResult``
plus a ``sweep_spec(quick)`` describing its parameter grid; the CLI
(``python -m repro.experiments <id>``) renders the result as the text
rows/series the paper reports.  ``quick=True`` trims trial counts and
sweep densities for CI-speed runs without changing the shapes; the
``sweep`` argument (a :class:`repro.sweep.SweepOptions`) fans the grid
points over worker processes and/or a content-addressed result cache —
the default (``None``) runs everything serially in-process, uncached,
and is bit-identical to the parallel/cached paths.

Experiment index (see DESIGN.md for the full mapping):

========  ==========================================================
table1    Calibrated platform parameters
fig4      Stage-in time vs. staged input fraction
fig5      Resample/Combine times across tiers and modes
fig6      Cores-per-task sweep
fig7      Concurrent-pipelines sweep
fig8      Run-to-run variability vs. pipelines
fig9      Achieved I/O bandwidth per configuration
fig10     Simulated-vs-measured makespan (stage fraction sweep)
fig11     Simulated-vs-measured makespan (pipeline sweep)
fig13     1000Genomes makespan vs. staged fraction (Cori/Summit)
fig14     1000Genomes speedup + prior-work reference points
policies  Queue-policy comparison on the contended BB scenario
========  ==========================================================
"""

from repro.experiments.common import (
    CalibratedSwarp,
    ExperimentResult,
    calibrate_swarp,
)

__all__ = ["CalibratedSwarp", "ExperimentResult", "calibrate_swarp"]

ALL_EXPERIMENTS = (
    "table1",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig13",
    "fig14",
    "policies",
)
