"""Figure 6: impact of the number of cores per task.

Paper findings regenerated here (1 pipeline, all input files in the BB):

* Resample benefits from parallelism up to ~8 cores on the shared
  implementation, then slightly degrades;
* on the on-node implementation the plateau arrives around 16 cores;
* Combine does not benefit from increased parallelism (reads all inputs
  at once and merges them under locks);
* the relative ordering of the configurations is unchanged by the core
  count.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.experiments.common import ExperimentResult, sweep_values
from repro.experiments.configs import (
    ALL_CONFIGS,
    CONFIGS_BY_LABEL,
    CORE_COUNTS,
    N_TRIALS,
    N_TRIALS_QUICK,
)
from repro.scenarios import run_swarp
from repro.sweep import SweepOptions, SweepSpec, point_id


def compute_point(params: dict[str, Any]) -> list[float]:
    """One sweep point: mean resample/combine times for (config, cores)."""
    config = CONFIGS_BY_LABEL[params["config"]]
    n_trials = params["n_trials"]
    samples = []
    for seed in range(n_trials):
        r = run_swarp(
            input_fraction=1.0,
            intermediates_in_bb=True,
            n_pipelines=1,
            cores_per_task=params["cores"],
            include_stage_in=False,
            emulated=True,
            seed=seed,
            **config.scenario_kwargs(),
        )
        samples.append((r.mean_duration("resample"), r.mean_duration("combine")))
    return [
        sum(s[0] for s in samples) / n_trials,
        sum(s[1] for s in samples) / n_trials,
    ]


def _core_counts(quick: bool):
    return (1, 8, 32) if quick else CORE_COUNTS


def sweep_spec(quick: bool = False) -> SweepSpec:
    return SweepSpec.cartesian(
        "fig6",
        "repro.experiments.fig6:compute_point",
        axes={
            "config": [c.label for c in ALL_CONFIGS],
            "cores": list(_core_counts(quick)),
        },
        constants={"n_trials": N_TRIALS_QUICK if quick else N_TRIALS},
    )


def run(quick: bool = False, sweep: Optional[SweepOptions] = None) -> ExperimentResult:
    n_trials = N_TRIALS_QUICK if quick else N_TRIALS
    values = sweep_values(sweep_spec(quick), sweep)
    result = ExperimentResult(
        experiment_id="fig6",
        title="SWarp task times vs. cores per task "
        "(1 pipeline, all inputs staged into BB)",
        columns=("config", "cores", "resample_s", "combine_s"),
    )
    for config in ALL_CONFIGS:
        for cores in _core_counts(quick):
            pid = point_id(
                {"config": config.label, "cores": cores, "n_trials": n_trials}
            )
            resample_s, combine_s = values[pid]
            result.add_row(config.label, cores, resample_s, combine_s)
    result.notes.append(
        "expect: resample plateau ~8 cores (shared) / ~16 (on-node); "
        "combine flat"
    )
    return result
