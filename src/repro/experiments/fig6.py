"""Figure 6: impact of the number of cores per task.

Paper findings regenerated here (1 pipeline, all input files in the BB):

* Resample benefits from parallelism up to ~8 cores on the shared
  implementation, then slightly degrades;
* on the on-node implementation the plateau arrives around 16 cores;
* Combine does not benefit from increased parallelism (reads all inputs
  at once and merges them under locks);
* the relative ordering of the configurations is unchanged by the core
  count.
"""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.experiments.configs import ALL_CONFIGS, CORE_COUNTS, N_TRIALS, N_TRIALS_QUICK
from repro.scenarios import run_swarp


def run(quick: bool = False) -> ExperimentResult:
    n_trials = N_TRIALS_QUICK if quick else N_TRIALS
    cores_list = (1, 8, 32) if quick else CORE_COUNTS
    result = ExperimentResult(
        experiment_id="fig6",
        title="SWarp task times vs. cores per task "
        "(1 pipeline, all inputs staged into BB)",
        columns=("config", "cores", "resample_s", "combine_s"),
    )
    for config in ALL_CONFIGS:
        for cores in cores_list:
            samples = []
            for seed in range(n_trials):
                r = run_swarp(
                    input_fraction=1.0,
                    intermediates_in_bb=True,
                    n_pipelines=1,
                    cores_per_task=cores,
                    include_stage_in=False,
                    emulated=True,
                    seed=seed,
                    **config.scenario_kwargs(),
                )
                samples.append(
                    (r.mean_duration("resample"), r.mean_duration("combine"))
                )
            result.add_row(
                config.label,
                cores,
                sum(s[0] for s in samples) / n_trials,
                sum(s[1] for s in samples) / n_trials,
            )
    result.notes.append(
        "expect: resample plateau ~8 cores (shared) / ~16 (on-node); "
        "combine flat"
    )
    return result
