"""Command-line interface: ``python -m repro.experiments <id> [--quick]``."""

from __future__ import annotations

import argparse
import importlib
import inspect
import sys
import time
from pathlib import Path
from typing import Optional, Sequence

from repro.experiments import ALL_EXPERIMENTS
from repro.sweep import DEFAULT_CACHE_DIR, SweepError, SweepOptions


def run_experiment(
    experiment_id: str,
    quick: bool = False,
    sweep: Optional[SweepOptions] = None,
    config=None,
):
    """Import and run one experiment module; returns its result.

    ``config`` (anything :meth:`repro.Config.from_any` accepts) is
    forwarded to experiment modules whose ``run`` declares a ``config``
    parameter — currently the simulation sweeps (fig13, fig14); the
    characterization/emulation experiments ignore it.
    """
    if experiment_id not in ALL_EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {', '.join(ALL_EXPERIMENTS)}"
        )
    module = importlib.import_module(f"repro.experiments.{experiment_id}")
    kwargs = {"quick": quick, "sweep": sweep}
    if config is not None:
        if "config" not in inspect.signature(module.run).parameters:
            raise ValueError(
                f"experiment {experiment_id!r} does not take a config"
            )
        kwargs["config"] = config
    return module.run(**kwargs)


def add_sweep_arguments(parser: argparse.ArgumentParser) -> None:
    """Worker/retry/cache flags shared with ``repro-sweep``."""
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes per sweep (1 = run in-process; default 1)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=0,
        help="per-point retries after a failure or timeout (default 0)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-point timeout in seconds (parallel runs only)",
    )
    parser.add_argument(
        "--cache-dir",
        default=str(DEFAULT_CACHE_DIR),
        help="content-addressed point cache directory "
        f"(default {DEFAULT_CACHE_DIR})",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every point; neither read nor write the cache",
    )


def sweep_options_from_args(
    args: argparse.Namespace, obs_dir: Optional[Path] = None
) -> SweepOptions:
    """Build the :class:`SweepOptions` encoded by the shared flags."""
    return SweepOptions(
        workers=args.workers,
        retries=args.retries,
        timeout=args.timeout,
        cache_dir=None if args.no_cache else Path(args.cache_dir),
        obs_dir=obs_dir,
    )


def render_point_profiles(obs_dir: Path) -> str:
    """A per-point critical-path summary table for one experiment.

    Reads every ``<point-id>/profile.json`` below ``obs_dir`` (the
    layout the sweep runner's obs namespacing produces) and tabulates
    makespan, dominant resource, and its share — a one-look answer to
    "where does the plateau start?".
    """
    from repro.profile import read_profile

    lines = ["per-point critical-path profiles:"]
    lines.append(f"  {'point':<44} {'makespan':>10} {'dominant':<24} share")
    found = False
    for profile_path in sorted(obs_dir.glob("*/profile.json")):
        found = True
        profile = read_profile(profile_path)
        dominant = profile.dominant_resource
        share = profile.shares.get(dominant, 0.0)
        lines.append(
            f"  {profile_path.parent.name:<44} {profile.makespan:>9.2f}s "
            f"{dominant:<24} {100 * share:>5.1f}%"
        )
    if not found:
        lines.append("  (no <point>/profile.json files found)")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the burst-buffer "
        "workflow paper (Pottier et al., CLUSTER 2020).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(ALL_EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced trial counts and sweep densities (same shapes)",
    )
    parser.add_argument(
        "--output-dir",
        help="also write <id>.json and <id>.csv into this directory",
    )
    parser.add_argument(
        "--obs-dir",
        help="write a provenance manifest per experiment "
        "(<id>.manifest.json) plus per-point telemetry directories "
        "(<id>/<point-id>/) into this directory",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="after an --obs-dir run, summarize each point's critical-path "
        "profile (dominant resource per point, from <point>/profile.json)",
    )
    parser.add_argument(
        "--network-allocator",
        help="bandwidth-sharing discipline for the simulation sweeps "
        "(fig13/fig14); non-default choices become part of each "
        "point's identity and cache key",
    )
    add_sweep_arguments(parser)
    args = parser.parse_args(argv)

    config = None
    if args.network_allocator:
        from repro.config import Config

        config = Config(network_allocator=args.network_allocator)

    requested = list(args.experiments)
    if requested == ["all"]:
        requested = list(ALL_EXPERIMENTS)

    for experiment_id in requested:
        # Harness-side progress timing (how long the *harness* took, not
        # anything simulated), so the wall clock is the right clock.
        start = time.time()  # lint: ignore[SIM001]
        obs_dir = Path(args.obs_dir) / experiment_id if args.obs_dir else None
        sweep = sweep_options_from_args(args, obs_dir=obs_dir)
        try:
            result = run_experiment(
                experiment_id, quick=args.quick, sweep=sweep, config=config
            )
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        except SweepError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        print(result.render())
        if args.output_dir:
            out = Path(args.output_dir)
            out.mkdir(parents=True, exist_ok=True)
            result.to_json(out / f"{experiment_id}.json")
            result.to_csv(out / f"{experiment_id}.csv")
        if args.obs_dir:
            from repro.obs import build_manifest, write_manifest

            manifest = build_manifest(
                extra={"experiment": experiment_id, "quick": bool(args.quick)}
            )
            write_manifest(
                manifest, Path(args.obs_dir) / f"{experiment_id}.manifest.json"
            )
        if args.profile and obs_dir is not None and obs_dir.is_dir():
            print(render_point_profiles(obs_dir))
        elapsed = time.time() - start  # lint: ignore[SIM001]
        print(f"\n[{experiment_id} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
