"""Command-line interface: ``python -m repro.experiments <id> [--quick]``."""

from __future__ import annotations

import argparse
import importlib
import sys
import time
from typing import Optional, Sequence

from repro.experiments import ALL_EXPERIMENTS


def run_experiment(experiment_id: str, quick: bool = False):
    """Import and run one experiment module; returns its result."""
    if experiment_id not in ALL_EXPERIMENTS:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"choose from {', '.join(ALL_EXPERIMENTS)}"
        )
    module = importlib.import_module(f"repro.experiments.{experiment_id}")
    return module.run(quick=quick)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the tables and figures of the burst-buffer "
        "workflow paper (Pottier et al., CLUSTER 2020).",
    )
    parser.add_argument(
        "experiments",
        nargs="+",
        help=f"experiment ids ({', '.join(ALL_EXPERIMENTS)}) or 'all'",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="reduced trial counts and sweep densities (same shapes)",
    )
    parser.add_argument(
        "--output-dir",
        help="also write <id>.json and <id>.csv into this directory",
    )
    parser.add_argument(
        "--obs-dir",
        help="write a provenance manifest per experiment "
        "(<id>.manifest.json) into this directory, so every figure run "
        "carries its simulator version and configuration",
    )
    args = parser.parse_args(argv)

    requested = list(args.experiments)
    if requested == ["all"]:
        requested = list(ALL_EXPERIMENTS)

    for experiment_id in requested:
        # Harness-side progress timing (how long the *harness* took, not
        # anything simulated), so the wall clock is the right clock.
        start = time.time()  # lint: ignore[SIM001]
        try:
            result = run_experiment(experiment_id, quick=args.quick)
        except ValueError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(result.render())
        if args.output_dir:
            from pathlib import Path

            out = Path(args.output_dir)
            out.mkdir(parents=True, exist_ok=True)
            result.to_json(out / f"{experiment_id}.json")
            result.to_csv(out / f"{experiment_id}.csv")
        if args.obs_dir:
            from pathlib import Path

            from repro.obs import build_manifest, write_manifest

            manifest = build_manifest(
                extra={"experiment": experiment_id, "quick": bool(args.quick)}
            )
            write_manifest(
                manifest, Path(args.obs_dir) / f"{experiment_id}.manifest.json"
            )
        elapsed = time.time() - start  # lint: ignore[SIM001]
        print(f"\n[{experiment_id} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
