"""Table I: input parameters used in simulation."""

from __future__ import annotations

from repro.experiments.common import ExperimentResult
from repro.platform.presets import TABLE_I
from repro.platform.units import format_bandwidth


def run(quick: bool = False) -> ExperimentResult:
    """Render the calibrated platform parameters (Table I, verbatim)."""
    result = ExperimentResult(
        experiment_id="table1",
        title="Input parameters used in simulation (paper Table I)",
        columns=(
            "system",
            "core_speed_gflops",
            "bb_network",
            "bb_disk",
            "pfs_network",
            "pfs_disk",
        ),
    )
    for system in ("cori", "summit"):
        p = TABLE_I[system]
        result.add_row(
            system,
            p["core_speed"] / 1e9,
            format_bandwidth(p["bb_network_bandwidth"]),
            format_bandwidth(p["bb_disk_bandwidth"]),
            format_bandwidth(p["pfs_network_bandwidth"]),
            format_bandwidth(p["pfs_disk_bandwidth"]),
        )
    result.notes.append(
        "values quoted from the paper; see repro.platform.presets.TABLE_I"
    )
    return result
