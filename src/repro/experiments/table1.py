"""Table I: input parameters used in simulation."""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult
from repro.platform.presets import TABLE_I
from repro.platform.units import format_bandwidth
from repro.sweep import SweepOptions


def run(quick: bool = False, sweep: Optional[SweepOptions] = None) -> ExperimentResult:
    """Render the calibrated platform parameters (Table I, verbatim).

    Pure table lookup — there is nothing to sweep, so ``sweep`` is
    accepted only for signature uniformity with the figure modules.
    """
    result = ExperimentResult(
        experiment_id="table1",
        title="Input parameters used in simulation (paper Table I)",
        columns=(
            "system",
            "core_speed_gflops",
            "bb_network",
            "bb_disk",
            "pfs_network",
            "pfs_disk",
        ),
    )
    for system in ("cori", "summit"):
        p = TABLE_I[system]
        result.add_row(
            system,
            p["core_speed"] / 1e9,
            format_bandwidth(p["bb_network_bandwidth"]),
            format_bandwidth(p["bb_disk_bandwidth"]),
            format_bandwidth(p["pfs_network_bandwidth"]),
            format_bandwidth(p["pfs_disk_bandwidth"]),
        )
    result.notes.append(
        "values quoted from the paper; see repro.platform.presets.TABLE_I"
    )
    return result
