"""Figure 7: impact of the number of concurrent pipelines.

Paper findings regenerated here (1 core per pipeline, all files in BB):

* Resample and Combine slow down by up to ~3× on Cori as pipelines
  increase — BB bandwidth contention matters even though the achieved
  bandwidth is far below peak;
* on the on-node implementation the degradation is nearly negligible
  for Stage-In and Resample, more visible for Combine;
* stage-in (sequential, one task) is barely affected by pipeline count.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.experiments.common import ExperimentResult, sweep_values
from repro.experiments.configs import (
    ALL_CONFIGS,
    CONFIGS_BY_LABEL,
    N_TRIALS,
    N_TRIALS_QUICK,
    PIPELINE_COUNTS,
)
from repro.scenarios import run_swarp
from repro.sweep import SweepOptions, SweepSpec, point_id


def compute_point(params: dict[str, Any]) -> list[float]:
    """One sweep point: mean task times for (config, pipelines)."""
    config = CONFIGS_BY_LABEL[params["config"]]
    n_trials = params["n_trials"]
    samples = []
    for seed in range(n_trials):
        r = run_swarp(
            input_fraction=1.0,
            intermediates_in_bb=True,
            outputs_in_bb=True,
            n_pipelines=params["pipelines"],
            cores_per_task=1,
            include_stage_in=True,
            emulated=True,
            seed=seed,
            **config.scenario_kwargs(),
        )
        samples.append(
            (
                r.trace.task_record("stage_in").duration,
                r.mean_duration("resample"),
                r.mean_duration("combine"),
            )
        )
    return [
        sum(s[0] for s in samples) / n_trials,
        sum(s[1] for s in samples) / n_trials,
        sum(s[2] for s in samples) / n_trials,
    ]


def _pipelines(quick: bool):
    return (1, 8, 32) if quick else PIPELINE_COUNTS


def sweep_spec(quick: bool = False) -> SweepSpec:
    return SweepSpec.cartesian(
        "fig7",
        "repro.experiments.fig7:compute_point",
        axes={
            "config": [c.label for c in ALL_CONFIGS],
            "pipelines": list(_pipelines(quick)),
        },
        constants={"n_trials": N_TRIALS_QUICK if quick else N_TRIALS},
    )


def run(quick: bool = False, sweep: Optional[SweepOptions] = None) -> ExperimentResult:
    n_trials = N_TRIALS_QUICK if quick else N_TRIALS
    values = sweep_values(sweep_spec(quick), sweep)
    result = ExperimentResult(
        experiment_id="fig7",
        title="SWarp task times vs. concurrent pipelines "
        "(1 core per pipeline, all files in BB)",
        columns=("config", "pipelines", "stage_in_s", "resample_s", "combine_s"),
    )
    for config in ALL_CONFIGS:
        for n in _pipelines(quick):
            pid = point_id(
                {"config": config.label, "pipelines": n, "n_trials": n_trials}
            )
            stage_in_s, resample_s, combine_s = values[pid]
            result.add_row(config.label, n, stage_in_s, resample_s, combine_s)
    result.notes.append(
        "expect: Cori tasks slow ~3x by 32 pipelines; Summit resample "
        "nearly flat, combine degrades more"
    )
    return result
