"""Shared configuration descriptors for the SWarp experiment sweeps."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.storage import BBMode


@dataclass(frozen=True)
class BBConfig:
    """One of the paper's three BB configurations."""

    label: str
    system: str
    bb_mode: Optional[BBMode]

    def scenario_kwargs(self) -> dict[str, Any]:
        kw: dict[str, Any] = {"system": self.system}
        if self.bb_mode is not None:
            kw["bb_mode"] = self.bb_mode
        return kw


#: The three configurations every characterization figure compares.
PRIVATE = BBConfig("private", "cori", BBMode.PRIVATE)
STRIPED = BBConfig("striped", "cori", BBMode.STRIPED)
ON_NODE = BBConfig("on-node", "summit", None)
ALL_CONFIGS = (PRIVATE, STRIPED, ON_NODE)

#: Label → configuration, for sweep points (which carry plain strings so
#: they stay JSON-representable and picklable across worker processes).
CONFIGS_BY_LABEL = {config.label: config for config in ALL_CONFIGS}

#: Sweep points used across figures (paper's experimental grid).
FRACTIONS = (0.0, 0.25, 0.5, 0.75, 1.0)
CORE_COUNTS = (1, 2, 4, 8, 16, 32)
PIPELINE_COUNTS = (1, 2, 4, 8, 16, 32)

#: The paper averages each configuration over 15 executions.
N_TRIALS = 15
N_TRIALS_QUICK = 3
