"""Figure 11: real vs. simulated makespan — concurrent-pipelines sweep.

Same validation as Figure 10, but sweeping the number of concurrent
pipelines per node (1 core each, all files in the BB) — the scenario
where sharing interference matters most.

Paper findings regenerated here:

* larger errors than the fraction sweep (paper: 11.8% / 11.6% / 15.9%
  for private / striped / on-node);
* the simulated makespan follows the measured trend (contention is
  captured by the fair-sharing network model);
* accuracy improves as concurrency grows.

The simple model is calibrated from the 1-core PFS baseline: the paper
derives ``T_c(1)`` from "the observed execution time of a task on some
number of cores", and for a 1-core experiment that observation is the
1-core run.  The residual error is structural: λ_io is quoted from
32-core measurements, so Eq. (4) strips too much "I/O time" from a
1-core observation — exactly the kind of simplification the paper's
Section IV-B discusses.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.emulation.trials import run_trials
from repro.experiments.common import ExperimentResult, calibrate_swarp, sweep_values
from repro.experiments.configs import (
    ALL_CONFIGS,
    CONFIGS_BY_LABEL,
    N_TRIALS,
    N_TRIALS_QUICK,
    PIPELINE_COUNTS,
)
from repro.model import mean_relative_error, trend_agreement
from repro.scenarios import run_swarp
from repro.sweep import SweepOptions, SweepSpec, point_id


def measured_makespan(config, n_pipelines: int, seed: int) -> float:
    r = run_swarp(
        input_fraction=1.0,
        intermediates_in_bb=True,
        outputs_in_bb=True,
        n_pipelines=n_pipelines,
        cores_per_task=1,
        include_stage_in=False,
        emulated=True,
        seed=seed,
        **config.scenario_kwargs(),
    )
    return r.makespan


def simulated_makespan(config, n_pipelines: int) -> float:
    calibration = calibrate_swarp(config.system, cores=1)
    r = run_swarp(
        input_fraction=1.0,
        intermediates_in_bb=True,
        outputs_in_bb=True,
        n_pipelines=n_pipelines,
        cores_per_task=1,
        include_stage_in=False,
        emulated=False,
        resample_flops=calibration.resample_flops,
        combine_flops=calibration.combine_flops,
        **config.scenario_kwargs(),
    )
    return r.makespan


def compute_point(params: dict[str, Any]) -> list[float]:
    """One sweep point: [measured mean, simulated] for (config, pipelines)."""
    config = CONFIGS_BY_LABEL[params["config"]]
    stats = run_trials(
        lambda seed: measured_makespan(config, params["pipelines"], seed),
        n_trials=params["n_trials"],
    )
    return [stats.mean, simulated_makespan(config, params["pipelines"])]


def _pipelines(quick: bool):
    return (1, 8, 32) if quick else PIPELINE_COUNTS


def sweep_spec(quick: bool = False) -> SweepSpec:
    return SweepSpec.cartesian(
        "fig11",
        "repro.experiments.fig11:compute_point",
        axes={
            "config": [c.label for c in ALL_CONFIGS],
            "pipelines": list(_pipelines(quick)),
        },
        constants={"n_trials": N_TRIALS_QUICK if quick else N_TRIALS},
    )


def run(quick: bool = False, sweep: Optional[SweepOptions] = None) -> ExperimentResult:
    n_trials = N_TRIALS_QUICK if quick else N_TRIALS
    values = sweep_values(sweep_spec(quick), sweep)
    result = ExperimentResult(
        experiment_id="fig11",
        title="Real (emulated) vs. simulated makespan vs. concurrent "
        "pipelines (1 core each, all files in BB)",
        columns=("config", "pipelines", "measured_s", "simulated_s", "rel_error"),
    )
    for config in ALL_CONFIGS:
        measured, simulated = [], []
        for n in _pipelines(quick):
            pid = point_id(
                {"config": config.label, "pipelines": n, "n_trials": n_trials}
            )
            meas, sim = values[pid]
            measured.append(meas)
            simulated.append(sim)
            result.add_row(
                config.label,
                n,
                meas,
                sim,
                abs(sim - meas) / meas,
            )
        result.notes.append(
            f"{config.label}: mean error "
            f"{mean_relative_error(measured, simulated):.1%}, trend agreement "
            f"{trend_agreement(measured, simulated):.0%} "
            f"(paper errors: 11.8% / 11.6% / 15.9%)"
        )
    return result
