"""Registry descriptors for the whole-program (semantic) rules.

The SIM100/SIM200-series analyses run in
:mod:`repro.lint.semantic.engine`, not per file — a taint chain is not
computable from one AST.  These descriptor classes exist so the ids
participate in the ordinary rule machinery anyway: ``--list-rules``
documents them, ``--select``/``--ignore`` accept them, and pragma
validation knows they are real.  Their per-file ``check`` is a no-op;
set ``semantic = True`` marks them for the CLI to route to the engine.
"""

from __future__ import annotations

from typing import ClassVar, Iterator

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import Rule, register


class SemanticRule(Rule):
    """Engine-backed rule: per-file check is intentionally empty."""

    semantic: ClassVar[bool] = True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        return iter(())


@register
class TaintReachesSink(SemanticRule):
    id = "SIM100"
    summary = "nondeterministic value reaches a DES-visible sink"
    rationale = (
        "Set iteration order, unsorted directory listings, the wall clock, "
        "and id() all vary between runs; once such a value reaches event "
        "scheduling, trace export, or cache-key construction, traces stop "
        "being bit-identical and parallel sweeps silently diverge from "
        "serial.  Reported with the full call-graph propagation chain."
    )
    severity = Severity.ERROR
    fix_hint = "pin an order at the source (sorted(...) with an explicit key) or launder before the sink"


@register
class UnsortedFsEnumeration(SemanticRule):
    id = "SIM101"
    summary = "unsorted filesystem enumeration iterated directly"
    rationale = (
        "os.listdir/Path.iterdir/glob return entries in filesystem order, "
        "which differs across machines and runs; any loop over them bakes "
        "that order into results."
    )
    severity = Severity.ERROR
    fix_hint = "wrap the enumeration in sorted()"


@register
class IdKeyedOrdering(SemanticRule):
    id = "SIM102"
    summary = "ordering keyed on id()"
    rationale = (
        "id() is a memory address: sorting or tie-breaking on it orders by "
        "allocator accident, not simulation state."
    )
    severity = Severity.ERROR
    fix_hint = "key on a stable attribute (name, sequence number) instead"


@register
class UnorderedReduction(SemanticRule):
    id = "SIM103"
    summary = "order-sensitive reduction over an unordered collection"
    rationale = (
        "Float addition and string joins do not commute; sum()/''.join() "
        "over a set yields hash-order-dependent results."
    )
    severity = Severity.WARNING
    fix_hint = "reduce over sorted(...) input"


@register
class CrossDimensionArithmetic(SemanticRule):
    id = "SIM201"
    summary = "cross-dimension arithmetic or comparison"
    rationale = (
        "Bytes, seconds, bytes/s, flops, cores, and granules are all bare "
        "floats; adding or comparing across dimensions is silently wrong "
        "and indistinguishable from modeling error in validation plots."
    )
    severity = Severity.ERROR
    fix_hint = "convert explicitly (divide by a bandwidth, multiply by a duration) before mixing"


@register
class BareMagnitudeArgument(SemanticRule):
    id = "SIM202"
    summary = "bare magnitude passed to a dimension-typed parameter"
    rationale = (
        "A literal like 3000000 passed to a bytes- or seconds-typed "
        "parameter hides its unit; 3 * units.MB cannot be misread."
    )
    severity = Severity.WARNING
    fix_hint = "build the magnitude from repro.platform.units constants"
