"""DES process-hygiene rules (SIM020–SIM022).

The kernel's contract: ``env.process(...)`` takes a *generator
iterator*; a process blocks only by yielding events; and simulated
timestamps are floats accumulated through ``env.now`` — never compared
with ``==``.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.context import (
    FileContext,
    is_generator,
    iter_function_defs,
    walk_shallow,
)
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import Rule, register

#: Calls that block the host thread — poison inside a DES process,
#: whose only legitimate waiting primitive is ``yield <event>``.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.system",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "socket.socket",
        "socket.create_connection",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.request",
        "open",
        "input",
    }
)


def _local_function_index(
    tree: ast.Module,
) -> dict[str, "list[ast.FunctionDef | ast.AsyncFunctionDef]"]:
    """Bare name -> definitions in this module (any nesting level)."""
    index: dict[str, list] = {}
    for func in iter_function_defs(tree):
        index.setdefault(func.name, []).append(func)
    return index


@register
class ProcessNeedsGenerator(Rule):
    """SIM020: env.process(...) must receive a generator."""

    id = "SIM020"
    summary = "non-generator passed to env.process(...)"
    rationale = (
        "Process(env, gen) drives the argument with send(); a plain "
        "function call has already run to completion by the time "
        "process() sees its return value — the 'process' does nothing, "
        "at time zero."
    )
    severity = Severity.ERROR
    fix_hint = "make the function a generator (yield events), or pass gen() not gen"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        index = _local_function_index(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if not (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "process"
                and node.args
            ):
                continue
            arg = node.args[0]
            diag = self._check_argument(ctx, arg, index)
            if diag is not None:
                yield diag

    def _check_argument(
        self, ctx: FileContext, arg: ast.AST, index: dict
    ) -> Optional[Diagnostic]:
        if isinstance(arg, ast.Lambda):
            return self.diagnostic(
                ctx, arg, "lambda passed to process() can never be a generator"
            )
        if isinstance(arg, ast.GeneratorExp):
            return None
        func_name: Optional[str] = None
        if isinstance(arg, ast.Call):
            func_name = _bare_callee_name(arg.func)
            verdict = "returns a value, not a generator iterator"
        elif isinstance(arg, (ast.Name, ast.Attribute)):
            # A bare reference: only a bug if it names a local function
            # (forgot to call it); generator objects held in variables
            # are indistinguishable statically, so we stay silent.
            func_name = _bare_callee_name(arg)
            verdict = "is a function reference — call it to get the generator"
            defs = index.get(func_name or "", [])
            if not defs:
                return None
            return self.diagnostic(
                ctx, arg, f"process({func_name}) {verdict}"
            )
        else:
            return None
        defs = index.get(func_name or "", [])
        if not defs:
            return None
        generator_flags = {is_generator(d) for d in defs}
        if generator_flags == {False}:
            return self.diagnostic(
                ctx, arg, f"process({func_name}(...)) — {func_name} {verdict}"
            )
        return None


def _bare_callee_name(node: ast.AST) -> Optional[str]:
    """The trailing identifier of a callee (``run``, ``self._run``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


@register
class NoBlockingInProcess(Rule):
    """SIM021: no blocking calls inside process generators."""

    id = "SIM021"
    summary = "blocking call inside a DES process generator"
    rationale = (
        "time.sleep()/file/network I/O inside a process freezes the "
        "whole event loop in real time while simulated time stands "
        "still; waiting is expressed by yielding a Timeout/Event."
    )
    severity = Severity.ERROR
    fix_hint = "yield env.timeout(delay) / an event; hoist real I/O out of the process"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for func in iter_function_defs(ctx.tree):
            if not is_generator(func):
                continue
            for node in walk_shallow(func):
                if not isinstance(node, ast.Call):
                    continue
                name = ctx.imports.resolve(node.func)
                if name in BLOCKING_CALLS:
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"blocking call {name}() inside process generator "
                        f"{func.name!r}",
                    )


def _mentions_now(node: ast.AST) -> bool:
    return any(
        isinstance(sub, ast.Attribute) and sub.attr == "now"
        for sub in ast.walk(node)
    )


@register
class NoExactTimeEquality(Rule):
    """SIM022: no ==/!= on floats derived from env.now."""

    id = "SIM022"
    summary = "==/!= comparison on simulated timestamps"
    rationale = (
        "env.now accumulates float additions (t + size/bandwidth); two "
        "paths to the 'same' instant differ in the last ulp, so exact "
        "equality flips on harmless refactors."
    )
    severity = Severity.ERROR
    fix_hint = "compare with <=/>= or math.isclose(a, b, abs_tol=...)"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for func in iter_function_defs(ctx.tree):
            tainted = {
                target.id
                for node in walk_shallow(func)
                if isinstance(node, ast.Assign) and _mentions_now(node.value)
                for target in node.targets
                if isinstance(target, ast.Name)
            }
            for node in walk_shallow(func):
                if not isinstance(node, ast.Compare):
                    continue
                if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
                    continue
                operands = [node.left, *node.comparators]
                if any(
                    _mentions_now(operand)
                    or (isinstance(operand, ast.Name) and operand.id in tainted)
                    for operand in operands
                ):
                    yield self.diagnostic(
                        ctx,
                        node,
                        "exact ==/!= on a timestamp derived from env.now",
                    )
