"""Unit-consistency rules (SIM010–SIM011).

Table I quotes bandwidths in MB/s (decimal) and file sizes in MiB
(binary); a raw ``800000000`` or a ``MB``-vs-``MiB`` mixup is a silent
~5–10% calibration error that no test catches.  All magnitudes must go
through ``repro.platform.units``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, Optional

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import Rule, register

DECIMAL_UNITS = frozenset({"KB", "MB", "GB", "TB", "MFLOPS", "GFLOPS", "TFLOPS"})
BINARY_UNITS = frozenset({"KiB", "MiB", "GiB", "TiB"})
UNIT_NAMES = DECIMAL_UNITS | BINARY_UNITS

#: Identifiers whose values are byte counts, rates, or speeds.
QUANTITY_NAME = re.compile(
    r"(size|bytes|capacity|bandwidth|bw|speed|flops|rate)", re.IGNORECASE
)

#: Magnitudes below this are considered unit-free scalars (counts,
#: percentages, small factors) rather than raw byte/flop quantities.
THRESHOLD = 1000


def _tail_name(node: ast.AST) -> Optional[str]:
    """Identifier text of an assignment target / keyword / dict key."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _uses_units(node: ast.AST, ctx: FileContext) -> bool:
    """True when the expression references a units constant or parser."""
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Name, ast.Attribute)):
            name = ctx.imports.resolve(sub) or ""
            tail = name.rsplit(".", 1)[-1]
            if tail in UNIT_NAMES:
                return True
            if tail in ("parse_size", "parse_bandwidth"):
                return True
    return False


def _large_literals(node: ast.AST) -> Iterator[ast.Constant]:
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, (int, float))
            and not isinstance(sub.value, bool)
            and abs(sub.value) >= THRESHOLD
        ):
            yield sub


@register
class RawQuantityLiteral(Rule):
    """SIM010: sizes/bandwidths/speeds must use the units vocabulary."""

    id = "SIM010"
    summary = "raw numeric literal used as a size/bandwidth/speed"
    rationale = (
        "A bare 800000000 gives no hint whether it is 800 MB (decimal, "
        "Table I bandwidths) or ~763 MiB (binary, file sizes); every "
        "calibration constant must spell its unit family."
    )
    severity = Severity.WARNING
    fix_hint = (
        "express the value via repro.platform.units (e.g. 800 * MB) "
        "or parse_size(\"800 MB\")"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package_dir("platform/", "storage/", "network/")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            for target_name, value in _quantity_bindings(node):
                if not QUANTITY_NAME.search(target_name):
                    continue
                if _uses_units(value, ctx):
                    continue
                for literal in _large_literals(value):
                    yield self.diagnostic(
                        ctx,
                        literal,
                        f"raw magnitude {literal.value!r} bound to "
                        f"{target_name!r} without a units constant",
                    )


def _quantity_bindings(node: ast.AST) -> Iterator[tuple[str, ast.AST]]:
    """(identifier, value-expression) pairs that bind quantities."""
    if isinstance(node, (ast.Assign, ast.AnnAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        if node.value is not None:
            for target in targets:
                name = _tail_name(target)
                if name:
                    yield name, node.value
    elif isinstance(node, ast.Call):
        for keyword in node.keywords:
            if keyword.arg:
                yield keyword.arg, keyword.value
    elif isinstance(node, ast.Dict):
        for key, value in zip(node.keys, node.values):
            if key is not None:
                name = _tail_name(key)
                if name:
                    yield name, value


def _unit_families(node: ast.AST, ctx: FileContext) -> set[str]:
    families: set[str] = set()
    for sub in ast.walk(node):
        if isinstance(sub, (ast.Name, ast.Attribute)):
            tail = (ctx.imports.resolve(sub) or "").rsplit(".", 1)[-1]
            if tail in DECIMAL_UNITS:
                families.add("decimal")
            elif tail in BINARY_UNITS:
                families.add("binary")
    return families


@register
class MixedUnitFamilies(Rule):
    """SIM011: don't add/subtract decimal and binary unit quantities."""

    id = "SIM011"
    summary = "+/- mixes decimal (MB) and binary (MiB) unit constants"
    rationale = (
        "32 * MiB + 32 * MB is almost always a transcription slip "
        "(4.9% error); sums must stay within one unit family.  Ratios "
        "and products across families are legitimate conversions."
    )
    severity = Severity.ERROR
    fix_hint = "convert one operand so both sides share a unit family"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.BinOp):
                continue
            if not isinstance(node.op, (ast.Add, ast.Sub)):
                continue
            left = _unit_families(node.left, ctx)
            right = _unit_families(node.right, ctx)
            if not left or not right:
                continue
            if left != right or len(left) > 1 or len(right) > 1:
                yield self.diagnostic(
                    ctx,
                    node,
                    "addition/subtraction mixes decimal and binary unit constants",
                )
