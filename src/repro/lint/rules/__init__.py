"""Rule plugin architecture.

A rule is a class with a unique ``id`` (``SIM001``), a one-line
``summary``, a ``rationale`` tying it to a concrete failure mode of the
simulator, and a ``check(ctx)`` generator yielding
:class:`~repro.lint.diagnostics.Diagnostic`\\ s.  Registering is one
decorator::

    @register
    class NoWallClock(Rule):
        id = "SIM001"
        ...

Rule families (see ``docs/LINT.md`` for the full catalogue):

* ``SIM0xx`` — determinism (wall clock, global RNG, unordered iteration)
* ``SIM01x`` — unit consistency (raw magnitudes, decimal/binary mixing)
* ``SIM02x`` — DES process hygiene (generators, blocking calls, ``now``)
* ``SIM03x`` — API hygiene (mutable defaults)
* ``SIM04x`` — observability (bare ``print()`` in library code)
* ``SIM05x`` — parallelism (worker processes outside ``repro.sweep``)
* ``SIM06x`` — performance API (direct fair-share solver calls outside
  ``repro.network``/``repro.perf``; per-event container allocation in
  ``# lint: hot-path`` modules)
* ``SIM07x`` — profiling hooks (wait causes must come from the closed
  ``WaitCause`` enum)
* ``SIM08x`` — structured logging (no ad-hoc logging/stderr output in
  simulator subsystems; diagnostics go through ``repro.obs.log``)
* ``SIM1xx`` — whole-program determinism taint (engine-backed; see
  :mod:`repro.lint.semantic`)
* ``SIM2xx`` — whole-program unit/dimension dataflow (engine-backed)
"""

from __future__ import annotations

from typing import ClassVar, Iterator, Type

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity


class Rule:
    """Base class for lint rules."""

    id: ClassVar[str] = ""
    summary: ClassVar[str] = ""
    rationale: ClassVar[str] = ""
    severity: ClassVar[Severity] = Severity.ERROR
    fix_hint: ClassVar[str] = ""
    #: True for whole-program rules run by repro.lint.semantic.engine;
    #: their per-file ``check`` is a no-op (see rules/semantic_meta.py).
    semantic: ClassVar[bool] = False

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (path scoping)."""
        return True

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        raise NotImplementedError

    def diagnostic(
        self, ctx: FileContext, node, message: str, fix_hint: str = ""
    ) -> Diagnostic:
        """Build a diagnostic anchored at an AST node."""
        return Diagnostic(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule_id=self.id,
            message=message,
            severity=self.severity,
            fix_hint=fix_hint or self.fix_hint,
        )


_REGISTRY: dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.id:
        raise ValueError(f"rule {cls.__name__} has no id")
    if cls.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls
    return cls


def all_rules() -> dict[str, Type[Rule]]:
    """All registered rules, importing the built-in rule modules."""
    # Import for side effects (each module registers its rules).
    from repro.lint.rules import (  # noqa: F401
        api,
        des_hygiene,
        determinism,
        observability,
        parallelism,
        perf,
        profiling,
        semantic_meta,
        units,
    )

    return dict(sorted(_REGISTRY.items()))
