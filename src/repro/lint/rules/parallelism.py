"""Parallelism rules (SIM05x).

Host-process parallelism is how sweep results stop being reproducible:
an ad-hoc ``ProcessPoolExecutor`` orders results by completion, skips
the content-addressed cache, and bypasses the per-point telemetry and
retry bookkeeping.  ``repro.sweep`` is the one sanctioned owner of
worker processes — everything else goes through it.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import Rule, register

#: Call targets that spin up worker processes directly.
PROCESS_POOL_CALLS = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "multiprocessing.Pool",
        "multiprocessing.Process",
        "multiprocessing.pool.Pool",
    }
)


@register
class NoNakedProcessPool(Rule):
    """SIM050: process-based parallelism outside ``repro.sweep``."""

    id = "SIM050"
    summary = "process pool outside repro.sweep"
    rationale = (
        "Ad-hoc worker pools return results in completion order, bypass "
        "the sweep cache/telemetry/retry machinery, and make runs "
        "non-reproducible; fan work out through repro.sweep.run_sweep."
    )
    severity = Severity.ERROR
    fix_hint = (
        "express the fan-out as a SweepSpec and call repro.sweep.run_sweep"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # repro.sweep is the sanctioned owner of worker processes.
        return ctx.outside_package_dir("sweep/")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "multiprocessing":
                        yield self.diagnostic(
                            ctx,
                            node,
                            f"import of {alias.name} outside repro.sweep",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and not node.level and (
                    node.module.split(".")[0] == "multiprocessing"
                ):
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"import from {node.module} outside repro.sweep",
                    )
            elif isinstance(node, ast.Call):
                name = ctx.imports.resolve(node.func)
                if name in PROCESS_POOL_CALLS:
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"{name}() spawns worker processes outside repro.sweep",
                    )
