"""Determinism rules (SIM001–SIM003).

The simulator's validation story (Figures 10–14) assumes that the same
scenario + seed always yields the same trace.  Wall-clock reads, the
process-global RNG, and hash-order iteration all break that silently:
no test fails, the numbers are just no longer reproducible.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import Rule, register

#: Wall-clock entry points (resolved through import aliases).
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: ``random`` module attributes that construct *explicit* generators —
#: these are fine; everything else on the module is the shared global RNG.
RANDOM_CONSTRUCTORS = frozenset({"random.Random", "random.SystemRandom"})

#: ``numpy.random`` attributes that construct explicit generators/seeds.
NUMPY_RANDOM_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


@register
class NoWallClock(Rule):
    """SIM001: no wall-clock reads in simulation code."""

    id = "SIM001"
    summary = "wall-clock call in simulation code"
    rationale = (
        "Simulated time is env.now; reading the host clock couples results "
        "to machine speed and invalidates trace reproducibility."
    )
    severity = Severity.ERROR
    fix_hint = "use env.now (simulated seconds); for harness progress output, suppress with a justified pragma"

    def applies_to(self, ctx: FileContext) -> bool:
        # The emulation package stands in for the *real machine*; it is
        # still a simulation, but its trial harness may legitimately
        # time itself.
        return ctx.outside_package_dir("emulation/")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.imports.resolve(node.func)
            if name in WALL_CLOCK_CALLS:
                yield self.diagnostic(
                    ctx, node, f"wall-clock call {name}() in simulation code"
                )


@register
class NoGlobalRandom(Rule):
    """SIM002: no process-global RNG; thread a seeded generator."""

    id = "SIM002"
    summary = "call on the process-global RNG"
    rationale = (
        "random.random()/np.random.rand() share hidden global state: any "
        "import-order or call-order change silently reshuffles every "
        "'random' draw in the run."
    )
    severity = Severity.ERROR
    fix_hint = (
        "construct random.Random(seed) or numpy.random.default_rng(seed) "
        "and pass it down as an explicit rng parameter"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.imports.resolve(node.func)
            if name is None:
                continue
            if name.startswith("random.") and name not in RANDOM_CONSTRUCTORS:
                yield self.diagnostic(
                    ctx, node, f"{name}() uses the process-global RNG"
                )
            elif name.startswith("numpy.random."):
                tail = name.removeprefix("numpy.random.")
                if tail not in NUMPY_RANDOM_CONSTRUCTORS:
                    yield self.diagnostic(
                        ctx, node, f"{name}() uses numpy's global RNG state"
                    )


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_dict_view(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("values", "keys")
        and not node.args
        and not node.keywords
    )


@register
class NoUnorderedIteration(Rule):
    """SIM003: no hash-ordered iteration feeding scheduling decisions."""

    id = "SIM003"
    summary = "iteration order depends on set hashing / insertion order"
    rationale = (
        "In wms/ and des/, loop order decides event tie-breaks (which "
        "ready task starts first).  Sets of strings iterate in "
        "PYTHONHASHSEED-dependent order, and min/max over dict views "
        "break ties by insertion position."
    )
    severity = Severity.WARNING
    fix_hint = "iterate sorted(...) with an explicit key, or justify with a pragma"

    def applies_to(self, ctx: FileContext) -> bool:
        return ctx.in_package_dir("wms/", "des/")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                if _is_set_expr(node.iter):
                    yield self.diagnostic(
                        ctx, node.iter, "for-loop iterates a bare set"
                    )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for gen in node.generators:
                    if _is_set_expr(gen.iter):
                        yield self.diagnostic(
                            ctx, gen.iter, "comprehension iterates a bare set"
                        )
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in ("min", "max") and node.args:
                    arg = node.args[0]
                    if _is_set_expr(arg) or _is_dict_view(arg):
                        yield self.diagnostic(
                            ctx,
                            arg,
                            f"{node.func.id}() over an unordered collection "
                            "breaks ties by hash/insertion order",
                        )
