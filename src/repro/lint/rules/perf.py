"""Performance-API rules (SIM06x).

The fair-share solver has exactly two sanctioned call sites: the flow
network (which owns rate recomputation) and the incremental engine in
``repro.perf`` (which wraps the solver per component).  Anything else
calling :func:`~repro.network.fairshare.max_min_fair_rates` directly is
a layering leak — it hard-codes one sharing discipline, bypasses the
allocator registry (so configs/CLIs can't A/B it), and silently skips
the incremental fast path and its solver-call telemetry.

SIM061 guards the modules those layers keep fast: a file carrying a
``# lint: hot-path`` marker declares that its loops run once per
simulation event, and the rule flags container allocations
(list/dict/set displays, comprehensions, and constructor calls) inside
``for``/``while`` bodies there.  Amortized allocations (rebuilds on
topology change, error paths) stay legal via a line pragma.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import Rule, register

#: The guarded solver entry point (resolved import suffixes).
_SOLVER = "max_min_fair_rates"
_SOLVER_PATHS = frozenset(
    {
        _SOLVER,
        f"repro.network.{_SOLVER}",
        f"repro.network.fairshare.{_SOLVER}",
    }
)


@register
class NoDirectFairShareCalls(Rule):
    """SIM060: direct ``max_min_fair_rates`` use outside the network/perf
    layers."""

    id = "SIM060"
    summary = "direct fair-share solver call outside repro.network/repro.perf"
    rationale = (
        "Calling max_min_fair_rates directly hard-codes one bandwidth-"
        "sharing discipline: the run can no longer be switched to "
        "equal-split or the incremental solver from a SimulatorConfig, "
        "a sweep point, or --network-allocator, and the call is "
        "invisible to the network.solver_calls telemetry.  Rates belong "
        "to FlowNetwork; solver choice belongs to the allocator "
        "registry."
    )
    severity = Severity.ERROR
    fix_hint = (
        "resolve a named allocator via repro.network.resolve_allocator "
        "(or pass allocator=... to FlowNetwork/Platform) instead of "
        "calling the solver directly"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # The flow network and the incremental engine are the two
        # sanctioned owners of direct solver calls.
        return ctx.outside_package_dir("network/", "perf/")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module and not node.level and (
                    node.module in ("repro.network", "repro.network.fairshare")
                ):
                    for alias in node.names:
                        if alias.name == _SOLVER:
                            yield self.diagnostic(
                                ctx,
                                node,
                                f"import of {_SOLVER} outside "
                                "repro.network/repro.perf",
                            )
            elif isinstance(node, ast.Call):
                name = ctx.imports.resolve(node.func)
                if name in _SOLVER_PATHS or (
                    name is not None and name.endswith(f".{_SOLVER}")
                ):
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"direct {_SOLVER}() call outside "
                        "repro.network/repro.perf",
                    )


#: Marker comment opting a module into SIM061 (same spellings as the
#: suppression pragmas: ``lint:`` or ``repro-lint:``).
_HOT_PATH_RE = re.compile(r"#\s*(?:repro-)?lint:\s*hot-path\b")

#: Container displays/comprehensions that allocate on evaluation.
_ALLOC_NODES = (
    ast.List,
    ast.Dict,
    ast.Set,
    ast.ListComp,
    ast.DictComp,
    ast.SetComp,
)

#: Builtin constructors that allocate a fresh container per call.
_ALLOC_CALLS = frozenset({"list", "dict", "set"})

#: Scopes whose bodies do not run per iteration of an enclosing loop.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)


@register
class NoHotPathAllocation(Rule):
    """SIM061: per-event container allocation in a hot-path module."""

    id = "SIM061"
    summary = "container allocated inside a loop in a hot-path module"
    rationale = (
        "Modules marked `# lint: hot-path` promise their loops run once "
        "per simulation event; a list/dict/set built inside such a loop "
        "turns every event into an allocation plus eventual GC work, "
        "which is exactly the per-event cost the array-backed event "
        "queue and slot-based flow records were introduced to remove.  "
        "Hoist the container out of the loop, reuse a preallocated "
        "buffer, or store into parallel arrays."
    )
    severity = Severity.ERROR
    fix_hint = (
        "hoist the allocation out of the loop (preallocate and reuse), "
        "or suppress a proven-amortized site with "
        "`# lint: ignore[SIM061] - why`"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # Opt-in only: the marker is a performance contract a module
        # declares about itself, not a property of its directory.
        return _HOT_PATH_RE.search(ctx.source) is not None

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        yield from self._walk(ctx, ctx.tree, in_loop=False)

    def _walk(
        self, ctx: FileContext, node: ast.AST, in_loop: bool
    ) -> Iterator[Diagnostic]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, _SCOPE_NODES):
                # A nested def/class body executes in its own call
                # context, not per iteration of the enclosing loop.
                yield from self._walk(ctx, child, in_loop=False)
                continue
            if in_loop:
                if isinstance(child, _ALLOC_NODES):
                    yield self.diagnostic(
                        ctx,
                        child,
                        f"{_describe(child)} allocated inside a loop in a "
                        "hot-path module",
                    )
                elif (
                    isinstance(child, ast.Call)
                    and isinstance(child.func, ast.Name)
                    and child.func.id in _ALLOC_CALLS
                    and ctx.imports.resolve(child.func) == child.func.id
                ):
                    yield self.diagnostic(
                        ctx,
                        child,
                        f"{child.func.id}() allocated inside a loop in a "
                        "hot-path module",
                    )
            yield from self._walk(
                ctx, child, in_loop or isinstance(child, (ast.For, ast.While))
            )


def _describe(node: ast.AST) -> str:
    return {
        ast.List: "list display",
        ast.Dict: "dict display",
        ast.Set: "set display",
        ast.ListComp: "list comprehension",
        ast.DictComp: "dict comprehension",
        ast.SetComp: "set comprehension",
    }[type(node)]
