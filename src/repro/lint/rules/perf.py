"""Performance-API rules (SIM06x).

The fair-share solver has exactly two sanctioned call sites: the flow
network (which owns rate recomputation) and the incremental engine in
``repro.perf`` (which wraps the solver per component).  Anything else
calling :func:`~repro.network.fairshare.max_min_fair_rates` directly is
a layering leak — it hard-codes one sharing discipline, bypasses the
allocator registry (so configs/CLIs can't A/B it), and silently skips
the incremental fast path and its solver-call telemetry.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import Rule, register

#: The guarded solver entry point (resolved import suffixes).
_SOLVER = "max_min_fair_rates"
_SOLVER_PATHS = frozenset(
    {
        _SOLVER,
        f"repro.network.{_SOLVER}",
        f"repro.network.fairshare.{_SOLVER}",
    }
)


@register
class NoDirectFairShareCalls(Rule):
    """SIM060: direct ``max_min_fair_rates`` use outside the network/perf
    layers."""

    id = "SIM060"
    summary = "direct fair-share solver call outside repro.network/repro.perf"
    rationale = (
        "Calling max_min_fair_rates directly hard-codes one bandwidth-"
        "sharing discipline: the run can no longer be switched to "
        "equal-split or the incremental solver from a SimulatorConfig, "
        "a sweep point, or --network-allocator, and the call is "
        "invisible to the network.solver_calls telemetry.  Rates belong "
        "to FlowNetwork; solver choice belongs to the allocator "
        "registry."
    )
    severity = Severity.ERROR
    fix_hint = (
        "resolve a named allocator via repro.network.resolve_allocator "
        "(or pass allocator=... to FlowNetwork/Platform) instead of "
        "calling the solver directly"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # The flow network and the incremental engine are the two
        # sanctioned owners of direct solver calls.
        return ctx.outside_package_dir("network/", "perf/")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                if node.module and not node.level and (
                    node.module in ("repro.network", "repro.network.fairshare")
                ):
                    for alias in node.names:
                        if alias.name == _SOLVER:
                            yield self.diagnostic(
                                ctx,
                                node,
                                f"import of {_SOLVER} outside "
                                "repro.network/repro.perf",
                            )
            elif isinstance(node, ast.Call):
                name = ctx.imports.resolve(node.func)
                if name in _SOLVER_PATHS or (
                    name is not None and name.endswith(f".{_SOLVER}")
                ):
                    yield self.diagnostic(
                        ctx,
                        node,
                        f"direct {_SOLVER}() call outside "
                        "repro.network/repro.perf",
                    )
