"""Profiling-hook rules (SIM07x).

The wait-cause taxonomy (:class:`repro.obs.waits.WaitCause`) is a
*closed* enum: the critical-path profiler compares wait decompositions
across runs, sweeps, and machines, which only works when every hook
site draws from the same fixed vocabulary.  An ad-hoc string at one
call site ("cpu", "core_queue", ...) would silently fracture that
vocabulary — profiles would still build, but diffs would report
phantom resource shifts.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import Rule, register

#: The observer hooks whose ``cause`` argument is enum-guarded.
_HOOKS = frozenset({"on_task_blocked", "on_task_unblocked"})

#: Fully-qualified names of the closed enum.
_WAITCAUSE_PATHS = frozenset(
    {
        "WaitCause",
        "repro.obs.WaitCause",
        "repro.obs.waits.WaitCause",
    }
)


def _cause_argument(call: ast.Call) -> Optional[ast.AST]:
    """The ``cause`` argument of a wait-hook call, if present."""
    for keyword in call.keywords:
        if keyword.arg == "cause":
            return keyword.value
    if len(call.args) >= 2:
        return call.args[1]
    return None


@register
class WaitCauseClosedEnum(Rule):
    """SIM070: wait-cause hooks must pass a ``WaitCause`` member."""

    id = "SIM070"
    summary = "wait-cause hook called without a WaitCause enum member"
    rationale = (
        "on_task_blocked/on_task_unblocked feed the critical-path "
        "profiler's wait decomposition, which is compared across runs "
        "and sweep points.  An ad-hoc cause string fractures the closed "
        "vocabulary: profiles still build, but diffs report phantom "
        "wait categories and the per-cause counters stop aggregating."
    )
    severity = Severity.ERROR
    fix_hint = (
        "pass a member of the closed enum, e.g. "
        "obs.on_task_blocked(task, WaitCause.CORES) "
        "(from repro.obs import WaitCause)"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        # The observer itself (hook definitions plus their defensive
        # WaitCause(...) coercions) is the one sanctioned exception.
        return ctx.outside_package_dir("obs/")

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in _HOOKS):
                continue
            cause = _cause_argument(node)
            if cause is None:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"{func.attr}() call passes no wait cause",
                )
                continue
            if not self._is_waitcause_member(ctx, cause):
                yield self.diagnostic(
                    ctx,
                    node,
                    f"{func.attr}() cause must be a WaitCause member, "
                    f"not {ast.unparse(cause)!r}",
                )

    @staticmethod
    def _is_waitcause_member(ctx: FileContext, node: ast.AST) -> bool:
        if not isinstance(node, ast.Attribute):
            return False
        base = ctx.imports.resolve(node.value)
        return base is not None and (
            base in _WAITCAUSE_PATHS or base.endswith(".WaitCause")
        )


#: Calls that constitute side effects/telemetry inside a policy.
_IMPURE_CALLS = frozenset(
    {"on_task_blocked", "on_task_unblocked", "on_bb_lease", "log_event"}
)

#: Base-class names marking a queue-policy implementation.
_POLICY_BASES = frozenset(
    {"QueuePolicy", "FifoPolicy", "EasyBackfillPolicy", "ConservativeBackfillPolicy"}
)


@register
class QueuePolicySelectPurity(Rule):
    """SIM071: queue-policy ``select()`` must stay pure — no obs hooks."""

    id = "SIM071"
    summary = "queue-policy select() calls an observer/telemetry hook"
    rationale = (
        "A QueuePolicy's select() answers one question — which queued "
        "requests to grant now — and the allocators call it from every "
        "grant path, including speculative re-planning.  A hook call "
        "inside select() (on_task_blocked, on_bb_lease, log_event, ...) "
        "double-counts waits and leases: the allocator sites already "
        "report every wait via the closed WaitCause enum, so a policy "
        "that also reports corrupts the profiler's ledger and breaks "
        "the LeaseBalanceMonitor's grant/release accounting."
    )
    severity = Severity.ERROR
    fix_hint = (
        "keep select() a pure function of (queue, free, now, running); "
        "telemetry belongs to the allocator grant/release sites, which "
        "report waits through WaitCause members"
    )

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._is_policy_class(node):
                continue
            for item in node.body:
                if (
                    isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and item.name == "select"
                ):
                    yield from self._check_select(ctx, item)

    @staticmethod
    def _is_policy_class(node: ast.ClassDef) -> bool:
        for base in node.bases:
            name = base.attr if isinstance(base, ast.Attribute) else (
                base.id if isinstance(base, ast.Name) else None
            )
            if name in _POLICY_BASES:
                return True
        return False

    def _check_select(
        self, ctx: FileContext, func: "ast.FunctionDef | ast.AsyncFunctionDef"
    ) -> Iterator[Diagnostic]:
        for node in ast.walk(func):
            if not isinstance(node, ast.Call):
                continue
            callee = node.func
            name = callee.attr if isinstance(callee, ast.Attribute) else (
                callee.id if isinstance(callee, ast.Name) else None
            )
            if name in _IMPURE_CALLS:
                yield self.diagnostic(
                    ctx,
                    node,
                    f"select() calls {name}(); policies must not emit "
                    "telemetry — allocator sites own wait/lease reporting",
                )
