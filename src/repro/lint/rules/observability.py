"""Observability rules (SIM040)."""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import Rule, register

#: Module basenames whose whole purpose is terminal output.
_CLI_BASENAMES = frozenset({"cli.py", "__main__.py"})


@register
class NoBarePrint(Rule):
    """SIM040: no bare ``print()`` outside CLI entry points."""

    id = "SIM040"
    summary = "bare print() in library code"
    rationale = (
        "A print() buried in simulation code writes to stdout on every "
        "run — it corrupts machine-read output (JSON/CSV pipelines), "
        "cannot be silenced per-run, and hides from the observability "
        "layer.  Telemetry belongs in repro.obs; user-facing text "
        "belongs in CLI modules."
    )
    severity = Severity.ERROR
    fix_hint = (
        "record through repro.obs (or return the value) and print only "
        "in cli.py/__main__.py or a main() entry point"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return PurePath(ctx.path).name not in _CLI_BASENAMES

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        yield from self._scan(ctx, ctx.tree)

    def _scan(self, ctx: FileContext, node: ast.AST) -> Iterator[Diagnostic]:
        for child in ast.iter_child_nodes(node):
            if (
                isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child.name == "main"
            ):
                # A main() function *is* a CLI entry point, wherever it
                # lives; its output is the interface.
                continue
            if (
                isinstance(child, ast.Call)
                and ctx.imports.resolve(child.func) == "print"
            ):
                yield self.diagnostic(ctx, child, "bare print() in library code")
            yield from self._scan(ctx, child)
