"""Observability rules (SIM040, SIM080)."""

from __future__ import annotations

import ast
from pathlib import PurePath
from typing import Iterator

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import Rule, register

#: Module basenames whose whole purpose is terminal output.
_CLI_BASENAMES = frozenset({"cli.py", "__main__.py"})


@register
class NoBarePrint(Rule):
    """SIM040: no bare ``print()`` outside CLI entry points."""

    id = "SIM040"
    summary = "bare print() in library code"
    rationale = (
        "A print() buried in simulation code writes to stdout on every "
        "run — it corrupts machine-read output (JSON/CSV pipelines), "
        "cannot be silenced per-run, and hides from the observability "
        "layer.  Telemetry belongs in repro.obs; user-facing text "
        "belongs in CLI modules."
    )
    severity = Severity.ERROR
    fix_hint = (
        "record through repro.obs (or return the value) and print only "
        "in cli.py/__main__.py or a main() entry point"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        return PurePath(ctx.path).name not in _CLI_BASENAMES

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        yield from self._scan(ctx, ctx.tree)

    def _scan(self, ctx: FileContext, node: ast.AST) -> Iterator[Diagnostic]:
        for child in ast.iter_child_nodes(node):
            if (
                isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child.name == "main"
            ):
                # A main() function *is* a CLI entry point, wherever it
                # lives; its output is the interface.
                continue
            if (
                isinstance(child, ast.Call)
                and ctx.imports.resolve(child.func) == "print"
            ):
                yield self.diagnostic(ctx, child, "bare print() in library code")
            yield from self._scan(ctx, child)


#: The simulator subsystems whose only sanctioned output channel is the
#: structured event log (``Observer.log_event`` → ``repro.obs.log``).
_SUBSYSTEM_DIRS = (
    "des/", "network/", "storage/", "compute/", "wms/", "sweep/"
)

#: Stream attributes a subsystem must not write to directly.
_STREAM_ATTRS = frozenset({"sys.stdout", "sys.stderr"})


@register
class NoAdHocSubsystemOutput(Rule):
    """SIM080: no direct terminal/logging output in simulator subsystems.

    SIM040 bans bare ``print()`` everywhere in library code; inside the
    simulator subsystems the bar is higher — *any* ad-hoc output channel
    (the :mod:`logging` module, direct ``sys.stdout``/``sys.stderr``
    writes, ``warnings.warn``) bypasses the structured event log, so a
    tailing tool and the post-run ``events.ndjson`` never see it.
    """

    id = "SIM080"
    summary = "ad-hoc output channel in a simulator subsystem"
    rationale = (
        "Subsystem diagnostics must flow through the structured event "
        "log (obs.log_event -> repro.obs.log/1): ad-hoc logging/stderr "
        "writes are invisible to the live bus, the invariant monitors' "
        "event chains, and the exported events.ndjson, and their wall-"
        "clock timestamps break byte-identical post-run exports."
    )
    severity = Severity.ERROR
    fix_hint = (
        "emit a structured event via the observer "
        "(obs.log_event(component, event, **fields)) instead"
    )

    def applies_to(self, ctx: FileContext) -> bool:
        if PurePath(ctx.path).name in _CLI_BASENAMES:
            return False
        return ctx.in_package_dir(*_SUBSYSTEM_DIRS)

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        yield from self._scan(ctx, ctx.tree)

    def _scan(self, ctx: FileContext, node: ast.AST) -> Iterator[Diagnostic]:
        for child in ast.iter_child_nodes(node):
            if (
                isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
                and child.name == "main"
            ):
                continue  # a main() entry point owns its terminal
            if isinstance(child, ast.Import):
                for alias in child.names:
                    if alias.name.split(".")[0] == "logging":
                        yield self.diagnostic(
                            ctx, child,
                            "logging module imported in a simulator subsystem",
                        )
            elif isinstance(child, ast.ImportFrom):
                if (
                    child.module
                    and not child.level
                    and child.module.split(".")[0] == "logging"
                ):
                    yield self.diagnostic(
                        ctx, child,
                        "logging module imported in a simulator subsystem",
                    )
            elif isinstance(child, ast.Call):
                name = ctx.imports.resolve(child.func) or ""
                if name == "warnings.warn":
                    yield self.diagnostic(
                        ctx, child,
                        "warnings.warn() in a simulator subsystem",
                    )
                elif name.split(".")[0] == "logging":
                    yield self.diagnostic(
                        ctx, child,
                        f"{name}() call in a simulator subsystem",
                    )
                elif isinstance(child.func, ast.Attribute):
                    owner = ctx.imports.resolve(child.func.value)
                    if owner in _STREAM_ATTRS:
                        yield self.diagnostic(
                            ctx, child,
                            f"direct {owner} write in a simulator subsystem",
                        )
            elif isinstance(child, ast.keyword) and child.arg == "file":
                target = ctx.imports.resolve(child.value)
                if target in _STREAM_ATTRS:
                    yield self.diagnostic(
                        ctx, child.value,
                        f"output redirected to {target} in a simulator "
                        "subsystem",
                    )
            yield from self._scan(ctx, child)
