"""API-hygiene rules (SIM030)."""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.context import FileContext, iter_function_defs
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.rules import Rule, register

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "collections.defaultdict", "collections.OrderedDict"}
)


@register
class NoMutableDefaults(Rule):
    """SIM030: no mutable default arguments."""

    id = "SIM030"
    summary = "mutable default argument"
    rationale = (
        "A default list/dict/set is created once at def-time and shared "
        "across calls — state leaks between independent simulations, "
        "the classic cross-run contamination bug."
    )
    severity = Severity.ERROR
    fix_hint = "default to None and create the container inside the function"

    def check(self, ctx: FileContext) -> Iterator[Diagnostic]:
        for func in iter_function_defs(ctx.tree):
            defaults = list(func.args.defaults) + [
                d for d in func.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default, ctx):
                    yield self.diagnostic(
                        ctx,
                        default,
                        f"mutable default argument in {func.name}()",
                    )

    def _is_mutable(self, node: ast.AST, ctx: FileContext) -> bool:
        if isinstance(node, _MUTABLE_LITERALS):
            return True
        if isinstance(node, ast.Call):
            name = ctx.imports.resolve(node.func)
            return name in _MUTABLE_CONSTRUCTORS
        return False
