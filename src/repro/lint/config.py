"""Configuration: ``[tool.repro-lint]`` in pyproject.toml.

Recognized keys (all optional)::

    [tool.repro-lint]
    paths = ["src"]            # default lint targets when CLI gives none
    select = ["SIM001"]        # run only these rules
    ignore = ["SIM010"]        # never run these rules
    baseline = ".repro-lint-baseline"   # grandfathered-findings file
    semantic = false           # run whole-program analyses by default
    cache_dir = ".repro-lint-cache"     # semantic incremental cache

CLI flags override the file; ``--select`` and ``--ignore`` replace the
corresponding config lists entirely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

try:
    import tomllib
except ImportError:  # Python 3.10: stdlib tomllib is 3.11+; config is
    tomllib = None   # optional, so fall back to built-in defaults.


@dataclass
class LintConfig:
    paths: list[str] = field(default_factory=lambda: ["src"])
    select: Optional[list[str]] = None
    ignore: Optional[list[str]] = None
    baseline: Optional[str] = None
    semantic: bool = False
    cache_dir: Optional[str] = None

    @classmethod
    def load(cls, start: "str | Path | None" = None) -> "LintConfig":
        """Find and parse the nearest pyproject.toml at/above ``start``."""
        pyproject = find_pyproject(Path(start) if start else Path.cwd())
        if pyproject is None or tomllib is None:
            return cls()
        try:
            doc = tomllib.loads(pyproject.read_text(encoding="utf-8"))
        except (OSError, tomllib.TOMLDecodeError):
            return cls()
        table = doc.get("tool", {}).get("repro-lint", {})
        config = cls()
        if isinstance(table.get("paths"), list):
            config.paths = [str(p) for p in table["paths"]]
        if isinstance(table.get("select"), list):
            config.select = [str(r) for r in table["select"]]
        if isinstance(table.get("ignore"), list):
            config.ignore = [str(r) for r in table["ignore"]]
        if isinstance(table.get("baseline"), str):
            config.baseline = table["baseline"]
        if isinstance(table.get("semantic"), bool):
            config.semantic = table["semantic"]
        if isinstance(table.get("cache_dir"), str):
            config.cache_dir = table["cache_dir"]
        return config


def find_pyproject(start: Path) -> Optional[Path]:
    for directory in [start, *start.parents]:
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None
