"""repro.lint — simulation-correctness static analysis.

An AST-based linter encoding the simulator's invariants as rules:

* **determinism** — no wall clock, no global RNG, no hash-ordered
  iteration in scheduling paths (SIM001–SIM003);
* **unit consistency** — magnitudes go through
  :mod:`repro.platform.units`, no decimal/binary mixing (SIM010–SIM011);
* **DES hygiene** — ``env.process`` takes generators, processes never
  block, no exact equality on simulated time (SIM020–SIM022);
* **API hygiene** — no mutable defaults (SIM030).

Usage::

    python -m repro.lint src/              # lint a tree
    repro-lint --select SIM001 --format json src/

Suppressions: ``# lint: ignore[SIM001] - why`` (line) and
``# lint: ignore-file[SIM010] - why`` (file).  Full catalogue with
rationale and examples: ``docs/LINT.md``.
"""

from repro.lint.baseline import Baseline, write_baseline
from repro.lint.checker import Checker, PARSE_ERROR_ID
from repro.lint.config import LintConfig
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.pragmas import UNKNOWN_PRAGMA_RULE_ID
from repro.lint.rules import Rule, all_rules, register
from repro.lint.semantic import SemanticAnalyzer, SemanticResult

__all__ = [
    "Baseline",
    "Checker",
    "Diagnostic",
    "LintConfig",
    "PARSE_ERROR_ID",
    "Rule",
    "SemanticAnalyzer",
    "SemanticResult",
    "Severity",
    "UNKNOWN_PRAGMA_RULE_ID",
    "all_rules",
    "register",
    "write_baseline",
]
