"""The checker: walks files, runs rules, filters pragmas."""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Iterator, Optional, Sequence

from repro.lint.context import FileContext
from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.pragmas import UNKNOWN_PRAGMA_RULE_ID, Pragmas
from repro.lint.rules import Rule, all_rules

#: Pseudo-rule for unparseable files (cannot be suppressed per-line).
PARSE_ERROR_ID = "SIM999"

#: Rule ids that exist outside the registry proper.
_PSEUDO_RULE_IDS = frozenset({PARSE_ERROR_ID, UNKNOWN_PRAGMA_RULE_ID})


class Checker:
    """Runs a selected set of rules over files or directory trees."""

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
    ) -> None:
        registry = all_rules()
        selected = set(select) if select else set(registry)
        selected -= set(ignore or ())
        unknown = selected - set(registry) - _PSEUDO_RULE_IDS
        if unknown:
            raise ValueError(f"unknown rule ids: {', '.join(sorted(unknown))}")
        self.rules: list[Rule] = [
            registry[rule_id]() for rule_id in sorted(selected - _PSEUDO_RULE_IDS)
        ]
        #: ids pragmas may legitimately name: every registered rule (not
        #: just the selected subset) plus the pseudo-rules.
        self._known_ids = frozenset(registry) | _PSEUDO_RULE_IDS
        self._validate_pragmas = UNKNOWN_PRAGMA_RULE_ID not in set(ignore or ())

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def check_paths(self, paths: Sequence["str | Path"]) -> list[Diagnostic]:
        """Lint files and directory trees; returns sorted diagnostics."""
        diagnostics: list[Diagnostic] = []
        for file_path in self._collect_files(paths):
            diagnostics.extend(self.check_file(file_path))
        return sorted(diagnostics)

    def check_file(self, path: "str | Path") -> list[Diagnostic]:
        path = Path(path)
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as error:
            return [
                Diagnostic(
                    path=str(path),
                    line=1,
                    col=1,
                    rule_id=PARSE_ERROR_ID,
                    message=f"cannot read file: {error}",
                    severity=Severity.ERROR,
                )
            ]
        return self.check_source(source, path=str(path))

    def check_source(self, source: str, path: str = "<string>") -> list[Diagnostic]:
        """Lint one source string (used by tests and editor integrations)."""
        try:
            ctx = FileContext.parse(path, source)
        except SyntaxError as error:
            return [
                Diagnostic(
                    path=path,
                    line=error.lineno or 1,
                    col=(error.offset or 0) + 1,
                    rule_id=PARSE_ERROR_ID,
                    message=f"syntax error: {error.msg}",
                    severity=Severity.ERROR,
                )
            ]
        pragmas = Pragmas.scan(source)
        diagnostics = [
            diag
            for rule in self.rules
            if rule.applies_to(ctx)
            for diag in rule.check(ctx)
            if not pragmas.suppresses(diag.rule_id, diag.line)
        ]
        if self._validate_pragmas:
            diagnostics.extend(
                Diagnostic(
                    path=path,
                    line=line,
                    col=1,
                    rule_id=UNKNOWN_PRAGMA_RULE_ID,
                    message=(
                        f"unknown rule id {rule_id!r} in suppression pragma "
                        "(typo'd pragmas suppress nothing)"
                    ),
                    severity=Severity.ERROR,
                    fix_hint="use an id from --list-rules, or drop the pragma",
                )
                for line, rule_id in pragmas.unknown_rule_ids(self._known_ids)
                if not pragmas.suppresses(UNKNOWN_PRAGMA_RULE_ID, line)
            )
        return sorted(diagnostics)

    # ------------------------------------------------------------------
    # File discovery
    # ------------------------------------------------------------------
    @staticmethod
    def _collect_files(paths: Sequence["str | Path"]) -> Iterator[Path]:
        seen: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                candidates: Iterable[Path] = sorted(path.rglob("*.py"))
            else:
                candidates = [path]
            for candidate in candidates:
                if "__pycache__" in candidate.parts:
                    continue
                resolved = candidate.resolve()
                if resolved in seen:
                    continue
                seen.add(resolved)
                yield candidate
