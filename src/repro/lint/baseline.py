"""Baseline (suppression) file: incremental adoption of new analyses.

A baseline entry grandfathers one existing finding so a new rule can
land enforcing *no new findings* without first fixing every historical
one.  Entries are fingerprinted on (rule, path, message) — not line
numbers — so unrelated edits that shift code don't invalidate them,
while any change to the finding itself (different message, moved file)
does.

Format — one entry per line, ``#`` comments for per-entry rationale::

    # repro-lint baseline
    # cache.py counts files; order-insensitive by construction.
    SIM101 src/repro/sweep/cache.py 6c50437188f3

``repro-lint --write-baseline`` emits entries for all current findings
with TODO rationales; the review step is filling those in (or fixing
the finding instead).
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.diagnostics import Diagnostic

FINGERPRINT_LEN = 12


def fingerprint(diag: Diagnostic) -> str:
    """Line-number-independent identity of one finding."""
    path = diag.path.replace("\\", "/")
    payload = f"{diag.rule_id}::{path}::{diag.message}"
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:FINGERPRINT_LEN]


class Baseline:
    """Parsed baseline file: a set of grandfathered fingerprints."""

    def __init__(self, entries: "Iterable[tuple[str, str, str]]" = ()) -> None:
        #: (rule_id, path, fingerprint)
        self.entries: set[tuple[str, str, str]] = set(entries)
        self.matched: set[tuple[str, str, str]] = set()

    @classmethod
    def load(cls, path: "str | Path") -> "Baseline":
        baseline = cls()
        file_path = Path(path)
        if not file_path.is_file():
            return baseline
        for raw_line in file_path.read_text(encoding="utf-8").splitlines():
            line = raw_line.split("#", 1)[0].strip()
            if not line:
                continue
            parts = line.split()
            if len(parts) != 3:
                continue
            rule_id, entry_path, fp = parts
            baseline.entries.add((rule_id, entry_path.replace("\\", "/"), fp))
        return baseline

    def suppresses(self, diag: Diagnostic) -> bool:
        entry = (diag.rule_id, diag.path.replace("\\", "/"), fingerprint(diag))
        if entry in self.entries:
            self.matched.add(entry)
            return True
        return False

    def unused(self) -> list[tuple[str, str, str]]:
        """Entries that matched nothing — candidates for deletion."""
        return sorted(self.entries - self.matched)

    def filter(self, diagnostics: Sequence[Diagnostic]) -> list[Diagnostic]:
        return [d for d in diagnostics if not self.suppresses(d)]


def write_baseline(diagnostics: Sequence[Diagnostic], path: "str | Path") -> int:
    """Write a baseline covering every current finding; returns count."""
    lines = [
        "# repro-lint baseline — grandfathered findings.",
        "# Each entry: <rule> <path> <fingerprint>; keep a rationale comment",
        "# above every entry.  Regenerate with: repro-lint --write-baseline",
        "",
    ]
    for diag in sorted(diagnostics):
        lines.append(f"# TODO: justify or fix ({diag.line}:{diag.col} {diag.message})")
        lines.append(
            f"{diag.rule_id} {diag.path.replace(chr(92), '/')} {fingerprint(diag)}"
        )
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(diagnostics)
