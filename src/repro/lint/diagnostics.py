"""Diagnostic records emitted by lint rules."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class Severity(enum.Enum):
    """How bad a finding is.

    ``ERROR`` findings are invariant violations (the simulation may be
    silently wrong); ``WARNING`` findings are suspicious patterns that
    occasionally have legitimate uses (suppress with a justified pragma).
    """

    ERROR = "error"
    WARNING = "warning"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: rule ID + location + message + how to fix it.

    Interprocedural findings additionally carry ``chain`` — the
    source-to-sink propagation path, one human-readable hop per entry —
    so a cross-module bug reads as a path, not a bare location.
    """

    path: str
    line: int
    col: int
    rule_id: str
    message: str = field(compare=False)
    severity: Severity = field(compare=False, default=Severity.ERROR)
    fix_hint: str = field(compare=False, default="")
    chain: tuple[str, ...] = field(compare=False, default=())

    def render(self) -> str:
        """Human-readable form (``path:line:col: ID message`` + chain)."""
        text = (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )
        if self.fix_hint:
            text += f" (fix: {self.fix_hint})"
        for hop in self.chain:
            text += f"\n    | {hop}"
        return text

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form (``--format json``)."""
        doc: dict[str, Any] = {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
            "fix_hint": self.fix_hint,
        }
        if self.chain:
            doc["chain"] = list(self.chain)
        return doc
