"""Per-file analysis context shared by all rules.

A :class:`FileContext` is built once per file by the checker and handed
to every rule: the parsed AST, the raw source lines, an import map that
resolves local names back to their fully-qualified origins (so
``from time import time as clock; clock()`` is still recognized as
``time.time``), and the file's path *inside* the ``repro`` package (so
rules can scope themselves to ``wms/``, ``des/``, etc.).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Optional


def _qualified_name(node: ast.AST) -> Optional[str]:
    """Dotted source text of a ``Name``/``Attribute`` chain, else None."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class ImportMap:
    """Resolves local names to fully-qualified module paths.

    Built from a module's ``import`` statements::

        import numpy as np        ->  np        : numpy
        from time import time     ->  time      : time.time
        from x.y import z as w    ->  w         : x.y.z
    """

    def __init__(self, tree: ast.Module) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified name of a ``Name``/``Attribute`` expression.

        The leading component is expanded through the import aliases;
        unknown names are returned as written (``env.process`` stays
        ``env.process``) so rules can still match on suffixes.
        """
        dotted = _qualified_name(node)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        head = self._aliases.get(head, head)
        return f"{head}.{rest}" if rest else head


@dataclass
class FileContext:
    """Everything a rule needs to analyze one file."""

    path: str                       # path as given (for diagnostics)
    source: str
    tree: ast.Module
    imports: ImportMap
    #: Path relative to the ``repro`` package root ("wms/engine.py"),
    #: or None when the file is not inside a ``repro`` package (e.g.
    #: test fixtures) — scoped rules treat None as "in scope".
    package_relpath: Optional[str] = None
    lines: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        tree = ast.parse(source, filename=path)
        return cls(
            path=path,
            source=source,
            tree=tree,
            imports=ImportMap(tree),
            package_relpath=package_relpath(path),
            lines=source.splitlines(),
        )

    def in_package_dir(self, *prefixes: str) -> bool:
        """True when the file lives under one of ``prefixes`` inside the
        ``repro`` package — or is outside any package (fixtures)."""
        if self.package_relpath is None:
            return True
        return any(self.package_relpath.startswith(p) for p in prefixes)

    def outside_package_dir(self, *prefixes: str) -> bool:
        """True unless the file lives under one of ``prefixes``."""
        if self.package_relpath is None:
            return True
        return not any(self.package_relpath.startswith(p) for p in prefixes)


def package_relpath(path: str) -> Optional[str]:
    """Path relative to the last ``repro`` directory component, if any.

    ``src/repro/wms/engine.py`` → ``wms/engine.py``;
    ``tests/lint/fixtures/sim001_bad.py`` → ``None``.
    """
    parts = PurePath(path).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] == "repro" and i + 1 < len(parts):
            return "/".join(parts[i + 1 :])
    return None


def iter_function_defs(tree: ast.Module):
    """Yield every function/method definition in the module."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def is_generator(func: "ast.FunctionDef | ast.AsyncFunctionDef") -> bool:
    """True if ``func`` itself contains a yield (ignoring nested defs)."""
    for node in walk_shallow(func):
        if isinstance(node, (ast.Yield, ast.YieldFrom)):
            return True
    return False


def walk_shallow(func: ast.AST):
    """Walk a function body without descending into nested function or
    class definitions (their yields/calls belong to a different scope)."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))
