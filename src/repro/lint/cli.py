"""Command-line interface: ``python -m repro.lint`` / ``repro-lint``.

Exit codes: 0 = clean, 1 = diagnostics reported, 2 = usage error.

Two analysis layers compose here:

* the classic per-file rules (SIM0xx), run by the :class:`Checker`;
* the whole-program semantic analyses (SIM1xx/SIM2xx), run by
  :class:`~repro.lint.semantic.SemanticAnalyzer` when ``--semantic``
  is given (or the selection names a semantic rule, or pyproject sets
  ``semantic = true``).

Supporting machinery: ``--baseline`` grandfathers existing findings,
``--changed BASE`` lints only edited files plus their reverse-
dependency closure, ``--cache-dir`` enables the incremental semantic
cache, and ``--format sarif`` emits code-scanning-ready output.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.lint.baseline import Baseline, write_baseline
from repro.lint.checker import Checker
from repro.lint.config import LintConfig
from repro.lint.rules import all_rules
from repro.lint.sarif import collect_rule_meta, render_sarif


def _split_ids(values: "list[str] | None") -> "list[str] | None":
    if not values:
        return None
    out: list[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def list_rules() -> str:
    """Render the rule catalogue (``--list-rules``)."""
    lines = []
    for rule_id, cls in all_rules().items():
        tag = "semantic" if cls.semantic else cls.severity.value
        lines.append(f"{rule_id}  [{tag:8s}]  {cls.summary}")
    return "\n".join(lines)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Simulation-correctness linter: determinism, unit "
            "consistency, and DES-process hygiene for the repro codebase."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [tool.repro-lint] "
        "paths, falling back to src/)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    semantic = parser.add_argument_group("whole-program analysis")
    semantic.add_argument(
        "--semantic",
        action="store_true",
        help="also run the interprocedural SIM1xx/SIM2xx analyses",
    )
    semantic.add_argument(
        "--no-semantic",
        action="store_true",
        help="suppress the semantic analyses even if configured on",
    )
    semantic.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallel workers for parsing (output is identical for any N)",
    )
    semantic.add_argument(
        "--cache-dir",
        metavar="DIR",
        help="incremental-analysis cache directory (warm runs re-analyze "
        "only changed files plus their reverse-dependency closure)",
    )
    semantic.add_argument(
        "--stats",
        action="store_true",
        help="print analysis statistics to stderr",
    )
    adoption = parser.add_argument_group("incremental adoption")
    adoption.add_argument(
        "--baseline",
        metavar="FILE",
        help="suppress findings recorded in this baseline file",
    )
    adoption.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write all current findings to FILE as a baseline and exit 0",
    )
    adoption.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        metavar="BASE",
        help="lint only files changed vs BASE (default HEAD) plus their "
        "reverse-dependency closure",
    )
    return parser


def _resolve_targets(args, config: LintConfig) -> "tuple[list[str], Optional[list[str]]]":
    """(lint roots, restrict-to file list or None) honoring --changed."""
    paths = list(args.paths) or config.paths
    if args.changed is None:
        return paths, None
    from repro.lint.semantic.changed import (
        changed_python_files,
        expand_with_dependents,
        git_repo_root,
    )

    repo_root = git_repo_root()
    if repo_root is None:
        print(
            "warning: --changed requires a git checkout; linting everything",
            file=sys.stderr,
        )
        return paths, None
    changed = changed_python_files(args.changed, repo_root)
    if changed is None:
        print(
            f"warning: cannot diff against {args.changed!r}; linting everything",
            file=sys.stderr,
        )
        return paths, None
    restrict = expand_with_dependents(paths, changed)
    return paths, restrict


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        print(list_rules())
        return 0

    config = LintConfig.load()
    select = _split_ids(args.select) or config.select
    ignore = _split_ids(args.ignore) or config.ignore

    registry = all_rules()
    semantic_ids = frozenset(r for r, cls in registry.items() if cls.semantic)
    run_semantic = (
        args.semantic
        or config.semantic
        or bool(select and semantic_ids.intersection(select))
    ) and not args.no_semantic

    try:
        checker = Checker(select=select, ignore=ignore)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    try:
        paths, restrict = _resolve_targets(args, config)
    except Exception as error:  # git plumbing should never abort a lint
        print(f"warning: --changed failed ({error}); linting everything", file=sys.stderr)
        paths, restrict = list(args.paths) or config.paths, None

    # A selection naming only semantic rules needs no per-file pass at
    # all — skipping it keeps warm incremental runs at engine speed
    # instead of re-parsing every file for zero per-file rules.
    semantic_only = bool(select) and set(select) <= semantic_ids
    if semantic_only:
        diagnostics = []
    elif restrict is not None:
        diagnostics = checker.check_paths(restrict)
    else:
        diagnostics = checker.check_paths(paths)

    # Engine-backed rules contribute nothing through Checker; run them
    # over the full tree so cross-module chains stay visible, then
    # restrict reporting to the changed closure.
    if run_semantic:
        from repro.lint.semantic import SemanticAnalyzer

        analyzer = SemanticAnalyzer(
            select=select,
            ignore=ignore,
            cache_dir=args.cache_dir or config.cache_dir,
            jobs=args.jobs,
        )
        result = analyzer.analyze_paths(paths, restrict_to=restrict)
        diagnostics = sorted([*diagnostics, *result.diagnostics])
        if args.stats:
            print(
                "semantic: {files} file(s), {analyzed} analyzed, "
                "{from_cache} from cache, {functions} function(s), jobs={jobs}".format(
                    **result.stats
                ),
                file=sys.stderr,
            )

    if args.write_baseline:
        count = write_baseline(diagnostics, args.write_baseline)
        print(f"wrote {count} baseline entrie(s) to {args.write_baseline}", file=sys.stderr)
        return 0

    baseline_path = args.baseline or config.baseline
    if baseline_path:
        baseline = Baseline.load(baseline_path)
        diagnostics = baseline.filter(diagnostics)
        for rule_id, entry_path, fp in baseline.unused():
            print(
                f"warning: unused baseline entry {rule_id} {entry_path} {fp}",
                file=sys.stderr,
            )

    if args.format == "json":
        print(json.dumps([d.to_dict() for d in diagnostics], indent=2))
    elif args.format == "sarif":
        meta = collect_rule_meta(d.rule_id for d in diagnostics)
        print(render_sarif(diagnostics, meta))
    else:
        for diagnostic in diagnostics:
            print(diagnostic.render())
        if diagnostics:
            print(
                f"\n{len(diagnostics)} finding(s) in "
                f"{len({d.path for d in diagnostics})} file(s)",
                file=sys.stderr,
            )
    return 1 if diagnostics else 0


if __name__ == "__main__":  # pragma: no cover - exercised via -m
    raise SystemExit(main())
