"""Command-line interface: ``python -m repro.lint`` / ``repro-lint``.

Exit codes: 0 = clean, 1 = diagnostics reported, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.lint.checker import Checker
from repro.lint.config import LintConfig
from repro.lint.rules import all_rules


def _split_ids(values: "list[str] | None") -> "list[str] | None":
    if not values:
        return None
    out: list[str] = []
    for value in values:
        out.extend(part.strip() for part in value.split(",") if part.strip())
    return out


def list_rules() -> str:
    """Render the rule catalogue (``--list-rules``)."""
    lines = []
    for rule_id, cls in all_rules().items():
        lines.append(f"{rule_id}  [{cls.severity.value:7s}]  {cls.summary}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Simulation-correctness linter: determinism, unit "
            "consistency, and DES-process hygiene for the repro codebase."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: [tool.repro-lint] "
        "paths, falling back to src/)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="IDS",
        help="comma-separated rule ids to skip",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(list_rules())
        return 0

    config = LintConfig.load()
    select = _split_ids(args.select) or config.select
    ignore = _split_ids(args.ignore) or config.ignore
    paths = list(args.paths) or config.paths

    try:
        checker = Checker(select=select, ignore=ignore)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    diagnostics = checker.check_paths(paths)

    if args.format == "json":
        print(json.dumps([d.to_dict() for d in diagnostics], indent=2))
    else:
        for diagnostic in diagnostics:
            print(diagnostic.render())
        if diagnostics:
            print(
                f"\n{len(diagnostics)} finding(s) in "
                f"{len({d.path for d in diagnostics})} file(s)",
                file=sys.stderr,
            )
    return 1 if diagnostics else 0


if __name__ == "__main__":  # pragma: no cover - exercised via -m
    raise SystemExit(main())
