"""SARIF 2.1.0 rendering (``--format sarif``).

Minimal but valid static-analysis results interchange: one run, one
tool, per-rule metadata from the registry, one result per diagnostic.
Propagation chains become ``codeFlows`` with synthetic messages so
GitHub code-scanning renders the source-to-sink path inline.

Output is deterministic: rules and results are emitted in sorted
order and the JSON is serialized with stable key order.
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from repro.lint.diagnostics import Diagnostic, Severity

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"
TOOL_NAME = "repro-lint"


def _level(severity: Severity) -> str:
    return "error" if severity is Severity.ERROR else "warning"


def _location(diag: Diagnostic) -> dict:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": diag.path.replace("\\", "/")},
            "region": {"startLine": diag.line, "startColumn": diag.col},
        }
    }


def _result(diag: Diagnostic) -> dict:
    result: dict = {
        "ruleId": diag.rule_id,
        "level": _level(diag.severity),
        "message": {"text": diag.message},
        "locations": [_location(diag)],
    }
    if diag.fix_hint:
        result["message"]["text"] += f" (fix: {diag.fix_hint})"
    if diag.chain:
        result["codeFlows"] = [
            {
                "threadFlows": [
                    {
                        "locations": [
                            {
                                "location": {
                                    **_location(diag),
                                    "message": {"text": hop},
                                }
                            }
                            for hop in diag.chain
                        ]
                    }
                ]
            }
        ]
    return result


def _rule_entries(rule_meta: dict[str, tuple[str, str]]) -> list[dict]:
    return [
        {
            "id": rule_id,
            "shortDescription": {"text": summary},
            "defaultConfiguration": {"level": level},
        }
        for rule_id, (level, summary) in sorted(rule_meta.items())
    ]


def render_sarif(
    diagnostics: Sequence[Diagnostic],
    rule_meta: "dict[str, tuple[str, str]] | None" = None,
    tool_version: str = "0",
) -> str:
    """Serialize diagnostics as a SARIF log (stable byte output)."""
    doc = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": TOOL_NAME,
                        "version": tool_version,
                        "informationUri": "https://example.invalid/repro-lint",
                        "rules": _rule_entries(rule_meta or {}),
                    }
                },
                "results": [_result(d) for d in sorted(diagnostics)],
                "columnKind": "unicodeCodePoints",
            }
        ],
    }
    return json.dumps(doc, indent=2)


def collect_rule_meta(rule_ids: Iterable[str]) -> dict[str, tuple[str, str]]:
    """(level, summary) metadata for the given rule ids, registry-backed."""
    from repro.lint.rules import all_rules

    registry = all_rules()
    meta: dict[str, tuple[str, str]] = {}
    for rule_id in sorted(set(rule_ids)):
        cls = registry.get(rule_id)
        if cls is not None:
            meta[rule_id] = (_level(cls.severity), cls.summary)
        else:
            meta[rule_id] = ("error", "")
    return meta
