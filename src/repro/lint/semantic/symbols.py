"""Project symbol table: functions, methods, and call-target resolution.

Each module contributes a flat map of qualified names
(``repro.sweep.cache.point_key``, ``repro.des.environment.Environment.schedule``)
to :class:`FunctionInfo` records carrying the AST node.  A per-module
alias map (imports *and* top-level defs, relative imports included)
lets analyses resolve an ``ast.Call`` back to a project function —
best-effort, which is the right trade for a linter: unresolved calls
simply contribute no interprocedural edge.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.lint.semantic.modgraph import ModuleGraph


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qname: str
    module: str
    path: str
    node: "ast.FunctionDef | ast.AsyncFunctionDef"
    params: tuple[str, ...]
    lineno: int
    class_name: Optional[str] = None


@dataclass
class ModuleSymbols:
    """Everything the analyses need from one parsed module."""

    module: str
    path: str
    tree: ast.Module
    #: local name -> absolute dotted target (imports + top-level defs)
    aliases: dict[str, str] = field(default_factory=dict)
    #: qname -> FunctionInfo for every def in this module
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: class name -> set of method names (for self.x() resolution)
    classes: dict[str, frozenset[str]] = field(default_factory=dict)

    @classmethod
    def build(cls, module: str, path: str, tree: ast.Module) -> "ModuleSymbols":
        syms = cls(module=module, path=path, tree=tree)
        syms._scan_imports()
        syms._scan_defs()
        return syms

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _scan_imports(self) -> None:
        package_parts = self.module.split(".")[:-1]
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.aliases[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        self.aliases[head] = head
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base_parts = package_parts[: len(package_parts) - node.level + 1]
                    base = ".".join(base_parts + ([node.module] if node.module else []))
                else:
                    base = node.module or ""
                if not base:
                    continue
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{base}.{alias.name}"

    def _scan_defs(self) -> None:
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(stmt, class_name=None)
                self.aliases[stmt.name] = f"{self.module}.{stmt.name}"
            elif isinstance(stmt, ast.ClassDef):
                methods: set[str] = set()
                for item in stmt.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        self._add_function(item, class_name=stmt.name)
                        methods.add(item.name)
                self.classes[stmt.name] = frozenset(methods)
                self.aliases[stmt.name] = f"{self.module}.{stmt.name}"

    def _add_function(
        self,
        node: "ast.FunctionDef | ast.AsyncFunctionDef",
        class_name: Optional[str],
    ) -> None:
        scope = f"{self.module}.{class_name}" if class_name else self.module
        qname = f"{scope}.{node.name}"
        args = node.args
        params = [a.arg for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)]
        if class_name and params and params[0] in ("self", "cls"):
            params = params[1:]
        self.functions[qname] = FunctionInfo(
            qname=qname,
            module=self.module,
            path=self.path,
            node=node,
            params=tuple(params),
            lineno=node.lineno,
            class_name=class_name,
        )

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def resolve_dotted(self, node: ast.AST) -> Optional[str]:
        """Absolute dotted name of a Name/Attribute chain, aliases expanded."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.aliases.get(parts[0], parts[0])
        return ".".join([head, *parts[1:]])


class SymbolTable:
    """All modules' symbols plus cross-module call-target resolution."""

    def __init__(self, graph: ModuleGraph) -> None:
        self.graph = graph
        self.by_module: dict[str, ModuleSymbols] = {}
        self.functions: dict[str, FunctionInfo] = {}

    def add(self, syms: ModuleSymbols) -> None:
        self.by_module[syms.module] = syms
        self.functions.update(syms.functions)

    def iter_functions(self) -> Iterator[FunctionInfo]:
        """All known functions in deterministic (qname) order."""
        for qname in sorted(self.functions):
            yield self.functions[qname]

    def resolve_call(
        self,
        syms: ModuleSymbols,
        call: ast.Call,
        current_class: Optional[str] = None,
    ) -> Optional[FunctionInfo]:
        """Project function targeted by ``call``, if statically known.

        Handles direct names, imported names, dotted module attributes,
        ``Class(...)`` (→ ``__init__``), and ``self.method(...)``.
        """
        func = call.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in ("self", "cls")
            and current_class is not None
        ):
            methods = syms.classes.get(current_class, frozenset())
            if func.attr in methods:
                return self.functions.get(f"{syms.module}.{current_class}.{func.attr}")
            return None
        dotted = syms.resolve_dotted(func)
        if dotted is None:
            return None
        return self.lookup_dotted(dotted)

    def lookup_dotted(self, dotted: str, _depth: int = 0) -> Optional[FunctionInfo]:
        """Map an absolute dotted name to a FunctionInfo (or constructor).

        Re-exports are chased through the owning module's alias map
        (``from repro.sweep import point_key`` resolves via
        ``repro.sweep.__init__``'s own import of ``.cache``), bounded to
        keep pathological alias cycles finite.
        """
        if _depth > 8:
            return None
        info = self.functions.get(dotted)
        if info is not None:
            return info
        init = self.functions.get(f"{dotted}.__init__")
        if init is not None:
            return init
        module = self.graph.resolve_module(dotted)
        if module is None or module == dotted:
            return None
        rest = dotted[len(module) + 1 :].split(".")
        syms = self.by_module.get(module)
        if syms is None or not rest:
            return None
        target = syms.aliases.get(rest[0])
        if target is None:
            return None
        return self.lookup_dotted(".".join([target, *rest[1:]]), _depth + 1)
