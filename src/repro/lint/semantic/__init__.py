"""repro.lint.semantic — whole-program analyses beneath the rule registry.

Where the classic ``repro.lint`` rules see one file at a time, this
subpackage parses the full project once into a module graph, symbol
table, and call graph, then runs two interprocedural analyses:

* **determinism taint** (SIM100-series) — nondeterminism sources
  (unsorted set iteration, unsorted directory listings, wall clock,
  global RNG, ``id()``-keyed ordering) are propagated along the call
  graph; any tainted value reaching DES-visible state (event
  scheduling, trace export, cache-key construction) is reported with
  the full propagation chain;
* **unit/dimension dataflow** (SIM200-series) — physical dimensions
  (bytes, seconds, bytes/s, flops, cores, granules) are inferred from
  :mod:`repro.platform.units` constants and naming conventions, then
  propagated through assignments, arithmetic, and calls; cross-
  dimension addition/comparison and bare magnitudes flowing into
  dimension-typed parameters are flagged.

The engine is incremental (per-file content-hash cache; warm runs
re-analyze only changed files plus their reverse-dependency closure)
and deterministic: diagnostics are byte-identical across repeated runs
and ``--jobs N``.

Entry point: :class:`~repro.lint.semantic.engine.SemanticAnalyzer`.
"""

from repro.lint.semantic.engine import SemanticAnalyzer, SemanticResult, semantic_rule_ids

__all__ = ["SemanticAnalyzer", "SemanticResult", "semantic_rule_ids"]
