"""Project module graph: file discovery, content hashes, import edges.

The graph answers two questions the incremental engine needs:

* *who do I import?* — forward edges, used to resolve call targets;
* *who imports me?* — reverse edges, used to compute the
  re-analysis closure after an edit (taint flows callee → caller and
  dimension summaries flow callee → caller, so a change in module ``m``
  can only alter diagnostics in ``m`` and its transitive dependents).

Everything is computed from sorted inputs so graph iteration order is
deterministic regardless of filesystem enumeration order.
"""

from __future__ import annotations

import ast
import hashlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence


def content_hash(data: bytes) -> str:
    """Stable per-file fingerprint for the incremental cache."""
    return hashlib.sha256(data).hexdigest()


def module_name_for(path: Path) -> str:
    """Dotted module name for a file, walking up through ``__init__.py``
    packages (``src/repro/network/flownet.py`` → ``repro.network.flownet``;
    a loose fixture file becomes its bare stem)."""
    parts: list[str] = [] if path.name == "__init__.py" else [path.stem]
    directory = path.parent
    while (directory / "__init__.py").is_file():
        parts.insert(0, directory.name)
        parent = directory.parent
        if parent == directory:
            break
        directory = parent
    return ".".join(parts) or path.stem


def extract_imports(tree: ast.Module, module: str) -> frozenset[str]:
    """Raw dotted names imported by a module (absolute form).

    Relative imports are resolved against ``module``'s package so
    fixture packages using ``from .collect import gather`` still
    produce edges.  Names are *not* yet restricted to project modules;
    :meth:`ModuleGraph.build` does that.
    """
    package_parts = module.split(".")[:-1]
    names: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                names.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base_parts = package_parts[: len(package_parts) - node.level + 1]
                base = ".".join(base_parts + ([node.module] if node.module else []))
            else:
                base = node.module or ""
            if not base:
                continue
            names.add(base)
            for alias in node.names:
                names.add(f"{base}.{alias.name}")
    return frozenset(names)


@dataclass
class ModuleInfo:
    """One project module: identity, location, and import edges."""

    name: str
    path: str          # path as given on the command line (diagnostics)
    sha: str
    raw_imports: frozenset[str] = frozenset()


@dataclass
class ModuleGraph:
    """Forward/reverse import edges between project modules only."""

    modules: dict[str, ModuleInfo] = field(default_factory=dict)
    #: module -> project modules it imports (direct edges)
    imports: dict[str, frozenset[str]] = field(default_factory=dict)
    #: module -> project modules importing it (reverse edges)
    dependents: dict[str, frozenset[str]] = field(default_factory=dict)
    #: path (as given) -> module name
    path_to_module: dict[str, str] = field(default_factory=dict)

    @classmethod
    def build(cls, infos: Iterable[ModuleInfo]) -> "ModuleGraph":
        graph = cls()
        for info in sorted(infos, key=lambda m: m.name):
            graph.modules[info.name] = info
            graph.path_to_module[info.path] = info.name
        known = set(graph.modules)
        reverse: dict[str, set[str]] = {name: set() for name in known}
        for name, info in graph.modules.items():
            edges: set[str] = set()
            for imported in info.raw_imports:
                resolved = _longest_known_prefix(imported, known)
                if resolved and resolved != name:
                    edges.add(resolved)
            graph.imports[name] = frozenset(edges)
            for target in edges:
                reverse[target].add(name)
        graph.dependents = {name: frozenset(deps) for name, deps in reverse.items()}
        return graph

    def reverse_closure(self, seeds: Iterable[str]) -> frozenset[str]:
        """Seeds plus every transitive dependent — the re-analysis set."""
        closure: set[str] = set()
        frontier = [name for name in seeds if name in self.modules]
        while frontier:
            name = frontier.pop()
            if name in closure:
                continue
            closure.add(name)
            frontier.extend(self.dependents.get(name, ()))
        return frozenset(closure)

    def resolve_module(self, dotted: str) -> Optional[str]:
        """Longest project-module prefix of a dotted name, if any."""
        return _longest_known_prefix(dotted, self.modules.keys())


def _longest_known_prefix(dotted: str, known: "set[str] | Sequence[str] | Iterable[str]") -> Optional[str]:
    known_set = known if isinstance(known, (set, frozenset, dict)) else set(known)
    parts = dotted.split(".")
    for end in range(len(parts), 0, -1):
        candidate = ".".join(parts[:end])
        if candidate in known_set:
            return candidate
    return None


def collect_python_files(paths: Sequence["str | Path"]) -> list[Path]:
    """Deterministic file discovery shared with the per-file checker."""
    seen: set[Path] = set()
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        candidates: Iterable[Path] = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved in seen:
                continue
            seen.add(resolved)
            out.append(candidate)
    return out
