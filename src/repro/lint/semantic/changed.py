"""Git-aware target selection (``repro-lint --changed [BASE]``).

Lints only files changed versus a base ref — plus their reverse-
dependency closure from the module graph, because a taint or dimension
summary change in an edited module can surface findings in any module
that (transitively) imports it.  Designed for the pre-commit hook:
with a warm semantic cache the whole run stays sub-second.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Optional, Sequence

from repro.lint.semantic.modgraph import (
    ModuleGraph,
    ModuleInfo,
    collect_python_files,
    extract_imports,
    module_name_for,
)


def git_repo_root(start: "str | Path | None" = None) -> Optional[Path]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--show-toplevel"],
            cwd=str(start) if start else None,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    return Path(out.stdout.strip())


def changed_python_files(base: str, repo_root: Path) -> Optional[list[Path]]:
    """Tracked files changed vs ``base`` plus untracked files, absolute.

    Returns None when git is unavailable or the ref does not resolve —
    callers should fall back to a full run rather than lint nothing.
    """
    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", "--diff-filter=ACMR", base, "--", "*.py"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
        )
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard", "--", "*.py"],
            cwd=repo_root,
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    names = sorted(
        set(diff.stdout.splitlines()) | set(untracked.stdout.splitlines())
    )
    return [repo_root / name for name in names if name.endswith(".py")]


def build_import_graph(paths: Sequence["str | Path"]) -> ModuleGraph:
    """Parse just enough of a tree to get module names + import edges."""
    import ast

    infos = []
    for path in collect_python_files(paths):
        name = module_name_for(path)
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
            raw = extract_imports(tree, name)
        except (OSError, SyntaxError, UnicodeDecodeError):
            raw = frozenset()
        infos.append(ModuleInfo(name=name, path=str(path), sha="", raw_imports=raw))
    return ModuleGraph.build(infos)


def expand_with_dependents(
    lint_paths: Sequence["str | Path"], changed: Sequence[Path]
) -> list[str]:
    """Changed files ∪ their reverse-dependency closure, as path strings
    relative to how ``lint_paths`` were given (the graph keys them so)."""
    graph = build_import_graph(lint_paths)
    resolved_to_given = {
        str(Path(p).resolve()): p for p in graph.path_to_module
    }
    seeds = []
    for path in changed:
        given = resolved_to_given.get(str(Path(path).resolve()))
        if given is not None:
            seeds.append(graph.path_to_module[given])
    closure = graph.reverse_closure(seeds)
    return sorted(
        info.path for name, info in graph.modules.items() if name in closure
    )
