"""Unit/dimension dataflow analysis (SIM200-series).

The model's load-bearing quantities — byte counts, simulated seconds,
bytes/s bandwidths, flops, cores, burst-buffer granules — are all bare
``float``\\ s in Python, so a bytes-vs-bandwidth mixup is invisible to
the type system and indistinguishable from modeling error in the
validation plots.  This analysis recovers dimensions from three cues:

* **units constants** — ``3 * units.GiB`` is bytes because ``GiB``
  comes from :mod:`repro.platform.units`;
* **naming conventions** — ``size``/``n_bytes`` is bytes,
  ``duration``/``makespan`` is seconds, ``bandwidth``/``bw`` is
  bytes/s, ``core_speed`` is flops/s, ``n_cores`` is cores — applied
  to locals, parameters, *and* attribute accesses;
* **call summaries** — a project function whose returns all carry one
  dimension exports it to its callers (fixpoint, callee → caller).

Dimensions form a tiny abelian-group algebra (exponent vectors over
the base units), so ``bytes / seconds`` is bytes/s and
``bytes / (bytes/s)`` is seconds.  Unknown is ⊤ and silences checks.

Rules:

* **SIM201** — addition/subtraction/comparison of two *known,
  different* dimensions (``transfer_bytes + startup_s``);
* **SIM202** — bare numeric literal (``>= 1000``) passed to a
  dimension-typed parameter — magnitudes belong in units vocabulary
  (``32 * MiB``), not inline.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Optional

from repro.lint.semantic.symbols import FunctionInfo, ModuleSymbols, SymbolTable
from repro.lint.semantic.taint import TaintFinding

# ----------------------------------------------------------------------
# The dimension algebra: exponent vectors over base units.
# ----------------------------------------------------------------------

Dim = tuple[tuple[str, int], ...]  # sorted ((base, exponent), ...), canonical

DIMENSIONLESS: Dim = ()


def _dim(**exps: int) -> Dim:
    return tuple(sorted((base, e) for base, e in exps.items() if e))


BYTES = _dim(byte=1)
SECONDS = _dim(second=1)
BYTES_PER_S = _dim(byte=1, second=-1)
FLOPS = _dim(flop=1)
FLOPS_PER_S = _dim(flop=1, second=-1)
CORES = _dim(core=1)
GRANULES = _dim(granule=1)

_NAMES = {
    BYTES: "bytes",
    SECONDS: "seconds",
    BYTES_PER_S: "bytes/s",
    FLOPS: "flops",
    FLOPS_PER_S: "flops/s",
    CORES: "cores",
    GRANULES: "granules",
    DIMENSIONLESS: "dimensionless",
}


def dim_name(dim: Dim) -> str:
    if dim in _NAMES:
        return _NAMES[dim]
    return "·".join(f"{base}^{e}" for base, e in dim)


def dim_mul(a: Dim, b: Dim) -> Dim:
    exps = dict(a)
    for base, e in b:
        exps[base] = exps.get(base, 0) + e
    return tuple(sorted((base, e) for base, e in exps.items() if e))


def dim_div(a: Dim, b: Dim) -> Dim:
    return dim_mul(a, tuple((base, -e) for base, e in b))


# ----------------------------------------------------------------------
# Inference cues
# ----------------------------------------------------------------------

#: repro.platform.units constants → dimension of values built from them.
UNITS_CONSTANTS: dict[str, Dim] = {
    **{name: BYTES for name in ("KB", "MB", "GB", "TB", "KiB", "MiB", "GiB", "TiB")},
    **{name: SECONDS for name in ("US", "MS", "MINUTE", "HOUR")},
    # The paper quotes core speeds (flop/s); task work in flops is
    # written as  work = x * GFLOPS * seconds  at call sites.
    **{name: FLOPS_PER_S for name in ("MFLOPS", "GFLOPS", "TFLOPS")},
}

UNITS_MODULE = "repro.platform.units"

#: identifier tokens → dimension (matched on whole ``_``-split words).
_TOKEN_DIMS: dict[str, Dim] = {
    "bytes": BYTES,
    "nbytes": BYTES,
    "size": BYTES,
    "sizes": BYTES,
    "capacity": BYTES,
    "footprint": BYTES,
    "second": SECONDS,
    "seconds": SECONDS,
    "duration": SECONDS,
    "latency": SECONDS,
    "makespan": SECONDS,
    "walltime": SECONDS,
    "runtime": SECONDS,
    "timeout": SECONDS,
    "deadline": SECONDS,
    "bandwidth": BYTES_PER_S,
    "bw": BYTES_PER_S,
    "throughput": BYTES_PER_S,
    "flops": FLOPS,
    "cores": CORES,
    "ncores": CORES,
    "cpus": CORES,
    "granules": GRANULES,
}

#: tokens that must match as suffix words only when trailing ("_s").
_SUFFIX_DIMS: dict[str, Dim] = {"s": SECONDS, "sec": SECONDS, "secs": SECONDS}

#: SIM202 only fires on magnitudes large enough to be unit-bearing.
BARE_LITERAL_THRESHOLD = 1000

#: The repo (like the paper) quotes rates through scale constants —
#: ``bandwidth = 6.5 * GB`` means 6.5 GB/s, ``core_speed = 36.8 *
#: GFLOPS`` is already flop/s — so a magnitude-family value may land in
#: the per-second slot (and vice versa) at *binding* sites (assignment
#: to a named variable, argument to a named parameter), where the name
#: supplies the missing /s.  Arithmetic mixes are still flagged.
_MAGNITUDE_COMPAT: frozenset[tuple[Dim, Dim]] = frozenset(
    {
        (BYTES, BYTES_PER_S),
        (BYTES_PER_S, BYTES),
        (FLOPS, FLOPS_PER_S),
        (FLOPS_PER_S, FLOPS),
    }
)


def magnitude_compatible(value_dim: Dim, slot_dim: Dim) -> bool:
    return (value_dim, slot_dim) in _MAGNITUDE_COMPAT


def dim_from_name(name: str) -> Optional[Dim]:
    """Dimension implied by an identifier, if the convention is clear."""
    tokens = [t for t in name.lower().split("_") if t]
    if not tokens:
        return None
    if tokens[-1] in _SUFFIX_DIMS and len(tokens) > 1:
        return _SUFFIX_DIMS[tokens[-1]]
    if "per" in tokens:  # bytes_per_s, flops_per_core: explicit ratios
        idx = tokens.index("per")
        num = dim_from_name("_".join(tokens[:idx]))
        den = dim_from_name("_".join(tokens[idx + 1 :]))
        if num is not None and den is not None:
            return dim_div(num, den)
        return None
    if tokens[-1] == "speed":
        return FLOPS_PER_S
    for token in reversed(tokens):  # rightmost word wins: peak_bw → bytes/s
        if token in _TOKEN_DIMS:
            return _TOKEN_DIMS[token]
    return None


@dataclass
class DimSummary:
    """Interprocedural facts: parameter and return dimensions.

    ``params`` preserves positional order so call sites can be checked
    against a cached summary when the callee itself is out of the
    incremental re-analysis closure.
    """

    param_dims: dict[str, Dim]
    return_dim: Optional[Dim] = None
    params: tuple[str, ...] = ()


def signature_dims(func: FunctionInfo) -> dict[str, Dim]:
    dims: dict[str, Dim] = {}
    for param in func.params:
        dim = dim_from_name(param)
        if dim is not None:
            dims[param] = dim
    return dims


class FunctionDimAnalysis:
    """Single-function dimension propagation + mismatch detection."""

    def __init__(
        self,
        func: FunctionInfo,
        syms: ModuleSymbols,
        table: SymbolTable,
        summaries: dict[str, DimSummary],
        collect: bool,
    ) -> None:
        self.func = func
        self.syms = syms
        self.table = table
        self.summaries = summaries
        self.collect = collect
        self.path = func.path
        self.env: dict[str, Dim] = dict(summaries[func.qname].param_dims) if func.qname in summaries else signature_dims(func)
        self.findings: list[TaintFinding] = []
        self.return_dims: list[Optional[Dim]] = []

    def run(self) -> DimSummary:
        self.exec_block(self.func.node.body)
        known = {d for d in self.return_dims if d is not None}
        return_dim = known.pop() if len(known) == 1 and None not in self.return_dims else None
        return DimSummary(
            param_dims=signature_dims(self.func),
            return_dim=return_dim,
            params=tuple(self.func.params),
        )

    # -- helpers --------------------------------------------------------
    def _finding(self, node: ast.AST, rule_id: str, message: str) -> None:
        if not self.collect:
            return
        self.findings.append(
            TaintFinding(
                path=self.path,
                line=getattr(node, "lineno", self.func.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                rule_id=rule_id,
                message=message,
            )
        )

    def _key(self, node: ast.AST) -> Optional[str]:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    # -- expression dimension -------------------------------------------
    def dim_of(self, node: Optional[ast.AST]) -> Optional[Dim]:
        if node is None:
            return None
        if isinstance(node, ast.Constant):
            return DIMENSIONLESS if isinstance(node.value, (int, float)) and not isinstance(node.value, bool) else None
        if isinstance(node, (ast.Name, ast.Attribute)):
            return self._name_dim(node)
        if isinstance(node, ast.BinOp):
            return self._binop_dim(node)
        if isinstance(node, ast.UnaryOp):
            return self.dim_of(node.operand)
        if isinstance(node, ast.Call):
            return self._call_dim(node)
        if isinstance(node, ast.IfExp):
            body = self.dim_of(node.body)
            orelse = self.dim_of(node.orelse)
            return body if body == orelse else None
        if isinstance(node, ast.Compare):
            self._check_compare(node)
            return None
        if isinstance(node, (ast.Subscript, ast.Starred, ast.Await)):
            return self.dim_of(node.value)
        if isinstance(node, ast.NamedExpr):
            dim = self.dim_of(node.value)
            key = self._key(node.target)
            if key is not None and dim is not None:
                self.env[key] = dim
            return dim
        return None

    def _name_dim(self, node: ast.AST) -> Optional[Dim]:
        key = self._key(node)
        if key is not None and key in self.env:
            return self.env[key]
        # units constants, resolved through import aliases
        dotted = self.syms.resolve_dotted(node)
        if dotted is not None:
            head, _, last = dotted.rpartition(".")
            if last in UNITS_CONSTANTS and (head == UNITS_MODULE or head == "units" or not head):
                return UNITS_CONSTANTS[last]
        # naming convention on the trailing identifier word
        trailing = key.rsplit(".", 1)[-1] if key else None
        if trailing is not None:
            return dim_from_name(trailing)
        return None

    def _binop_dim(self, node: ast.BinOp) -> Optional[Dim]:
        left = self.dim_of(node.left)
        right = self.dim_of(node.right)
        if isinstance(node.op, (ast.Add, ast.Sub)):
            if (
                left is not None
                and right is not None
                and left != right
                # adding a bare literal to a dimensioned value is SIM202
                # territory, not a cross-dimension mix
                and DIMENSIONLESS not in (left, right)
            ):
                self._finding(
                    node,
                    "SIM201",
                    f"cross-dimension {'addition' if isinstance(node.op, ast.Add) else 'subtraction'}: "
                    f"{dim_name(left)} {'+' if isinstance(node.op, ast.Add) else '-'} {dim_name(right)}",
                )
                return None
            return left if left is not None else right
        if isinstance(node.op, ast.Mult):
            if left is None or right is None:
                return None
            return dim_mul(left, right)
        if isinstance(node.op, (ast.Div, ast.FloorDiv)):
            if left is None or right is None:
                return None
            return dim_div(left, right)
        if isinstance(node.op, ast.Mod):
            return left
        return None

    def _check_compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        if any(isinstance(op, (ast.In, ast.NotIn, ast.Is, ast.IsNot)) for op in node.ops):
            return
        dims = [self.dim_of(op) for op in operands]
        known = [
            (op, d)
            for op, d in zip(operands, dims)
            if d is not None and d != DIMENSIONLESS
        ]
        for (_, a), (op_b, b) in zip(known, known[1:]):
            if a != b:
                self._finding(
                    node,
                    "SIM201",
                    f"cross-dimension comparison: {dim_name(a)} vs {dim_name(b)}",
                )
                return

    def _call_dim(self, node: ast.Call) -> Optional[Dim]:
        for arg in node.args:
            self.dim_of(arg)
        for kw in node.keywords:
            self.dim_of(kw.value)
        target = self.table.resolve_call(self.syms, node, self.func.class_name)
        dotted = self.syms.resolve_dotted(node.func)
        if target is not None:
            summary = self.summaries.get(target.qname)
            params = target.params
            qname = target.qname
        elif dotted is not None and dotted in self.summaries:
            # out-of-closure project callee on a warm incremental run:
            # the cached summary carries the positional parameter order
            summary = self.summaries[dotted]
            params = summary.params
            qname = dotted
        else:
            if dotted in ("float", "int", "abs", "round"):
                return self.dim_of(node.args[0]) if node.args else None
            return None
        param_dims = summary.param_dims if summary is not None else signature_dims(target)
        self._check_call_args(node, qname, params, param_dims)
        return summary.return_dim if summary is not None else None

    def _check_call_args(
        self,
        node: ast.Call,
        qname: str,
        params: "tuple[str, ...] | list[str]",
        param_dims: dict[str, Dim],
    ) -> None:
        """SIM202 + SIM201 at call boundaries."""
        if not param_dims:
            return
        bindings: list[tuple[str, ast.expr]] = []
        for param, arg in zip(params, node.args):
            bindings.append((param, arg))
        for kw in node.keywords:
            if kw.arg is not None:
                bindings.append((kw.arg, kw.value))
        for param, arg in bindings:
            expected = param_dims.get(param)
            if expected is None:
                continue
            if (
                isinstance(arg, ast.Constant)
                and isinstance(arg.value, (int, float))
                and not isinstance(arg.value, bool)
                and abs(arg.value) >= BARE_LITERAL_THRESHOLD
            ):
                self._finding(
                    arg,
                    "SIM202",
                    f"bare magnitude {arg.value!r} passed to {dim_name(expected)}-typed "
                    f"parameter {param!r} of {qname}(); build it from "
                    "repro.platform.units constants",
                )
                continue
            actual = self.dim_of(arg)
            if (
                actual is not None
                and actual != DIMENSIONLESS
                and actual != expected
                and not magnitude_compatible(actual, expected)
            ):
                self._finding(
                    arg,
                    "SIM201",
                    f"{dim_name(actual)} value passed to {dim_name(expected)}-typed "
                    f"parameter {param!r} of {qname}()",
                )

    # -- statements -----------------------------------------------------
    def exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Assign):
            dim = self.dim_of(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, dim)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._assign_target(stmt.target, self.dim_of(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            target_dim = self.dim_of(stmt.target)
            value_dim = self.dim_of(stmt.value)
            if (
                isinstance(stmt.op, (ast.Add, ast.Sub))
                and target_dim is not None
                and value_dim is not None
                and DIMENSIONLESS not in (target_dim, value_dim)
                and target_dim != value_dim
            ):
                self._finding(
                    stmt,
                    "SIM201",
                    f"cross-dimension augmented assignment: {dim_name(target_dim)} "
                    f"{'+=' if isinstance(stmt.op, ast.Add) else '-='} {dim_name(value_dim)}",
                )
        elif isinstance(stmt, ast.Return):
            self.return_dims.append(self.dim_of(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self.dim_of(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self.dim_of(stmt.iter)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.While):
            self.dim_of(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.dim_of(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self.dim_of(item.context_expr)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.dim_of(child)

    def _assign_target(self, target: ast.AST, dim: Optional[Dim]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            return  # unpacking: no per-element dims
        key = self._key(target)
        if key is None:
            return
        if dim is None or dim == DIMENSIONLESS:
            # fall back to the naming convention; don't pin "x = 0"
            self.env.pop(key, None)
        else:
            name_dim = dim_from_name(key.rsplit(".", 1)[-1])
            if name_dim is not None and name_dim != dim:
                if magnitude_compatible(dim, name_dim):
                    # the name supplies the /s: bandwidth = 6.5 * GB
                    dim = name_dim
                else:
                    self._finding(
                        target,
                        "SIM201",
                        f"{dim_name(dim)} value assigned to {dim_name(name_dim)}-named "
                        f"variable {key!r}",
                    )
            self.env[key] = dim


def analyze_function_dims(
    func: FunctionInfo,
    syms: ModuleSymbols,
    table: SymbolTable,
    summaries: dict[str, DimSummary],
    collect: bool = False,
) -> tuple[DimSummary, list[TaintFinding]]:
    analysis = FunctionDimAnalysis(func, syms, table, summaries, collect)
    summary = analysis.run()
    seen: set[tuple] = set()
    unique: list[TaintFinding] = []
    for finding in analysis.findings:
        fkey = (finding.path, finding.line, finding.col, finding.rule_id, finding.message)
        if fkey not in seen:
            seen.add(fkey)
            unique.append(finding)
    return summary, unique
