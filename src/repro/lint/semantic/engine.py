"""Whole-program analysis driver.

Pipeline per run:

1. discover files (sorted), hash contents;
2. split into *changed* (hash miss vs cache) and *unchanged*;
3. build the module graph — imports come from cached records for
   unchanged files, from a fresh parse for changed ones;
4. re-analysis closure = changed modules + transitive dependents;
5. parse + build symbols for closure modules (``--jobs`` parallelizes
   this phase; results are merged in sorted order so worker count
   never changes output);
6. interprocedural fixpoint (taint + dimension summaries), seeded
   with cached summaries for out-of-closure modules;
7. final collect pass over closure functions → findings, filtered by
   per-file pragmas; merged with cached findings for untouched files;
8. cache write-back.

Diagnostics are sorted on (path, line, col, rule, message) and carry
the propagation chain, so output is byte-identical across repeated
runs, worker counts, and warm/cold cache states.
"""

from __future__ import annotations

import ast
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.lint.diagnostics import Diagnostic, Severity
from repro.lint.pragmas import Pragmas
from repro.lint.semantic.cache import AnalysisCache, FileRecord
from repro.lint.semantic.dimensions import DimSummary, analyze_function_dims, signature_dims
from repro.lint.semantic.modgraph import (
    ModuleGraph,
    ModuleInfo,
    collect_python_files,
    content_hash,
    extract_imports,
    module_name_for,
)
from repro.lint.semantic.symbols import ModuleSymbols, SymbolTable
from repro.lint.semantic.taint import TaintFinding, TaintSummary, analyze_function

#: Rule metadata: id -> (severity, summary).  The checker-side registry
#: mirrors these as descriptor Rule classes for --list-rules and pragma
#: validation; the analyses themselves live in this subpackage.
SEMANTIC_RULES: dict[str, tuple[Severity, str]] = {
    "SIM100": (Severity.ERROR, "nondeterministic value reaches a DES-visible sink"),
    "SIM101": (Severity.ERROR, "unsorted filesystem enumeration iterated directly"),
    "SIM102": (Severity.ERROR, "ordering keyed on id()"),
    "SIM103": (Severity.WARNING, "order-sensitive reduction over an unordered collection"),
    "SIM201": (Severity.ERROR, "cross-dimension arithmetic or comparison"),
    "SIM202": (Severity.WARNING, "bare magnitude passed to a dimension-typed parameter"),
}

_FIXPOINT_CAP = 20


def semantic_rule_ids() -> frozenset[str]:
    return frozenset(SEMANTIC_RULES)


@dataclass
class SemanticResult:
    """Outcome of one engine run, with incremental-cache provenance."""

    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: files parsed + analyzed this run (changed + reverse closure)
    analyzed: list[str] = field(default_factory=list)
    #: files whose findings were replayed from the cache
    from_cache: list[str] = field(default_factory=list)
    stats: dict = field(default_factory=dict)


@dataclass
class _FileState:
    path: str          # as given (diagnostic + cache key)
    sha: str
    source: Optional[str] = None
    tree: Optional[ast.Module] = None
    parse_error: Optional[SyntaxError] = None
    module: Optional[str] = None
    raw_imports: frozenset[str] = frozenset()


class SemanticAnalyzer:
    """Runs the whole-program analyses over a file set."""

    def __init__(
        self,
        select: Optional[Iterable[str]] = None,
        ignore: Optional[Iterable[str]] = None,
        cache_dir: "str | Path | None" = None,
        jobs: int = 1,
    ) -> None:
        known = semantic_rule_ids()
        selected = set(select) if select else set(known)
        selected &= known
        selected -= set(ignore or ())
        self.selected = frozenset(selected)
        self.cache = AnalysisCache(cache_dir)
        self.jobs = max(1, int(jobs))

    # ------------------------------------------------------------------
    def analyze_paths(
        self,
        paths: Sequence["str | Path"],
        restrict_to: Optional[Iterable[str]] = None,
    ) -> SemanticResult:
        """Analyze a file set; ``restrict_to`` (path strings) limits which
        files *report* diagnostics without shrinking the analysis scope."""
        files = collect_python_files(paths)
        self.cache.load()
        states = self._load_states(files)

        changed = [s for s in states if self.cache.lookup(s.path, s.sha) is None]
        unchanged = {s.path: self.cache.lookup(s.path, s.sha) for s in states}
        unchanged = {p: r for p, r in unchanged.items() if r is not None}

        # -- module graph (imports from cache where possible) -----------
        self._parse(changed)
        infos = []
        for state in states:
            record = unchanged.get(state.path)
            raw = (
                frozenset(record.raw_imports)
                if record is not None
                else state.raw_imports
            )
            state.module = module_name_for(Path(state.path))
            infos.append(
                ModuleInfo(
                    name=state.module, path=state.path, sha=state.sha, raw_imports=raw
                )
            )
        graph = ModuleGraph.build(infos)

        # -- closure: changed + everything that imports it --------------
        changed_modules = [s.module for s in changed if s.module]
        closure = graph.reverse_closure(changed_modules)
        by_module = {s.module: s for s in states}
        closure_states = [by_module[m] for m in sorted(closure) if m in by_module]
        self._parse(closure_states)

        # -- symbols for the closure ------------------------------------
        table = SymbolTable(graph)
        for state in closure_states:
            if state.tree is not None:
                table.add(ModuleSymbols.build(state.module, state.path, state.tree))

        # -- summaries: cached seeds for out-of-closure modules ---------
        taint_summaries: dict[str, TaintSummary] = {}
        dim_summaries: dict[str, DimSummary] = {}
        for state in states:
            if state.module in closure:
                continue
            record = unchanged.get(state.path)
            if record is None:
                continue
            for qname, taint in record.taint.items():
                taint_summaries[qname] = TaintSummary(returns_taint=taint)
            dim_summaries.update(record.dims)
        for func in table.iter_functions():
            taint_summaries.setdefault(func.qname, TaintSummary())
            dim_summaries.setdefault(
                func.qname,
                DimSummary(param_dims=signature_dims(func), params=tuple(func.params)),
            )

        self._fixpoint(table, taint_summaries, dim_summaries)

        # -- final collect pass -----------------------------------------
        findings_by_path: dict[str, list[TaintFinding]] = {s.path: [] for s in states}
        for func in table.iter_functions():
            syms = table.by_module[func.module]
            _, taint_findings = analyze_function(
                func, syms, table, taint_summaries, collect=True
            )
            _, dim_findings = analyze_function_dims(
                func, syms, table, dim_summaries, collect=True
            )
            findings_by_path.setdefault(func.path, []).extend(
                (*taint_findings, *dim_findings)
            )

        analyzed_paths = {s.path for s in closure_states}
        diagnostics: list[Diagnostic] = []
        result = SemanticResult()
        for state in states:
            if state.path in analyzed_paths:
                result.analyzed.append(state.path)
                if state.parse_error is not None:
                    file_findings = [self._parse_finding(state)]
                else:
                    file_findings = self._apply_pragmas(
                        state, findings_by_path.get(state.path, [])
                    )
                self.cache.store(
                    state.path,
                    self._record_for(state, table, taint_summaries, dim_summaries, file_findings),
                )
            else:
                result.from_cache.append(state.path)
                record = unchanged[state.path]
                file_findings = record.findings
            diagnostics.extend(
                self._to_diagnostic(f)
                for f in file_findings
                if f.rule_id in self.selected or f.rule_id == "SIM999"
            )

        self.cache.flush()
        if restrict_to is not None:
            allowed = set(restrict_to)
            diagnostics = [d for d in diagnostics if d.path in allowed]
        result.diagnostics = sorted(
            diagnostics, key=lambda d: (d.path, d.line, d.col, d.rule_id, d.message)
        )
        result.stats = {
            "files": len(states),
            "analyzed": len(result.analyzed),
            "from_cache": len(result.from_cache),
            "functions": len(table.functions),
            "jobs": self.jobs,
        }
        return result

    # ------------------------------------------------------------------
    # Phases
    # ------------------------------------------------------------------
    def _load_states(self, files: list[Path]) -> list[_FileState]:
        def load(path: Path) -> _FileState:
            try:
                data = path.read_bytes()
            except OSError:
                data = b""
            return _FileState(path=str(path), sha=content_hash(data))

        if self.jobs > 1 and len(files) > 1:
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                return list(pool.map(load, files))
        return [load(path) for path in files]

    def _parse(self, states: list[_FileState]) -> None:
        def parse(state: _FileState) -> None:
            if state.tree is not None or state.parse_error is not None:
                return
            try:
                source = Path(state.path).read_text(encoding="utf-8")
                state.source = source
                state.tree = ast.parse(source, filename=state.path)
            except SyntaxError as error:
                state.parse_error = error
            except (OSError, UnicodeDecodeError):
                state.parse_error = SyntaxError("cannot read file")
            if state.tree is not None:
                module = module_name_for(Path(state.path))
                state.raw_imports = extract_imports(state.tree, module)

        if self.jobs > 1 and len(states) > 1:
            with ThreadPoolExecutor(max_workers=self.jobs) as pool:
                list(pool.map(parse, states))
        else:
            for state in states:
                parse(state)

    def _fixpoint(
        self,
        table: SymbolTable,
        taint_summaries: dict[str, TaintSummary],
        dim_summaries: dict[str, DimSummary],
    ) -> None:
        funcs = list(table.iter_functions())
        for _ in range(_FIXPOINT_CAP):
            changed = False
            for func in funcs:
                syms = table.by_module[func.module]
                new_taint, _ = analyze_function(func, syms, table, taint_summaries)
                old_taint = taint_summaries[func.qname]
                if (new_taint.returns_taint is None) != (old_taint.returns_taint is None) or (
                    new_taint.returns_taint is not None
                    and old_taint.returns_taint is not None
                    and new_taint.returns_taint.chain != old_taint.returns_taint.chain
                ):
                    taint_summaries[func.qname] = new_taint
                    changed = True
                new_dims, _ = analyze_function_dims(func, syms, table, dim_summaries)
                if new_dims.return_dim != dim_summaries[func.qname].return_dim:
                    dim_summaries[func.qname] = new_dims
                    changed = True
            if not changed:
                break

    # ------------------------------------------------------------------
    # Assembly helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _apply_pragmas(
        state: _FileState, findings: list[TaintFinding]
    ) -> list[TaintFinding]:
        pragmas = Pragmas.scan(state.source or "")
        return [f for f in findings if not pragmas.suppresses(f.rule_id, f.line)]

    @staticmethod
    def _parse_finding(state: _FileState) -> TaintFinding:
        error = state.parse_error
        return TaintFinding(
            path=state.path,
            line=getattr(error, "lineno", 1) or 1,
            col=(getattr(error, "offset", 0) or 0) + 1,
            rule_id="SIM999",
            message=f"syntax error: {getattr(error, 'msg', error)}",
        )

    @staticmethod
    def _record_for(
        state: _FileState,
        table: SymbolTable,
        taint_summaries: dict[str, TaintSummary],
        dim_summaries: dict[str, DimSummary],
        findings: list[TaintFinding],
    ) -> FileRecord:
        syms = table.by_module.get(state.module)
        qnames = sorted(syms.functions) if syms is not None else []
        return FileRecord(
            sha=state.sha,
            raw_imports=sorted(state.raw_imports),
            taint={
                q: taint_summaries[q].returns_taint
                for q in qnames
                if taint_summaries.get(q) and taint_summaries[q].returns_taint is not None
            },
            dims={q: dim_summaries[q] for q in qnames if q in dim_summaries},
            findings=sorted(
                findings, key=lambda f: (f.path, f.line, f.col, f.rule_id, f.message)
            ),
        )

    @staticmethod
    def _to_diagnostic(finding: TaintFinding) -> Diagnostic:
        severity, _ = SEMANTIC_RULES.get(finding.rule_id, (Severity.ERROR, ""))
        return Diagnostic(
            path=finding.path,
            line=finding.line,
            col=finding.col,
            rule_id=finding.rule_id,
            message=finding.message,
            severity=severity,
            chain=finding.chain,
        )
