"""Incremental analysis cache.

One JSON document maps each analyzed file to its content hash, raw
import list, serialized interprocedural summaries, and post-pragma
findings.  On a warm run the engine re-parses and re-analyzes only
files whose hash changed plus their reverse-dependency closure; for
everything else the cached summaries feed the fixpoint and the cached
findings are replayed verbatim — so warm diagnostics are identical to
a cold run by construction.

The cache is advisory: version or schema mismatches, unreadable files,
and partial records all degrade to "treat as changed", never to wrong
results.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

from repro.lint.semantic.dimensions import Dim, DimSummary
from repro.lint.semantic.taint import Taint, TaintFinding, TaintSummary

#: Bump when analysis semantics change — stale caches self-invalidate.
CACHE_SCHEMA = "repro-lint-semantic/1"

CACHE_FILENAME = "semantic-cache.json"


def serialize_taint(taint: Optional[Taint]) -> Optional[dict[str, Any]]:
    if taint is None:
        return None
    return {
        "desc": taint.desc,
        "path": taint.path,
        "line": taint.line,
        "chain": list(taint.chain),
    }


def deserialize_taint(doc: Optional[dict[str, Any]]) -> Optional[Taint]:
    if doc is None:
        return None
    return Taint(
        desc=doc["desc"], path=doc["path"], line=doc["line"], chain=tuple(doc["chain"])
    )


def serialize_dim(dim: Optional[Dim]) -> Optional[list[list]]:
    if dim is None:
        return None
    return [[base, exp] for base, exp in dim]


def deserialize_dim(doc: "Optional[list]") -> Optional[Dim]:
    if doc is None:
        return None
    return tuple((base, exp) for base, exp in doc)


def serialize_finding(finding: TaintFinding) -> dict[str, Any]:
    return {
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "rule": finding.rule_id,
        "message": finding.message,
        "chain": list(finding.chain),
    }


def deserialize_finding(doc: dict[str, Any]) -> TaintFinding:
    return TaintFinding(
        path=doc["path"],
        line=doc["line"],
        col=doc["col"],
        rule_id=doc["rule"],
        message=doc["message"],
        chain=tuple(doc.get("chain", ())),
    )


class FileRecord:
    """Cached facts for one file."""

    def __init__(
        self,
        sha: str,
        raw_imports: list[str],
        taint: dict[str, Optional[Taint]],
        dims: dict[str, DimSummary],
        findings: list[TaintFinding],
    ) -> None:
        self.sha = sha
        self.raw_imports = raw_imports
        self.taint = taint
        self.dims = dims
        self.findings = findings

    def to_doc(self) -> dict[str, Any]:
        return {
            "sha": self.sha,
            "imports": sorted(self.raw_imports),
            "taint": {
                qname: serialize_taint(taint)
                for qname, taint in sorted(self.taint.items())
            },
            "dims": {
                qname: {
                    "order": list(summary.params),
                    "params": {
                        p: serialize_dim(d) for p, d in sorted(summary.param_dims.items())
                    },
                    "return": serialize_dim(summary.return_dim),
                }
                for qname, summary in sorted(self.dims.items())
            },
            "findings": [serialize_finding(f) for f in self.findings],
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "FileRecord":
        taint = {
            qname: deserialize_taint(t) for qname, t in doc.get("taint", {}).items()
        }
        dims = {
            qname: DimSummary(
                param_dims={
                    p: deserialize_dim(d)
                    for p, d in entry.get("params", {}).items()
                    if d is not None
                },
                return_dim=deserialize_dim(entry.get("return")),
                params=tuple(entry.get("order", ())),
            )
            for qname, entry in doc.get("dims", {}).items()
        }
        return cls(
            sha=doc["sha"],
            raw_imports=list(doc.get("imports", [])),
            taint=taint,
            dims=dims,
            findings=[deserialize_finding(f) for f in doc.get("findings", [])],
        )


class AnalysisCache:
    """Load/store the per-file record map, keyed by resolved path."""

    def __init__(self, directory: "str | Path | None") -> None:
        self.directory = Path(directory) if directory is not None else None
        self.records: dict[str, FileRecord] = {}
        self.loaded = False

    @property
    def path(self) -> Optional[Path]:
        return self.directory / CACHE_FILENAME if self.directory else None

    def load(self) -> None:
        self.loaded = True
        if self.path is None or not self.path.is_file():
            return
        try:
            doc = json.loads(self.path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if doc.get("schema") != CACHE_SCHEMA:
            return
        for key, entry in doc.get("files", {}).items():
            try:
                self.records[key] = FileRecord.from_doc(entry)
            except (KeyError, TypeError, ValueError):
                continue

    def lookup(self, key: str, sha: str) -> Optional[FileRecord]:
        record = self.records.get(key)
        if record is not None and record.sha == sha:
            return record
        return None

    def store(self, key: str, record: FileRecord) -> None:
        self.records[key] = record

    def flush(self) -> None:
        if self.path is None:
            return
        self.directory.mkdir(parents=True, exist_ok=True)
        doc = {
            "schema": CACHE_SCHEMA,
            "files": {key: self.records[key].to_doc() for key in sorted(self.records)},
        }
        tmp = self.path.with_suffix(".tmp")
        tmp.write_text(json.dumps(doc, indent=1, sort_keys=True), encoding="utf-8")
        tmp.replace(self.path)
