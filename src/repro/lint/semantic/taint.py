"""Determinism taint analysis (SIM100-series).

A *source* produces a value whose content or ordering differs between
runs of the same scenario + seed (set iteration order, unsorted
directory listings, wall clock, global RNG, ``id()``).  A *sink* is
DES-visible state: event scheduling, trace/telemetry export, sweep
cache-key construction.  Any tainted value reaching a sink argument is
a reproducibility bug — the simulation still passes its tests, the
traces just stop being bit-identical.

The analysis is interprocedural: each function gets a summary (does it
*return* a tainted value?), summaries propagate callee → caller along
the project call graph to a fixpoint, and findings carry the full
propagation chain so a two-hop bug reads as a path, not a location.

Sanitizers launder taint: ``sorted()`` pins an order, ``len()``/
``min()``/``max()`` collapse to order-insensitive values, ``x.sort()``
cleans ``x`` in place.  ``sum(1 for _ in xs)`` is recognized as a
counting idiom (order-insensitive) even over unordered input.

Rules:

* **SIM100** — tainted value reaches a DES-visible sink (chain shown);
* **SIM101** — direct iteration over an unsorted filesystem
  enumeration (``os.listdir``, ``Path.iterdir/glob/rglob``);
* **SIM102** — ``id()``-keyed ordering (``sorted(..., key=id)``);
* **SIM103** — order-sensitive reduction (``sum``/``join``/``reduce``)
  over an unordered collection.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, replace
from typing import Optional

from repro.lint.semantic.symbols import FunctionInfo, ModuleSymbols, SymbolTable

# ----------------------------------------------------------------------
# Catalogs
# ----------------------------------------------------------------------

#: Fully-qualified calls producing run-to-run-varying values.
SOURCE_CALLS: dict[str, str] = {
    "os.listdir": "unsorted os.listdir() enumeration",
    "os.scandir": "unsorted os.scandir() enumeration",
    "os.walk": "unsorted os.walk() enumeration",
    "glob.glob": "unsorted glob.glob() enumeration",
    "glob.iglob": "unsorted glob.iglob() enumeration",
    "os.urandom": "os.urandom() entropy",
    "uuid.uuid1": "uuid.uuid1() wall-clock/MAC value",
    "uuid.uuid4": "uuid.uuid4() entropy",
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "time.monotonic": "wall-clock read",
    "time.perf_counter": "wall-clock read",
    "id": "id()-derived value (allocator-dependent)",
}

#: Method names that enumerate the filesystem in arbitrary order
#: (``some_path.iterdir()``) — matched on the attribute when the
#: receiver's type is unknown.
FS_ATTR_SOURCES = frozenset({"iterdir", "glob", "rglob", "scandir"})

#: ``random.<attr>()`` draws on the process-global RNG except for
#: explicit generator construction.
RANDOM_OK = frozenset({"random.Random", "random.SystemRandom", "random.seed"})

#: Builtins whose result is order-insensitive (or order-pinning).
SANITIZERS = frozenset(
    {"sorted", "len", "min", "max", "abs", "all", "any", "bool", "repr", "frozenset", "set"}
)

#: Fully-qualified sink calls: DES-visible state.
SINK_CALLS: dict[str, str] = {
    "heapq.heappush": "event-heap insertion",
    "heapq.heapify": "event-heap construction",
    "hashlib.sha256": "cache-key construction",
    "hashlib.sha1": "cache-key construction",
    "hashlib.md5": "cache-key construction",
    "hashlib.blake2b": "cache-key construction",
    "hashlib.new": "cache-key construction",
    "json.dump": "serialized export",
    "json.dumps": "serialized export",
    "pickle.dump": "serialized export",
    "pickle.dumps": "serialized export",
}

#: Method-name sinks, matched when the receiver cannot be resolved to a
#: project function (``env.schedule(...)``, ``writer.writerow(...)``).
SINK_METHODS: dict[str, str] = {
    "schedule": "event scheduling",
    "process": "DES process creation",
    "succeed": "event completion",
    "writerow": "CSV export",
    "writerows": "CSV export",
    "heappush": "event-heap insertion",
}

#: Project modules whose entire public surface is a sink: calling into
#: them hands the argument to trace/telemetry export or cache keying.
SINK_MODULES: dict[str, str] = {
    "repro.obs.exporters": "telemetry export",
    "repro.traces.events": "trace export",
    "repro.traces.gantt": "trace export",
    "repro.sweep.cache": "sweep cache-key construction",
}

#: Names that may be collection-mutating with tainted payloads.
_MUTATORS = frozenset({"append", "add", "extend", "insert", "update", "push", "setdefault", "appendleft"})


@dataclass(frozen=True)
class Taint:
    """Provenance of one nondeterministic value."""

    desc: str
    path: str
    line: int
    chain: tuple[str, ...] = ()

    @classmethod
    def source(cls, desc: str, path: str, line: int) -> "Taint":
        return cls(desc=desc, path=path, line=line, chain=(f"{desc} at {path}:{line}",))

    def via_call(self, callee: str, path: str, line: int) -> "Taint":
        hop = f"tainted return of {callee}, called at {path}:{line}"
        return replace(self, chain=(*self.chain, hop))


@dataclass
class TaintSummary:
    """Interprocedural facts about one function."""

    returns_taint: Optional[Taint] = None


@dataclass(frozen=True)
class TaintFinding:
    """One raw finding, pre-Diagnostic (the engine owns rendering)."""

    path: str
    line: int
    col: int
    rule_id: str
    message: str
    chain: tuple[str, ...] = ()


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


def _is_counting_genexp(node: ast.Call) -> bool:
    """``sum(1 for _ in xs)`` — order-insensitive counting idiom."""
    if not (isinstance(node.func, ast.Name) and node.func.id == "sum"):
        return False
    return (
        len(node.args) == 1
        and isinstance(node.args[0], ast.GeneratorExp)
        and isinstance(node.args[0].elt, ast.Constant)
    )


class FunctionTaintAnalysis:
    """Single-function abstract interpretation over taint state.

    ``collect=False`` passes only compute the summary (used during the
    interprocedural fixpoint); the final ``collect=True`` pass also
    records findings with complete chains.
    """

    def __init__(
        self,
        func: FunctionInfo,
        syms: ModuleSymbols,
        table: SymbolTable,
        summaries: dict[str, TaintSummary],
        collect: bool,
    ) -> None:
        self.func = func
        self.syms = syms
        self.table = table
        self.summaries = summaries
        self.collect = collect
        self.path = func.path
        self.env: dict[str, Taint] = {}
        self.unordered: set[str] = set()
        self.findings: list[TaintFinding] = []
        self.summary = TaintSummary()

    # -- driver ---------------------------------------------------------
    def run(self) -> TaintSummary:
        self.exec_block(self.func.node.body)
        return self.summary

    # -- helpers --------------------------------------------------------
    def _key(self, node: ast.AST) -> Optional[str]:
        """Dotted key for env tracking (``x``, ``self._queue``)."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None

    def _finding(self, node: ast.AST, rule_id: str, message: str, chain: tuple[str, ...] = ()) -> None:
        if not self.collect:
            return
        self.findings.append(
            TaintFinding(
                path=self.path,
                line=getattr(node, "lineno", self.func.lineno),
                col=getattr(node, "col_offset", 0) + 1,
                rule_id=rule_id,
                message=message,
                chain=chain,
            )
        )

    def _merge(self, key: Optional[str], taint: Optional[Taint]) -> None:
        if key is None:
            return
        if taint is None:
            self.env.pop(key, None)
        elif key not in self.env:
            self.env[key] = taint

    def _iteration_taint(self, iter_node: ast.AST) -> Optional[Taint]:
        """Taint carried by iterating ``iter_node`` (order included)."""
        if _is_set_expr(iter_node):
            return Taint.source(
                "unsorted set iteration", self.path, getattr(iter_node, "lineno", 1)
            )
        key = self._key(iter_node)
        if key is not None and key in self.unordered:
            return Taint.source(
                f"unsorted iteration over set {key!r}", self.path, getattr(iter_node, "lineno", 1)
            )
        fs = self._fs_enumeration(iter_node)
        if fs is not None:
            return Taint.source(fs, self.path, getattr(iter_node, "lineno", 1))
        return self.taint_of(iter_node)

    def _fs_enumeration(self, node: ast.AST) -> Optional[str]:
        """Description if ``node`` is an unsorted filesystem enumeration."""
        if not isinstance(node, ast.Call):
            return None
        resolved = self.syms.resolve_dotted(node.func)
        if resolved in SOURCE_CALLS and resolved.split(".")[0] in ("os", "glob"):
            return SOURCE_CALLS[resolved]
        if isinstance(node.func, ast.Attribute) and node.func.attr in FS_ATTR_SOURCES:
            return f"unsorted .{node.func.attr}() enumeration"
        return None

    # -- expressions ----------------------------------------------------
    def taint_of(self, node: Optional[ast.AST]) -> Optional[Taint]:
        if node is None or isinstance(node, ast.Constant):
            return None
        if isinstance(node, (ast.Name, ast.Attribute)):
            key = self._key(node)
            return self.env.get(key) if key is not None else None
        if isinstance(node, ast.Call):
            return self._call_taint(node)
        if isinstance(node, ast.BinOp):
            return self.taint_of(node.left) or self.taint_of(node.right)
        if isinstance(node, ast.BoolOp):
            return next((t for v in node.values if (t := self.taint_of(v))), None)
        if isinstance(node, ast.Compare):
            return self.taint_of(node.left) or next(
                (t for c in node.comparators if (t := self.taint_of(c))), None
            )
        if isinstance(node, ast.UnaryOp):
            return self.taint_of(node.operand)
        if isinstance(node, (ast.Subscript, ast.Starred, ast.Await, ast.FormattedValue)):
            return self.taint_of(node.value)
        if isinstance(node, ast.IfExp):
            self.taint_of(node.test)
            return self.taint_of(node.body) or self.taint_of(node.orelse)
        if isinstance(node, ast.JoinedStr):
            return next((t for v in node.values if (t := self.taint_of(v))), None)
        if isinstance(node, (ast.Tuple, ast.List)):
            return next((t for v in node.elts if (t := self.taint_of(v))), None)
        if isinstance(node, ast.Set):
            for v in node.elts:
                self.taint_of(v)
            return None  # sets erase order (iterating them re-taints)
        if isinstance(node, ast.Dict):
            return next(
                (
                    t
                    for v in (*node.keys, *node.values)
                    if v is not None and (t := self.taint_of(v))
                ),
                None,
            )
        if isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.SetComp, ast.DictComp)):
            return self._comp_taint(node)
        if isinstance(node, ast.NamedExpr):
            taint = self.taint_of(node.value)
            self._merge(self._key(node.target), taint)
            return taint
        if isinstance(node, ast.Lambda):
            return None
        if isinstance(node, ast.Yield):
            taint = self.taint_of(node.value)
            self._note_return(taint)
            return None
        if isinstance(node, ast.YieldFrom):
            return self.taint_of(node.value)
        # conservative default: any tainted child taints the expression
        return next(
            (t for child in ast.iter_child_nodes(node) if (t := self.taint_of(child))),
            None,
        )

    def _comp_taint(self, node: ast.AST) -> Optional[Taint]:
        saved_env = dict(self.env)
        order_taint: Optional[Taint] = None
        for gen in node.generators:
            gen_taint = self._iteration_taint(gen.iter)
            order_taint = order_taint or gen_taint
            for name in ast.walk(gen.target):
                if isinstance(name, ast.Name):
                    self._merge(name.id, gen_taint)
            for cond in gen.ifs:
                self.taint_of(cond)
        if isinstance(node, ast.DictComp):
            elt_taint = self.taint_of(node.key) or self.taint_of(node.value)
        else:
            elt_taint = self.taint_of(node.elt)
        self.env = saved_env
        if isinstance(node, ast.SetComp):
            return elt_taint  # the set erases order; element taint remains
        return elt_taint or order_taint

    def _call_taint(self, node: ast.Call) -> Optional[Taint]:
        arg_taints: list[Optional[Taint]] = [self.taint_of(a) for a in node.args]
        arg_taints += [self.taint_of(k.value) for k in node.keywords]
        any_arg = next((t for t in arg_taints if t), None)

        resolved = self.syms.resolve_dotted(node.func)
        self._check_id_keyed_sort(node, resolved)
        self._check_unordered_reduction(node, resolved)

        # Sanitizers: order-pinning / order-insensitive builtins.  Only
        # when the bare name is not shadowed by an import or local def.
        if resolved in SANITIZERS or _is_counting_genexp(node):
            return None

        # Sources ------------------------------------------------------
        if resolved in SOURCE_CALLS:
            return Taint.source(SOURCE_CALLS[resolved], self.path, node.lineno)
        if resolved is not None and resolved.startswith("random.") and resolved not in RANDOM_OK:
            return Taint.source(f"{resolved}() global-RNG draw", self.path, node.lineno)

        # Project calls ------------------------------------------------
        target = self.table.resolve_call(self.syms, node, self.func.class_name)
        taint = any_arg
        callee_qname: Optional[str] = None
        if target is not None:
            callee_qname = target.qname
        elif resolved is not None and resolved in self.summaries:
            # out-of-closure project callee on a warm incremental run:
            # the cached summary stands in for the unparsed function
            callee_qname = resolved
        if callee_qname is not None:
            summary = self.summaries.get(callee_qname)
            if summary is not None and summary.returns_taint is not None:
                taint = summary.returns_taint.via_call(callee_qname, self.path, node.lineno)

        # Sinks: only tainted *arguments* flowing in count (a tainted
        # call result is the caller's problem, reported where it lands).
        sink_desc = self._sink_desc(node, resolved, target)
        if sink_desc is not None and any_arg is not None:
            name = resolved or (
                node.func.attr if isinstance(node.func, ast.Attribute) else "<call>"
            )
            self._finding(
                node,
                "SIM100",
                f"nondeterministic value ({any_arg.desc}) reaches "
                f"{sink_desc} sink {name}()",
                chain=(
                    *any_arg.chain,
                    f"consumed by {sink_desc} sink at {self.path}:{node.lineno}",
                ),
            )
        return taint

    def _sink_desc(
        self,
        node: ast.Call,
        resolved: Optional[str],
        target: Optional[FunctionInfo],
    ) -> Optional[str]:
        if resolved in SINK_CALLS:
            return SINK_CALLS[resolved]
        if target is not None:
            callee_module: Optional[str] = target.module
        elif resolved is not None:
            callee_module = resolved.rpartition(".")[0]
        else:
            callee_module = None
        if callee_module in SINK_MODULES:
            return SINK_MODULES[callee_module]
        # method-name heuristic only for calls that are not project
        # functions (resolved project callees were handled above and
        # must behave the same whether or not they are in the closure)
        if (
            target is None
            and (resolved is None or resolved not in self.summaries)
            and isinstance(node.func, ast.Attribute)
        ):
            return SINK_METHODS.get(node.func.attr)
        return None

    def _check_id_keyed_sort(self, node: ast.Call, resolved: Optional[str]) -> None:
        """SIM102: sorted(..., key=id) orders by memory address."""
        is_sort_call = resolved in ("sorted", "min", "max") or (
            isinstance(node.func, ast.Attribute) and node.func.attr == "sort"
        )
        if not is_sort_call:
            return
        for kw in node.keywords:
            if kw.arg != "key":
                continue
            keyed_by_id = (isinstance(kw.value, ast.Name) and kw.value.id == "id") or (
                isinstance(kw.value, ast.Lambda)
                and isinstance(kw.value.body, ast.Call)
                and isinstance(kw.value.body.func, ast.Name)
                and kw.value.body.func.id == "id"
            )
            if keyed_by_id:
                self._finding(
                    node,
                    "SIM102",
                    "ordering keyed on id() depends on allocator layout, "
                    "not on simulation state",
                )

    def _check_unordered_reduction(self, node: ast.Call, resolved: Optional[str]) -> None:
        """SIM103: order-sensitive reduction over an unordered collection."""
        candidates: list[ast.AST] = []
        if resolved in ("sum", "functools.reduce", "math.fsum") and node.args:
            if _is_counting_genexp(node):
                return
            candidates.append(node.args[-1] if resolved == "functools.reduce" else node.args[0])
        elif isinstance(node.func, ast.Attribute) and node.func.attr == "join" and node.args:
            candidates.append(node.args[0])
        for arg in candidates:
            unordered = _is_set_expr(arg) or (
                (key := self._key(arg)) is not None and key in self.unordered
            )
            if isinstance(arg, ast.GeneratorExp) and arg.generators:
                unordered = unordered or _is_set_expr(arg.generators[0].iter)
            if unordered:
                self._finding(
                    node,
                    "SIM103",
                    "order-sensitive reduction over an unordered collection "
                    "(float addition and string joins do not commute)",
                )

    # -- statements -----------------------------------------------------
    def exec_block(self, stmts: list[ast.stmt]) -> None:
        for stmt in stmts:
            self.exec_stmt(stmt)

    def exec_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return  # nested scopes are analyzed as their own functions
        if isinstance(stmt, ast.Assign):
            taint = self.taint_of(stmt.value)
            for target in stmt.targets:
                self._assign_target(target, stmt.value, taint)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._assign_target(stmt.target, stmt.value, self.taint_of(stmt.value))
        elif isinstance(stmt, ast.AugAssign):
            taint = self.taint_of(stmt.value)
            key = self._key(stmt.target)
            if taint is not None:
                self._merge(key, taint)
        elif isinstance(stmt, ast.Return):
            self._note_return(self.taint_of(stmt.value))
        elif isinstance(stmt, ast.Expr):
            self._exec_expr_stmt(stmt.value)
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._exec_for(stmt)
        elif isinstance(stmt, ast.While):
            self.taint_of(stmt.test)
            for _ in range(2):
                self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, ast.If):
            self.taint_of(stmt.test)
            self.exec_block(stmt.body)
            self.exec_block(stmt.orelse)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                taint = self.taint_of(item.context_expr)
                if item.optional_vars is not None:
                    self._merge(self._key(item.optional_vars), taint)
            self.exec_block(stmt.body)
        elif isinstance(stmt, ast.Try):
            self.exec_block(stmt.body)
            for handler in stmt.handlers:
                self.exec_block(handler.body)
            self.exec_block(stmt.orelse)
            self.exec_block(stmt.finalbody)
        elif isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.taint_of(child)
        elif isinstance(stmt, ast.Match):
            self.taint_of(stmt.subject)
            for case in stmt.cases:
                self.exec_block(case.body)

    def _assign_target(self, target: ast.AST, value: ast.AST, taint: Optional[Taint]) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._assign_target(elt, value, taint)
            return
        key = self._key(target)
        if key is None:
            return
        if taint is None:
            self.env.pop(key, None)
        else:
            self.env[key] = taint
        if _is_set_expr(value):
            self.unordered.add(key)
        else:
            self.unordered.discard(key)

    def _exec_expr_stmt(self, value: ast.expr) -> None:
        self.taint_of(value)
        if not isinstance(value, ast.Call) or not isinstance(value.func, ast.Attribute):
            return
        base_key = self._key(value.func.value)
        attr = value.func.attr
        if base_key is None:
            return
        if attr == "sort":
            self.env.pop(base_key, None)  # in-place order pin
            return
        if attr in _MUTATORS:
            arg_taint = next(
                (t for a in value.args if (t := self.taint_of(a))),
                next((t for k in value.keywords if (t := self.taint_of(k.value))), None),
            )
            self._merge(base_key, arg_taint)
            if attr == "add":
                self.unordered.add(base_key)

    def _exec_for(self, stmt: "ast.For | ast.AsyncFor") -> None:
        iter_taint = self._iteration_taint(stmt.iter)
        fs_desc = self._fs_enumeration(stmt.iter)
        if fs_desc is not None:
            self._finding(
                stmt.iter,
                "SIM101",
                f"{fs_desc} iterated directly; wrap in sorted() to pin order",
            )
        for name in ast.walk(stmt.target):
            if isinstance(name, ast.Name):
                if iter_taint is None:
                    self.env.pop(name.id, None)
                else:
                    self.env[name.id] = iter_taint
        for _ in range(2):  # second pass reaches loop-carried taint
            self.exec_block(stmt.body)
        self.exec_block(stmt.orelse)

    def _note_return(self, taint: Optional[Taint]) -> None:
        if taint is not None and self.summary.returns_taint is None:
            self.summary.returns_taint = taint


def analyze_function(
    func: FunctionInfo,
    syms: ModuleSymbols,
    table: SymbolTable,
    summaries: dict[str, TaintSummary],
    collect: bool = False,
) -> tuple[TaintSummary, list[TaintFinding]]:
    """Run the local analysis; returns (summary, findings-if-collecting)."""
    analysis = FunctionTaintAnalysis(func, syms, table, summaries, collect)
    summary = analysis.run()
    # deduplicate repeats from the two-pass loop bodies
    seen: set[tuple] = set()
    unique: list[TaintFinding] = []
    for finding in analysis.findings:
        fkey = (finding.path, finding.line, finding.col, finding.rule_id, finding.message)
        if fkey not in seen:
            seen.add(fkey)
            unique.append(finding)
    return summary, unique
