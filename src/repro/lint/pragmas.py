"""Suppression pragmas.

Two spellings of the marker are accepted — ``lint:`` (historical) and
``repro-lint:`` (matches the CLI name) — and two forms, both taking a
comma-separated rule list (a bare ``lint: ignore`` suppresses every
rule on that line — allowed, but discouraged):

* line pragma — suppresses findings reported *on that physical line*::

      start = clock()  # repro-lint: ignore[SIM001, SIM100] - harness progress

* file pragma — suppresses rules for the whole file; put it near the
  top with a justification::

      # lint: ignore-file[SIM010] - this module *defines* the unit constants

Rule ids named in a pragma are validated against the registry: an
unknown id is reported as a diagnostic (``SIM998``) rather than
silently suppressing nothing — a typo'd pragma that appears to work is
worse than no pragma at all.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

_LINE_RE = re.compile(r"#\s*(?:repro-)?lint:\s*ignore(?:\[(?P<rules>[A-Za-z0-9,\s]+)\])?")
_FILE_RE = re.compile(r"#\s*(?:repro-)?lint:\s*ignore-file\[(?P<rules>[A-Za-z0-9,\s]+)\]")

#: Pseudo-rule for pragmas naming unknown rule ids.
UNKNOWN_PRAGMA_RULE_ID = "SIM998"


def _split(rules: "str | None") -> frozenset[str]:
    if rules is None:
        return frozenset()  # bare pragma: matches every rule
    return frozenset(r.strip() for r in rules.split(",") if r.strip())


@dataclass(frozen=True)
class PragmaEntry:
    """One pragma occurrence, kept for rule-id validation."""

    line: int
    rules: frozenset[str]
    is_file: bool


@dataclass(frozen=True)
class Pragmas:
    """Parsed suppressions for one file."""

    #: line number -> rule IDs suppressed there (empty set = all rules)
    line_rules: dict[int, frozenset[str]]
    #: rule IDs suppressed for the entire file
    file_rules: frozenset[str]
    #: every pragma seen, in order, for validation
    entries: tuple[PragmaEntry, ...] = field(default=())

    @classmethod
    def scan(cls, source: str) -> "Pragmas":
        line_rules: dict[int, frozenset[str]] = {}
        file_rules: set[str] = set()
        entries: list[PragmaEntry] = []
        bare_lines: set[int] = set()  # a bare `ignore` beats scoped ones
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "#" not in line:
                continue
            file_match = _FILE_RE.search(line)
            if file_match:
                rules = _split(file_match.group("rules"))
                file_rules |= rules
                entries.append(PragmaEntry(line=lineno, rules=rules, is_file=True))
                continue
            for line_match in _LINE_RE.finditer(line):
                rules = _split(line_match.group("rules"))
                entries.append(PragmaEntry(line=lineno, rules=rules, is_file=False))
                if not rules:
                    bare_lines.add(lineno)
                if lineno in bare_lines:
                    line_rules[lineno] = frozenset()
                else:
                    line_rules[lineno] = line_rules.get(lineno, frozenset()) | rules
        return cls(
            line_rules=line_rules,
            file_rules=frozenset(file_rules),
            entries=tuple(entries),
        )

    def suppresses(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_rules:
            return True
        rules = self.line_rules.get(line)
        if rules is None:
            return False
        return not rules or rule_id in rules

    def unknown_rule_ids(self, known: "set[str] | frozenset[str]") -> list[tuple[int, str]]:
        """(line, rule_id) for every pragma id not in ``known``, sorted.

        Unknown ids are *not* honored as suppressions elsewhere only by
        accident (nothing emits them); surfacing them as diagnostics
        turns a silent no-op typo into an actionable finding.
        """
        unknown: set[tuple[int, str]] = set()
        for entry in self.entries:
            for rule_id in entry.rules:
                if rule_id not in known:
                    unknown.add((entry.line, rule_id))
        return sorted(unknown)
