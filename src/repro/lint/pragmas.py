"""Suppression pragmas.

Two forms, both requiring an explicit rule list (a bare ``lint: ignore``
suppresses every rule on that line — allowed, but discouraged):

* line pragma — suppresses findings reported *on that physical line*::

      start = time.time()  # lint: ignore[SIM001] - harness progress message

* file pragma — suppresses a rule for the whole file; put it near the
  top with a justification::

      # lint: ignore-file[SIM010] - this module *defines* the unit constants
"""

from __future__ import annotations

import re
from dataclasses import dataclass

_LINE_RE = re.compile(r"#\s*lint:\s*ignore(?:\[(?P<rules>[A-Z0-9,\s]+)\])?")
_FILE_RE = re.compile(r"#\s*lint:\s*ignore-file\[(?P<rules>[A-Z0-9,\s]+)\]")


def _split(rules: "str | None") -> frozenset[str]:
    if rules is None:
        return frozenset()  # bare pragma: matches every rule
    return frozenset(r.strip() for r in rules.split(",") if r.strip())


@dataclass(frozen=True)
class Pragmas:
    """Parsed suppressions for one file."""

    #: line number -> rule IDs suppressed there (empty set = all rules)
    line_rules: dict[int, frozenset[str]]
    #: rule IDs suppressed for the entire file
    file_rules: frozenset[str]

    @classmethod
    def scan(cls, source: str) -> "Pragmas":
        line_rules: dict[int, frozenset[str]] = {}
        file_rules: set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            if "#" not in line:
                continue
            file_match = _FILE_RE.search(line)
            if file_match:
                file_rules |= _split(file_match.group("rules"))
                continue
            line_match = _LINE_RE.search(line)
            if line_match:
                line_rules[lineno] = _split(line_match.group("rules"))
        return cls(line_rules=line_rules, file_rules=frozenset(file_rules))

    def suppresses(self, rule_id: str, line: int) -> bool:
        if rule_id in self.file_rules:
            return True
        rules = self.line_rules.get(line)
        if rules is None:
            return False
        return not rules or rule_id in rules
