"""High-fidelity platform emulation — the "real machine" stand-in.

The paper's methodology is: *measure* SWarp on Cori/Summit, *calibrate*
a deliberately simple simulator from those measurements, then *quantify*
the simple model's error.  We have no Cori or Summit, so this package
provides the measured side: an emulator built on the same DES core but
with the effects the paper's simple model deliberately omits —

* per-file metadata latency (DataWarp namespace operations; dominant for
  small files, catastrophic in striped mode);
* POSIX single-stream bandwidth caps ("the effective bandwidth achieved
  by this workflow implementation is well below the peak");
* concurrency penalties on the BB fabric (sharing interference);
* sub-linear task scaling (true Amdahl alphas + beyond-8-cores
  degradation) and memory-bandwidth compute interference;
* seeded stochastic run-to-run interference (striped ≈ 15% spread,
  on-node nearly stable — Figure 8);
* the reproducible striped-mode anomaly around 75% staged input
  (Figure 4), which the paper could not explain and the simple model
  does not capture.

Every constant lives in :mod:`repro.emulation.calibration`, annotated
with the paper observation it encodes.
"""

from repro.emulation.calibration import (
    EmulatedTaskTruth,
    EmulationEffects,
    CORI_EFFECTS,
    SUMMIT_EFFECTS,
    SWARP_TRUTH,
    effects_for,
)
from repro.emulation.compute import EmulatedComputeService
from repro.emulation.trials import TrialStats, run_trials

__all__ = [
    "CORI_EFFECTS",
    "EmulatedComputeService",
    "EmulatedTaskTruth",
    "EmulationEffects",
    "SUMMIT_EFFECTS",
    "SWARP_TRUTH",
    "TrialStats",
    "effects_for",
    "run_trials",
]
