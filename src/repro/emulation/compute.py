"""Emulated compute service: true alphas, interference, core degradation."""

from __future__ import annotations

from typing import Mapping, Optional

from repro.compute.service import ComputeService
from repro.emulation.calibration import EmulatedTaskTruth, EmulationEffects
from repro.model.equations import amdahl_time
from repro.platform.runtime import Platform
from repro.workflow.model import Task


class EmulatedComputeService(ComputeService):
    """Compute service with the emulator's ground-truth timing.

    Differences from the plain service:

    * tasks run with their *true* Amdahl alpha (from the per-group truth
      table), not the paper's perfect-speedup assumption;
    * beyond-8-cores degradation for Resample-like tasks (Figure 6);
    * memory-bandwidth interference: compute slows by
      ``1 + c × other_busy_cores`` on the host (drives Figure 7's
      slowdown together with BB contention).
    """

    def __init__(
        self,
        platform: Platform,
        hosts: Optional[list[str]] = None,
        effects: Optional[EmulationEffects] = None,
        truth: Optional[Mapping[str, EmulatedTaskTruth]] = None,
    ) -> None:
        super().__init__(platform, hosts, use_amdahl_alpha=True)
        if effects is None:
            raise ValueError("EmulatedComputeService requires effects")
        self.effects = effects
        self.truth = dict(truth or {})

    def compute_time(self, task: Task, host: str, cores: Optional[int] = None) -> float:
        p = cores if cores is not None else task.cores
        p = min(p, self.allocator(host).total_cores)
        speed = self.platform.host(host).core_speed

        truth = self.truth.get(task.group)
        if truth is not None:
            tc1 = truth.flops() / speed
            alpha = truth.alpha
            degrades = truth.degrades_beyond_8
        else:
            tc1 = task.flops / speed
            alpha = task.alpha
            degrades = False

        base = amdahl_time(tc1, p, alpha)
        if degrades and p > 8:
            base *= 1.0 + self.effects.beyond8_degradation * (p - 8)

        # Interference from other tasks busy on the same host right now.
        busy_others = max(0, self.allocator(host).used_cores - p)
        base *= 1.0 + self.effects.compute_interference * busy_others
        return base
