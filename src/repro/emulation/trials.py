"""Repeated-trial runner with seeded interference (paper: 15 runs/point)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np


@dataclass(frozen=True)
class TrialStats:
    """Summary statistics over repeated emulated runs."""

    values: tuple[float, ...]

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def std(self) -> float:
        return float(np.std(self.values, ddof=1)) if self.n > 1 else 0.0

    @property
    def min(self) -> float:
        return float(np.min(self.values))

    @property
    def max(self) -> float:
        return float(np.max(self.values))

    @property
    def cv(self) -> float:
        """Coefficient of variation (Figure 8's stability measure)."""
        return self.std / self.mean if self.mean else 0.0

    @property
    def spread(self) -> float:
        """Relative spread (max − min) / mean — the curve-envelope width."""
        return (self.max - self.min) / self.mean if self.mean else 0.0


def run_trials(
    run: Callable[[int], float],
    n_trials: int = 15,
    base_seed: int = 0,
) -> TrialStats:
    """Run ``run(seed)`` for ``n_trials`` distinct seeds.

    The paper averages each configuration over 15 executions; the seed
    stream makes results reproducible while still exercising the
    interference model.
    """
    if n_trials <= 0:
        raise ValueError("n_trials must be positive")
    values = tuple(run(base_seed + k) for k in range(n_trials))
    return TrialStats(values=values)


def interference_factor(rng: np.random.Generator, sigma: float) -> float:
    """One trial's multiplicative interference for a storage tier.

    Lognormal with median 1: I/O slows down more often than it speeds
    up, matching the one-sided envelopes in the paper's figures.
    """
    if sigma <= 0:
        return 1.0
    return float(rng.lognormal(mean=0.0, sigma=sigma))
