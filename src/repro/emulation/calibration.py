"""Emulator calibration constants, annotated with their provenance.

These constants define the *emulated ground truth* against which the
paper's simple model is validated.  None of them feeds the simple
simulator — that one only sees Table I plus Eq. (4)-calibrated task
times, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.platform.presets import TABLE_I
from repro.platform.units import MB
from repro.storage.base import ServiceLatencies


@dataclass(frozen=True)
class TierEffects:
    """Emulated effects of one storage tier."""

    #: Per-operation latency, seconds (file open/close round-trips);
    #: concurrent operations pay it in parallel.
    read_latency: float
    write_latency: float
    #: POSIX single-stream bandwidth cap, bytes/s.  The paper: "the
    #: effective bandwidth achieved by this workflow implementation is
    #: well below the peak bandwidth ... likely due to standard POSIX
    #: I/O operations".
    stream_cap: float
    #: Lognormal sigma of per-trial interference (Figure 8's spread).
    interference_sigma: float
    #: Serialized metadata service time per operation, seconds.  Unlike
    #: the latencies above, these QUEUE: a 1:N pattern over many small
    #: files pays them back to back.  This is the dominant cost of
    #: striped DataWarp allocations for SWarp's access pattern
    #: (Figure 5: private beats striped by 1–2 orders of magnitude).
    metadata_service_time: float = 0.0


@dataclass(frozen=True)
class EmulationEffects:
    """All emulated effects for one platform configuration."""

    pfs: TierEffects
    bb_private: TierEffects
    bb_striped: TierEffects
    bb_onnode: TierEffects
    #: STRIPED-mode extra latency per stripe chunk (fragmentation).
    per_stripe_latency: float
    #: Concurrency penalty on each compute node's BB uplink: fraction of
    #: aggregate capacity lost per extra concurrent flow (floored at 10%
    #: of nominal inside the link model).  Encodes the contention Fig. 7
    #: exposes: concurrent pipelines saturate the node's effective BB
    #: bandwidth far below peak.
    bb_uplink_concurrency_penalty: float
    #: Compute slowdown per concurrently busy core beyond the task's own
    #: (memory-bandwidth interference): time *= 1 + c · other_busy_cores.
    compute_interference: float
    #: Degradation per core beyond 8 for Resample-like tasks (Figure 6:
    #: "performance slightly degrades as the number of cores increases").
    beyond8_degradation: float
    #: Emulated PFS disk bandwidth, bytes/s, when the real machine's
    #: effective PFS differs from the conservative Table I calibration
    #: (None = keep Table I).  Summit's GPFS delivers several hundred
    #: MB/s to a single node in practice, which is what makes its
    #: stage-in up to ~5× faster than Cori's (Figure 4) even though both
    #: simulators are calibrated at 100 MB/s.
    pfs_disk_bandwidth: "float | None" = None
    #: The reproducible striped anomaly (Figure 4): stage-in latency
    #: multiplier applied when the staged input fraction falls in
    #: [anomaly_low, anomaly_high) and the BB mode is striped.  The paper
    #: could not explain this behaviour ("may be due to a particular
    #: threshold defined in the system configuration"); we reproduce its
    #: signature, not its cause.
    striped_anomaly_low: float = 0.70
    striped_anomaly_high: float = 0.85
    striped_anomaly_factor: float = 2.0


#: Cori (shared BB).  Tier constants encode, in order: private-mode BB
#: beating PFS writes by ~1.5× while striped trails private by 1–2
#: orders of magnitude on many-small-file patterns (Figure 5); stage-in
#: to BB slower than Summit's by up to ~5× (Figure 4); striped spread
#: ~15% vs a stable private mode (Figure 8).
CORI_EFFECTS = EmulationEffects(
    pfs=TierEffects(
        read_latency=0.02,
        write_latency=0.03,
        stream_cap=120 * MB,
        interference_sigma=0.06,
        # Lustre MDS serialization: many-small-file patterns queue on
        # metadata, which is precisely the advantage a BB namespace
        # buys back (and why "workflows ... are often limited by
        # metadata performance" per Daley et al., quoted in Sec. II).
        metadata_service_time=0.15,
    ),
    bb_private=TierEffects(
        read_latency=0.03,
        # Stage-in registrations into a DataWarp namespace are slow
        # per-file (sequential stage-in makes this visible in Figure 4);
        # task writes pay it once in parallel, so tasks barely notice.
        write_latency=0.2,
        stream_cap=250 * MB,
        interference_sigma=0.08,
    ),
    bb_striped=TierEffects(
        read_latency=0.15,
        write_latency=0.2,
        stream_cap=180 * MB,
        interference_sigma=0.15,
        # NOTE: the paper's Figure 5 narrative claims striped trails
        # private "by up to two orders of magnitude", yet its Figure
        # 10/11 validation reports only ~12% simulation error for
        # striped — which is impossible if measured striped makespans
        # were 100× the simulated ones.  We resolve the tension in
        # favour of the quantitative error numbers: striped is
        # consistently the worst tier (metadata serialization +
        # fragmentation + 15% interference) by a factor of a few, and
        # EXPERIMENTS.md documents the deviation from the prose claim.
        metadata_service_time=0.12,
    ),
    bb_onnode=TierEffects(  # unused on Cori; placeholder equal to private
        read_latency=0.05,
        write_latency=0.08,
        stream_cap=250 * MB,
        interference_sigma=0.04,
    ),
    per_stripe_latency=0.35,
    bb_uplink_concurrency_penalty=0.0001,
    compute_interference=0.008,
    beyond8_degradation=0.015,
    # Effective aggregate Lustre bandwidth seen by one node in practice;
    # Table I's 100 MB/s is the simulator's (deliberately conservative)
    # calibration — the paper itself notes the documents it drew
    # bandwidths from were inconsistent.
    pfs_disk_bandwidth=300 * MB,
)

#: Summit (on-node BB).  Near-zero latency (no network hop), high stream
#: cap, tiny interference — "the absence of network latency for the
#: Summit BB architecture leads to more stable measurements".
SUMMIT_EFFECTS = EmulationEffects(
    pfs=TierEffects(
        read_latency=0.005,
        write_latency=0.0075,
        stream_cap=350 * MB,
        interference_sigma=0.03,
        metadata_service_time=0.02,  # GPFS handles small files far better
    ),
    bb_private=TierEffects(  # unused on Summit
        read_latency=0.002,
        write_latency=0.003,
        stream_cap=1200 * MB,
        interference_sigma=0.01,
    ),
    bb_striped=TierEffects(  # unused on Summit
        read_latency=0.002,
        write_latency=0.003,
        stream_cap=1200 * MB,
        interference_sigma=0.01,
    ),
    bb_onnode=TierEffects(
        read_latency=0.002,
        write_latency=0.003,
        stream_cap=1200 * MB,
        interference_sigma=0.01,
    ),
    per_stripe_latency=0.0,
    bb_uplink_concurrency_penalty=0.0,
    compute_interference=0.002,
    beyond8_degradation=0.004,
    pfs_disk_bandwidth=450 * MB,
)


def effects_for(system: str) -> EmulationEffects:
    """Effects preset for a system name (``"cori"`` or ``"summit"``)."""
    if system.startswith("cori"):
        return CORI_EFFECTS
    if system.startswith("summit"):
        return SUMMIT_EFFECTS
    raise ValueError(f"unknown system {system!r}")


@dataclass(frozen=True)
class EmulatedTaskTruth:
    """Ground-truth execution parameters of one task category.

    ``tc1`` is the true sequential compute time on a Cori core; ``alpha``
    the true Amdahl fraction.  These are what the emulated machine
    actually does; the simple model never sees them — it recovers an
    (approximate) tc1 from emulated observations via Eq. (4).
    """

    tc1: float
    alpha: float
    #: Apply the beyond-8-cores degradation term (Resample-like tasks).
    degrades_beyond_8: bool = False

    def flops(self) -> float:
        """True sequential work in flop (Cori-core calibrated)."""
        return self.tc1 * TABLE_I["cori"]["core_speed"]


#: SWarp ground truth, chosen to reproduce Figure 6's scaling story
#: (Resample gains up to ~8 cores then flattens/degrades; Combine barely
#: scales) and Figure 7's contention story (I/O is a large enough share
#: of a 1-core task that concurrent pipelines slow each other down
#: through the shared BB path).  The absolute λ_io our emulated PFS
#: produces differs from the 0.203/0.260 the paper quotes from Daley et
#: al. [24] — their characterization machine is not our Table-I-rate
#: emulation — but the calibration *procedure* is identical: λ_io is
#: measured on the PFS baseline and fed to Eq. (4)
#: (see repro.experiments.common.calibrate_swarp).
SWARP_TRUTH = {
    "resample": EmulatedTaskTruth(tc1=100.0, alpha=0.20, degrades_beyond_8=True),
    "combine": EmulatedTaskTruth(tc1=23.0, alpha=0.90),
    "stage_in": EmulatedTaskTruth(tc1=0.0, alpha=0.0),
}


def tier_latencies(tier: TierEffects) -> ServiceLatencies:
    """Convert tier effects to storage-service latencies."""
    return ServiceLatencies(read=tier.read_latency, write=tier.write_latency)
