"""Network/storage links: the capacity-bearing edges of the flow model."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Link:
    """A shared, capacity-limited resource traversed by flows.

    Both network cables and disk heads are links: a disk with a 950 MB/s
    sequential bandwidth is simply a link of that capacity that every I/O
    touching the disk must traverse.

    Parameters
    ----------
    name:
        Unique identifier within a :class:`~repro.network.FlowNetwork`.
    bandwidth:
        Capacity in bytes/second.  Must be positive and finite.
    latency:
        One-shot traversal latency in seconds, added once per flow
        (fluid-model approximation of per-packet latency).
    concurrency_penalty:
        Optional multiplicative efficiency loss applied per extra
        concurrent flow (models e.g. metadata contention on striped burst
        buffers).  ``0.0`` (default) means ideal sharing; ``0.02`` means
        each additional concurrent flow costs 2% of aggregate capacity,
        floored at 10% of nominal capacity.
    """

    name: str
    bandwidth: float
    latency: float = 0.0
    concurrency_penalty: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("link name must be non-empty")
        if not (self.bandwidth > 0 and self.bandwidth != float("inf")):
            raise ValueError(
                f"link {self.name!r}: bandwidth must be positive and finite, "
                f"got {self.bandwidth}"
            )
        if self.latency < 0:
            raise ValueError(f"link {self.name!r}: negative latency")
        if not (0.0 <= self.concurrency_penalty < 1.0):
            raise ValueError(
                f"link {self.name!r}: concurrency_penalty must be in [0, 1)"
            )

    def effective_bandwidth(self, n_flows: int) -> float:
        """Aggregate capacity available when ``n_flows`` flows share the link.

        With a zero penalty this is the nominal bandwidth; otherwise the
        aggregate shrinks by ``concurrency_penalty`` per flow beyond the
        first, floored at 10% of nominal.
        """
        if n_flows <= 1 or self.concurrency_penalty == 0.0:
            return self.bandwidth
        factor = max(0.1, 1.0 - self.concurrency_penalty * (n_flows - 1))
        return self.bandwidth * factor
