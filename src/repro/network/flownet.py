"""The flow network: event-driven fluid simulation of concurrent transfers.

A :class:`FlowNetwork` is attached to a DES environment.  Callers start
transfers with :meth:`FlowNetwork.transfer`, which returns a DES event
that fires when the last byte arrives.  Internally the network maintains
the set of active flows; whenever a flow starts or completes, per-flow
rates are recomputed with the configured allocator and the next
completion is rescheduled.

The model is work-conserving and exact for piecewise-constant rate
processes: between recomputation points every flow progresses linearly at
its assigned rate.

Two execution paths share the public API:

* the **oracle path** (default, ``allocator="max-min"``): every event
  re-solves all active flows with the global progressive-filling solver.
  This path is kept byte-for-byte stable — it is the reference that the
  paper's figures were validated against.
* the **incremental path** (``allocator="incremental"``): rates are
  maintained by :class:`repro.perf.IncrementalMaxMin`, which re-solves
  only the connected component(s) touched by an admit/drain.  Same-
  timestamp admits are batched into one end-of-instant solve (a
  ``DEFERRED``-priority flush event), and the next-completion scan is a
  lazy-deletion heap keyed by absolute finish time, so untouched flows
  are never revisited.
* the **vectorized path** (``allocator="vectorized"``): same deferred
  batching and dirty-component structure, but components are solved by
  :class:`repro.perf.VectorizedMaxMin`'s dense water-filling kernel and
  per-flow progress lives in :class:`repro.perf.FlowSlots` arrays —
  advancing time, sweeping drained flows, and finding the next
  completion are whole-array numpy operations, allocating nothing per
  event.  :class:`Flow` objects remain the public record; their
  ``remaining`` is synced from the arrays on access and completion.
"""
# lint: hot-path - rate updates and progress sweeps run per network event

from __future__ import annotations

import itertools
import sys
from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Optional

from repro.des import Environment, Event, EventPriority
from repro.network.allocators import resolve_allocator
from repro.network.link import Link

_EPS = 1e-9


def _is_incremental(allocator) -> bool:
    """Whether ``allocator`` is the registry's incremental solver.

    Checked against the loaded module rather than by import so that
    ``repro.network`` never pulls in ``repro.perf`` eagerly; if the perf
    package was never imported, the caller cannot be holding its solver.
    """
    module = sys.modules.get("repro.perf.incremental")
    return module is not None and allocator is module.incremental_max_min_rates


def _is_vectorized(allocator) -> bool:
    """Whether ``allocator`` is the registry's vectorized solver."""
    module = sys.modules.get("repro.perf.vectorized")
    return module is not None and allocator is module.vectorized_max_min_rates


@dataclass
class Flow:
    """One in-flight transfer."""

    fid: int
    size: float                      # total bytes
    links: tuple[Link, ...]          # capacity-bearing resources traversed
    remaining: float                 # bytes still to move
    rate: float = 0.0                # current allocated rate (bytes/s)
    max_rate: float = float("inf")   # private cap (e.g. POSIX stream limit)
    started_at: float = 0.0
    completed_at: Optional[float] = None
    done_event: Optional[Event] = None
    label: str = ""
    #: Bumped on every rate assignment; stale completion-heap entries
    #: (incremental path) are recognized by a version mismatch.
    version: int = 0

    @property
    def elapsed(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.started_at

    @property
    def achieved_bandwidth(self) -> Optional[float]:
        """Mean end-to-end bandwidth, available once the flow completed.

        ``None`` while in flight, and also for zero-byte flows: a
        metadata-only transfer has no meaningful bandwidth, and
        ``0 / latency == 0.0`` would otherwise drag every bandwidth
        average toward zero.
        """
        elapsed = self.elapsed
        if elapsed is None or elapsed <= 0 or self.size <= 0:
            return None
        return self.size / elapsed


class FlowNetwork:
    """Manages concurrent flows over a shared set of links.

    ``allocator`` selects the bandwidth-sharing discipline: a registry
    name (``"max-min"``, ``"equal-split"``, ``"incremental"`` — see
    :mod:`repro.network.allocators`) or any callable satisfying the
    :class:`~repro.network.allocators.RateAllocator` protocol.  The
    default is max-min fairness (SimGrid's fluid model).
    """

    def __init__(
        self,
        env: Environment,
        allocator="max-min",
    ) -> None:
        self.env = env
        self._allocator = resolve_allocator(allocator)
        self._flows: dict[int, Flow] = {}
        self._fid = itertools.count(1)
        self._last_update = env.now
        # Generation counter invalidates stale completion wake-ups.
        self._generation = 0
        #: Completed-flow log (bounded use: bandwidth accounting in traces).
        self.completed: list[Flow] = []
        #: Incremental engine, engaged only for the registry's
        #: incremental/vectorized allocators; ``None`` selects the
        #: oracle path.  ``_slots`` additionally holds the dense
        #: per-flow arrays on the vectorized path.
        self._inc = None
        self._slots = None
        if _is_incremental(self._allocator):
            from repro.perf import IncrementalMaxMin

            self._inc = IncrementalMaxMin(self._link_capacity)
            self._links_by_name: dict[str, Link] = {}
            #: Lazy-deletion completion heap: (finish_time, version, fid).
            self._heap: list[tuple[float, int, int]] = []
            self._flush_pending = False
        elif _is_vectorized(self._allocator):
            from repro.perf import FlowSlots, VectorizedMaxMin

            self._inc = VectorizedMaxMin(self._link_capacity)
            self._slots = FlowSlots()
            self._links_by_name = {}
            self._flush_pending = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def transfer(
        self,
        size: float,
        links: "list[Link] | tuple[Link, ...]",
        latency: float = 0.0,
        max_rate: float = float("inf"),
        label: str = "",
    ) -> Event:
        """Start a transfer of ``size`` bytes across ``links``.

        Returns an event that succeeds (with the :class:`Flow`) when the
        transfer finishes.  ``latency`` is an additional one-shot delay
        before bytes start moving (route latency + any service overhead
        such as metadata round-trips).  Zero-byte transfers complete after
        just the latency.
        """
        if size < 0:
            raise ValueError(f"negative transfer size: {size}")
        if max_rate <= 0:
            raise ValueError(f"max_rate must be positive, got {max_rate}")

        done = self.env.event()
        flow = Flow(
            fid=next(self._fid),
            size=float(size),
            links=tuple(links),
            remaining=float(size),
            max_rate=max_rate,
            started_at=self.env.now,
            done_event=done,
            label=label,
        )
        if not flow.links and max_rate == float("inf"):
            # Loopback with no cap: completes after latency alone.
            self.env.process(self._complete_after(flow, latency))
            return done

        total_latency = latency + sum(link.latency for link in flow.links)
        if total_latency > 0:
            self.env.process(self._admit_after(flow, total_latency))
        else:
            self._admit(flow)
        return done

    @property
    def active_flows(self) -> list[Flow]:
        self._sync_flow_progress()
        return list(self._flows.values())

    def utilization(self, link: Link) -> float:
        """Current aggregate rate over ``link`` divided by its capacity."""
        load = sum(f.rate for f in self._flows.values() if link in f.links)
        return load / link.bandwidth

    def _sync_flow_progress(self) -> None:
        """Copy slot-array progress back onto the public :class:`Flow`
        records (vectorized path only; a no-op elsewhere, where the
        records are the source of truth)."""
        if self._slots is None:
            return
        flows = self._flows
        remaining = self._slots.remaining
        for fid, slot in self._slots.slot_of.items():
            flows[fid].remaining = float(remaining[slot])

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _complete_after(self, flow: Flow, delay: float):
        yield self.env.timeout(delay)
        self._finish(flow)

    def _admit_after(self, flow: Flow, delay: float):
        yield self.env.timeout(delay)
        self._admit(flow)

    def _admit(self, flow: Flow) -> None:
        self._advance_progress()
        flow.started_at = min(flow.started_at, self.env.now)
        if flow.remaining <= 0:
            # Zero-byte payload: finish immediately (the done event still
            # fires through the queue, at the current timestamp).
            self._finish(flow)
            self._reschedule()
            return
        # Flows drained since the last wake-up must leave before rates
        # are recomputed — a lingering near-empty flow would claim a full
        # max-min share and depress everyone else's rate until the next
        # completion wake.
        self._sweep_drained()
        self._flows[flow.fid] = flow
        obs = self.env.obs
        if obs is not None:
            obs.on_flow_admitted(len(self._flows))
        if self._inc is None:
            self._recompute_rates()
            self._reschedule()
            return
        for link in flow.links:
            self._links_by_name.setdefault(link.name, link)
        self._inc.admit(
            flow.fid, [link.name for link in flow.links], flow.max_rate
        )
        if self._slots is not None:
            self._slots.admit(flow.fid, flow.size, flow.remaining)
        self._schedule_flush()

    def _advance_progress(self) -> None:
        """Move every active flow forward to the current instant."""
        dt = self.env.now - self._last_update
        if dt > 0:
            if self._slots is not None:
                self._slots.advance(dt)
            else:
                for flow in self._flows.values():
                    flow.remaining = max(0.0, flow.remaining - flow.rate * dt)
        self._last_update = self.env.now

    def _recompute_rates(self) -> None:
        if not self._flows:
            return
        flows = list(self._flows.values())
        # Effective capacities account for concurrency penalties.
        users_per_link: dict[str, int] = {}
        link_by_name: dict[str, Link] = {}
        for f in flows:
            for link in f.links:
                users_per_link[link.name] = users_per_link.get(link.name, 0) + 1
                link_by_name[link.name] = link
        capacities = {
            name: link_by_name[name].effective_bandwidth(users_per_link[name])
            for name in users_per_link
        }
        rates = self._allocator(
            [[link.name for link in f.links] for f in flows],
            capacities,
            [f.max_rate for f in flows],
        )
        for f, rate in zip(flows, rates):
            f.rate = rate
        obs = self.env.obs
        if obs is not None:
            obs.on_rate_solve(len(flows), len(capacities))
            obs.on_rates_assigned(flows)

    def _next_completion_delay(self) -> Optional[float]:
        best: Optional[float] = None
        for flow in self._flows.values():
            if flow.rate > 0:
                eta = flow.remaining / flow.rate
                if best is None or eta < best:
                    best = eta
        return best

    def _reschedule(self) -> None:
        """(Re)arm the wake-up for the next flow completion."""
        self._generation += 1
        if self._inc is None:
            delay = self._next_completion_delay()
        else:
            finish = self._peek_next_finish()
            delay = None if finish is None else finish - self.env.now
        if delay is None:
            return
        generation = self._generation
        wake = Event(self.env)
        wake._ok = True
        wake._value = None
        wake.callbacks.append(lambda _e: self._on_wake(generation))
        self.env.schedule(wake, priority=EventPriority.HIGH, delay=max(0.0, delay))

    def _finish_threshold(self, flow: Flow) -> float:
        """Bytes below which a flow counts as complete.

        Two components: an absolute/relative byte epsilon, and the bytes
        a flow moves during one unit of *time resolution* at the current
        clock value — float residue smaller than that can never be
        drained because ``now + eta == now``, which would wake-loop
        forever.
        """
        time_quantum = max(1e-12, abs(self.env.now) * 1e-12)
        return max(_EPS * flow.size + _EPS, flow.rate * time_quantum)

    def _remove_flow(self, flow: Flow) -> None:
        """Drop ``flow`` from the active set (and the incremental engine)."""
        del self._flows[flow.fid]
        if self._inc is not None and flow.fid in self._inc:
            self._inc.drain(flow.fid)
        if self._slots is not None and flow.fid in self._slots.slot_of:
            self._slots.drop(flow.fid)

    def _sweep_drained(self) -> bool:
        """Finish every flow whose residue is below its threshold.

        Progress must already be advanced to ``env.now``.  Returns
        whether anything finished (callers then owe a recomputation).
        """
        if self._slots is not None:
            time_quantum = max(1e-12, abs(self.env.now) * 1e-12)
            finished = [
                self._flows[fid]
                for fid in self._slots.drained_fids(time_quantum, _EPS)
            ]
        else:
            finished = [
                f
                for f in self._flows.values()
                if f.remaining <= self._finish_threshold(f)
            ]
        for flow in finished:
            self._remove_flow(flow)
            self._finish(flow)
        return bool(finished)

    def _on_wake(self, generation: int) -> None:
        if generation != self._generation:
            return  # stale wake-up; a newer recomputation superseded it
        self._advance_progress()
        if self._inc is None:
            if self._sweep_drained():
                self._recompute_rates()
            self._reschedule()
            return
        if not self._sweep_drained():
            # The wake's finish estimate can undershoot a flow's byte
            # threshold by float residue (rate * (T - t0) vs remaining
            # rounding).  Finishing the due flow(s) outright is exact to
            # ulp-level and avoids re-arming a zero-delay wake forever.
            while True:
                finish = self._peek_next_finish()
                if finish is None or finish > self.env.now:
                    break
                if self._slots is not None:
                    fid = self._slots.next_finished_fid()
                else:
                    fid = self._heap[0][2]
                flow = self._flows[fid]
                self._remove_flow(flow)
                self._finish(flow)
        if self._inc.dirty:
            self._solve_and_apply()
        self._reschedule()

    def _finish(self, flow: Flow) -> None:
        flow.remaining = 0.0
        flow.rate = 0.0
        flow.completed_at = self.env.now
        self.completed.append(flow)
        obs = self.env.obs
        if obs is not None:
            # The flow is already out of (or never entered) _flows, so
            # the count reflects concurrency after this completion.
            obs.on_flow_finished(flow, len(self._flows))
            obs.log_event(
                "network", "flow_completed",
                label=flow.label, size=flow.size,
                elapsed=flow.elapsed, active=len(self._flows),
            )
        assert flow.done_event is not None
        flow.done_event.succeed(flow)

    # ------------------------------------------------------------------
    # Incremental path
    # ------------------------------------------------------------------
    def _link_capacity(self, name: str, n_users: int) -> float:
        return self._links_by_name[name].effective_bandwidth(n_users)

    def _schedule_flush(self) -> None:
        """Arm one end-of-instant solve covering every same-timestamp
        admit/drain (the batch that replaces N per-admit solves)."""
        if self._flush_pending:
            return
        self._flush_pending = True
        flush = Event(self.env)
        flush._ok = True
        flush._value = None
        flush.callbacks.append(self._flush)
        self.env.schedule(flush, priority=EventPriority.DEFERRED, delay=0.0)

    def _flush(self, _event: Event) -> None:
        self._flush_pending = False
        self._advance_progress()
        if self._inc.dirty:
            self._solve_and_apply()
        self._reschedule()

    def _solve_and_apply(self) -> None:
        stats = self._inc.stats
        calls = stats.solver_calls
        links = stats.links_touched
        solved = stats.flows_solved
        changed = self._inc.solve()
        now = self.env.now
        slots = self._slots
        for fid, rate in changed.items():
            flow = self._flows.get(fid)
            if flow is None:  # pragma: no cover - defensive
                continue
            flow.rate = rate
            flow.version += 1
            if slots is not None:
                slots.set_rate(fid, rate, now)
            elif rate > 0:
                heappush(
                    self._heap,
                    (now + flow.remaining / rate, flow.version, fid),
                )
        obs = self.env.obs
        if obs is not None:
            obs.on_rate_solve(
                stats.flows_solved - solved,
                stats.links_touched - links,
                solver_calls=stats.solver_calls - calls,
            )
            obs.on_rates_assigned(list(self._flows.values()))

    def _peek_next_finish(self) -> Optional[float]:
        """Earliest valid completion time, lazily discarding stale heap
        entries (finished flows, superseded rate versions)."""
        if self._slots is not None:
            return self._slots.peek_finish()
        heap = self._heap
        while heap:
            finish, version, fid = heap[0]
            flow = self._flows.get(fid)
            if flow is None or flow.version != version or flow.rate <= 0:
                heappop(heap)
                continue
            return finish
        return None
