"""Routes and routing tables mapping host pairs to link sequences."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.network.link import Link


@dataclass(frozen=True)
class Route:
    """An ordered sequence of links between two endpoints."""

    links: tuple[Link, ...]

    def __init__(self, links: Iterable[Link]) -> None:
        object.__setattr__(self, "links", tuple(links))

    @property
    def latency(self) -> float:
        """Sum of per-link latencies (paid once per flow)."""
        return sum(link.latency for link in self.links)

    @property
    def bottleneck_bandwidth(self) -> float:
        """Minimum link bandwidth along the route (``inf`` if empty)."""
        if not self.links:
            return float("inf")
        return min(link.bandwidth for link in self.links)

    def __iter__(self) -> Iterator[Link]:
        return iter(self.links)

    def __len__(self) -> int:
        return len(self.links)

    def __add__(self, other: "Route") -> "Route":
        return Route(self.links + other.links)


class RoutingTable:
    """Symmetric host-pair → route table with longest-prefix fallbacks.

    Routes are registered between named endpoints (host names).  Lookups
    are symmetric: a route registered for (a, b) also answers (b, a), with
    the link order reversed (irrelevant for the fluid model, which only
    cares about the set of links traversed).
    """

    def __init__(self) -> None:
        self._routes: dict[tuple[str, str], Route] = {}
        self._loopback = Route([])

    def add_route(self, src: str, dst: str, links: Iterable[Link]) -> None:
        """Register the route between ``src`` and ``dst``."""
        if src == dst:
            raise ValueError("cannot register a route from a host to itself")
        self._routes[(src, dst)] = Route(links)

    def route(self, src: str, dst: str) -> Route:
        """Look up the route between two hosts.

        A host-to-itself route is the empty (infinite-bandwidth, zero
        latency) loopback, matching SimGrid's default.
        """
        if src == dst:
            return self._loopback
        route = self._routes.get((src, dst))
        if route is not None:
            return route
        route = self._routes.get((dst, src))
        if route is not None:
            return Route(reversed(route.links))
        raise KeyError(f"no route registered between {src!r} and {dst!r}")

    def has_route(self, src: str, dst: str) -> bool:
        return (
            src == dst
            or (src, dst) in self._routes
            or (dst, src) in self._routes
        )

    def __len__(self) -> int:
        return len(self._routes)

    @property
    def links(self) -> set[Link]:
        """All distinct links appearing in any registered route."""
        out: set[Link] = set()
        for route in self._routes.values():
            out.update(route.links)
        return out
