"""The rate-allocator registry: named bandwidth-sharing disciplines.

:class:`~repro.network.FlowNetwork` used to take a bare function for its
``allocator`` knob, which made the choice impossible to express in a
``SimulatorConfig``, a sweep point, or a CLI flag.  This module gives the
knob a name: an allocator is any callable satisfying the
:class:`RateAllocator` protocol, registered under a short string id that
configs and CLIs can carry.

Built-in allocators:

``max-min``
    :func:`~repro.network.fairshare.max_min_fair_rates` — progressive
    filling, the paper's model and the default.
``equal-split``
    :func:`~repro.network.fairshare.equal_split_rates` — the ablation
    baseline (feasible, not work-conserving).
``incremental``
    :func:`repro.perf.incremental_max_min_rates` — max-min solved per
    connected component of the flow/link graph; selecting it by name
    additionally switches :class:`~repro.network.FlowNetwork` onto its
    stateful incremental hot path (dirty-component recomputation, batch
    rescheduling, completion heap).  Registered lazily on first lookup
    so ``repro.network`` does not import ``repro.perf`` at import time.
``vectorized``
    :func:`repro.perf.vectorized_max_min_rates` — the dense
    water-filling kernel (numpy argmin over per-link saturation levels,
    identical-constraint flow grouping).  Selecting it by name keeps the
    incremental path's dirty-component bookkeeping but solves each
    component with the kernel and moves per-flow progress onto
    :class:`repro.perf.FlowSlots` arrays.  Registered lazily alongside
    ``incremental``.

Direct calls to ``max_min_fair_rates`` outside ``repro.network`` /
``repro.perf`` are rejected by lint rule SIM060 — resolve through this
registry instead.
"""

from __future__ import annotations

from typing import Callable, Hashable, Mapping, Optional, Protocol, Sequence

from repro.network.fairshare import equal_split_rates, max_min_fair_rates


class RateAllocator(Protocol):
    """A bandwidth-sharing discipline.

    Given each flow's traversed links, per-link capacities, and optional
    per-flow rate caps, return one rate per flow (input order).  The
    returned allocation must be feasible (see
    :func:`~repro.network.fairshare.allocation_is_feasible`).
    """

    def __call__(
        self,
        flow_links: Sequence[Sequence[Hashable]],
        capacities: Mapping[Hashable, float],
        flow_caps: "Sequence[float] | None" = None,
    ) -> list[float]: ...


#: Registry of named allocators. Mutate through :func:`register_allocator`.
_ALLOCATORS: dict[str, RateAllocator] = {}

#: The default allocator name (the paper's sharing model).
DEFAULT_ALLOCATOR = "max-min"


def register_allocator(name: str, allocator: RateAllocator) -> RateAllocator:
    """Register ``allocator`` under ``name`` (idempotent re-registration
    of the same callable is allowed; rebinding a name is an error)."""
    existing = _ALLOCATORS.get(name)
    if existing is not None and existing is not allocator:
        raise ValueError(f"allocator name {name!r} is already registered")
    _ALLOCATORS[name] = allocator
    return allocator


def allocator_names() -> list[str]:
    """All registered allocator names (triggers lazy registration)."""
    _ensure_builtin()
    return sorted(_ALLOCATORS)


def resolve_allocator(
    spec: "str | RateAllocator | None",
) -> RateAllocator:
    """Resolve a registry name, callable, or ``None`` to an allocator.

    ``None`` resolves to the default (``max-min``); callables pass
    through unchanged (the historical ``FlowNetwork(allocator=fn)``
    contract).
    """
    if spec is None:
        spec = DEFAULT_ALLOCATOR
    if callable(spec):
        return spec
    _ensure_builtin()
    try:
        return _ALLOCATORS[spec]
    except KeyError:
        raise ValueError(
            f"unknown allocator {spec!r} (choose from "
            f"{', '.join(sorted(_ALLOCATORS))})"
        ) from None


def _ensure_builtin() -> None:
    """Register built-ins, importing ``repro.perf`` for the incremental
    and vectorized solvers only when first needed (avoids an import
    cycle: perf depends on the oracle in this package)."""
    if "incremental" not in _ALLOCATORS or "vectorized" not in _ALLOCATORS:
        import repro.perf  # noqa: F401 - registers "incremental"/"vectorized"


register_allocator("max-min", max_min_fair_rates)
register_allocator("equal-split", equal_split_rates)
