"""Max-min fair bandwidth allocation via progressive filling.

Given a set of flows, each traversing a set of links with finite
capacities (and optionally carrying a private rate cap), compute the
max-min fair rate vector: rates are raised uniformly for all unfrozen
flows until some link (or per-flow cap) saturates, flows crossing a
saturated resource are frozen, and the process repeats.

This is the textbook water-filling algorithm, and is also the allocation
SimGrid converges to for its default fluid network model with equal flow
weights.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

#: Relative tolerance for deciding that a flow sits at its cap or that a
#: link is saturated.  The tolerance MUST be relative (scaled by the cap
#: or capacity it is compared against): an absolute epsilon freezes every
#: flow whose cap is within epsilon of another's, which mis-allocates
#: whenever caps themselves are epsilon-sized (e.g. the tiny finish
#: thresholds the flow network produces for nearly-drained transfers).
_REL_TOL = 1e-9


def max_min_fair_rates(
    flow_links: Sequence[Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    flow_caps: Sequence[float] | None = None,
) -> list[float]:
    """Compute max-min fair rates.

    Parameters
    ----------
    flow_links:
        For each flow, the (possibly empty) collection of link ids it
        traverses.  A flow traversing no capacity-bearing link is only
        limited by its own cap (infinite if uncapped).
    capacities:
        Link id → capacity (must be positive).
    flow_caps:
        Optional per-flow rate ceilings (``inf`` = uncapped).

    Returns
    -------
    list of rates, one per flow, in input order.

    Raises
    ------
    ValueError
        If a flow references an unknown link or a capacity is non-positive.
    """
    n = len(flow_links)
    if flow_caps is None:
        flow_caps = [float("inf")] * n
    if len(flow_caps) != n:
        raise ValueError("flow_caps length must match flow_links length")

    for link, cap in capacities.items():
        if cap <= 0:
            raise ValueError(f"link {link!r} has non-positive capacity {cap}")

    # Normalize to sets; validate link references.
    flow_sets: list[frozenset] = []
    for i, links in enumerate(flow_links):
        s = frozenset(links)
        for link in s:
            if link not in capacities:
                raise ValueError(f"flow {i} references unknown link {link!r}")
        flow_sets.append(s)

    rates = [0.0] * n
    remaining = dict(capacities)
    active = set(range(n))

    # Flows with no links and no cap would have infinite rate — callers
    # should never construct them, but guard against an endless loop.
    for i in list(active):
        if not flow_sets[i] and flow_caps[i] == float("inf"):
            raise ValueError(f"flow {i} has no links and no cap (infinite rate)")

    # Active flow count per link.
    link_users: dict[Hashable, int] = {}
    for i in active:
        for link in flow_sets[i]:
            link_users[link] = link_users.get(link, 0) + 1

    while active:
        # Smallest uniform increment that saturates a link or a flow cap.
        increment = float("inf")
        for link, users in link_users.items():
            if users > 0:
                increment = min(increment, remaining[link] / users)
        for i in active:
            headroom = flow_caps[i] - rates[i]
            increment = min(increment, headroom)
        if increment == float("inf"):  # pragma: no cover - guarded above
            break
        increment = max(increment, 0.0)

        # Apply the increment and spend link capacity.
        for i in active:
            rates[i] += increment
        for link, users in link_users.items():
            if users > 0:
                remaining[link] -= increment * users

        # Freeze flows on saturated links or at their cap.  Both tests are
        # cap/capacity-relative so that epsilon-sized caps (1e-12-ish) are
        # resolved exactly instead of being frozen together.
        frozen = set()
        for i in active:
            if rates[i] >= flow_caps[i] * (1.0 - _REL_TOL):
                frozen.add(i)
                continue
            for link in flow_sets[i]:
                if remaining[link] <= _REL_TOL * capacities[link]:
                    frozen.add(i)
                    break
        if not frozen:
            # Numerical stall: freeze everything touching the tightest
            # link.  "Tightest" must be judged by *relative* headroom —
            # ranking by absolute remaining capacity picks whichever link
            # is smallest in raw units, which for flows sharing links of
            # very different capacities is usually not the link actually
            # binding them.
            tightest = min(
                (link for link, users in link_users.items() if users > 0),
                key=lambda link: remaining[link] / capacities[link],
                default=None,
            )
            if tightest is None:
                break
            frozen = {i for i in active if tightest in flow_sets[i]}
            if not frozen:  # pragma: no cover - defensive
                break

        for i in frozen:
            active.discard(i)
            for link in flow_sets[i]:
                link_users[link] -= 1

    return rates


def equal_split_rates(
    flow_links: Sequence[Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    flow_caps: Sequence[float] | None = None,
) -> list[float]:
    """Naive equal-split allocation (ablation baseline, not max-min).

    Each flow gets the minimum over its links of ``capacity / users`` —
    no redistribution of capacity freed by flows bottlenecked elsewhere.
    Always feasible, never work-conserving; used by the sharing-model
    ablation benchmark to quantify what max-min fairness buys.
    """
    n = len(flow_links)
    if flow_caps is None:
        flow_caps = [float("inf")] * n
    if len(flow_caps) != n:
        raise ValueError("flow_caps length must match flow_links length")

    users: dict[Hashable, int] = {}
    flow_sets = [frozenset(links) for links in flow_links]
    for i, s in enumerate(flow_sets):
        for link in s:
            if link not in capacities:
                raise ValueError(f"flow {i} references unknown link {link!r}")
            users[link] = users.get(link, 0) + 1

    rates = []
    for i, s in enumerate(flow_sets):
        if not s:
            if flow_caps[i] == float("inf"):
                raise ValueError(
                    f"flow {i} has no links and no cap (infinite rate)"
                )
            rates.append(flow_caps[i])
            continue
        share = min(capacities[link] / users[link] for link in s)
        rates.append(min(share, flow_caps[i]))
    return rates


def allocation_is_feasible(
    flow_links: Sequence[Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    rates: Sequence[float],
    tolerance: float = 1e-6,
) -> bool:
    """Check that ``rates`` respects every link capacity (for tests)."""
    load: dict[Hashable, float] = {link: 0.0 for link in capacities}
    for links, rate in zip(flow_links, rates):
        for link in set(links):
            load[link] += rate
    return all(
        load[link] <= capacities[link] * (1 + tolerance) + tolerance
        for link in capacities
    )
