"""Flow-level network model with max-min fair bandwidth sharing.

This is the performance core of the simulator, mirroring SimGrid's fluid
("flow-level") model: a data transfer is a *flow* over a sequence of
*links*; all concurrent flows share link bandwidth according to max-min
fairness, recomputed whenever a flow starts or finishes.  Disks are
modeled as links, so an end-to-end I/O operation (compute node → fabric →
burst-buffer SSD) is a single flow whose rate is limited by its tightest
shared resource.
"""

from repro.network.link import Link
from repro.network.fairshare import (
    allocation_is_feasible,
    equal_split_rates,
    max_min_fair_rates,
)
from repro.network.allocators import (
    DEFAULT_ALLOCATOR,
    RateAllocator,
    allocator_names,
    register_allocator,
    resolve_allocator,
)
from repro.network.flownet import Flow, FlowNetwork
from repro.network.routing import Route, RoutingTable

__all__ = [
    "DEFAULT_ALLOCATOR",
    "Flow",
    "FlowNetwork",
    "Link",
    "RateAllocator",
    "Route",
    "RoutingTable",
    "allocation_is_feasible",
    "allocator_names",
    "equal_split_rates",
    "max_min_fair_rates",
    "register_allocator",
    "resolve_allocator",
]
