"""Calibrated platform presets: Table I of the paper.

Every constant in :data:`TABLE_I` is quoted directly from the paper
(Table I, "input parameters used in simulation"); topology constants
(cores per node, BB node capacity) come from Section III-A.  Constants
that the paper does *not* specify (the compute fabric used only for
cross-node traffic) are flagged in :data:`NON_TABLE_I_CONSTANTS`.
"""

from __future__ import annotations

from repro.platform.spec import (
    DiskSpec,
    HostRole,
    HostSpec,
    LinkSpec,
    PlatformSpec,
    RouteSpec,
)
from repro.platform.units import GB, GFLOPS, MB, TB, US

#: Table I, quoted. Bandwidths in bytes/s, speeds in flop/s.
TABLE_I = {
    "cori": {
        "core_speed": 36.80 * GFLOPS,
        "bb_network_bandwidth": 800 * MB,
        "bb_disk_bandwidth": 950 * MB,
        "pfs_network_bandwidth": 1.0 * GB,
        "pfs_disk_bandwidth": 100 * MB,
    },
    "summit": {
        "core_speed": 49.12 * GFLOPS,
        "bb_network_bandwidth": 6.5 * GB,
        "bb_disk_bandwidth": 3.3 * GB,
        "pfs_network_bandwidth": 2.1 * GB,
        "pfs_disk_bandwidth": 100 * MB,
    },
}

#: Section III-A facts used for topology (not in Table I).
CORI_CORES_PER_NODE = 32        # Haswell nodes used in the experiments
CORI_BB_NODE_CAPACITY = 6.4 * TB
SUMMIT_CORES_PER_NODE = 42      # 2× POWER9, 21 usable cores each
SUMMIT_BB_NODE_CAPACITY = 1.6 * TB

#: Constants the paper does not give; only exercised by cross-node traffic
#: (e.g. moving data between on-node BBs), never on the critical path of
#: the paper's experiments.
NON_TABLE_I_CONSTANTS = {
    "compute_fabric_bandwidth": 12.5 * GB,
    "compute_fabric_latency": 1 * US,
    "pfs_capacity": 30_000 * TB,  # 30 PB — effectively unlimited for our workloads
}

#: Canonical host names used by the presets.
PFS_HOST = "pfs"
PFS_DISK = "lustre"
BB_DISK = "ssd"


def compute_node_names(n_compute: int) -> list[str]:
    return [f"cn{i}" for i in range(n_compute)]


def bb_node_names(n_bb_nodes: int) -> list[str]:
    return [f"bb{i}" for i in range(n_bb_nodes)]


def local_bb_host(compute_node: str) -> str:
    """Name of the pseudo-host carrying ``compute_node``'s on-node NVMe.

    Summit's node-local SSD sits behind a PCIe/NVMe path that Table I
    models as a 6.5 GB/s "network" stage in front of the 3.3 GB/s device;
    representing the SSD as a one-hop pseudo-host makes that path an
    ordinary route in the flow graph.
    """
    return f"{compute_node}-bb"


def cori_spec(
    n_compute: int = 1,
    n_bb_nodes: int = 1,
    cores_per_node: int = CORI_CORES_PER_NODE,
) -> PlatformSpec:
    """Cori: remote-shared burst buffer on dedicated nodes (Figure 1a).

    Topology: each compute node has a dedicated 800 MB/s path into the BB
    fabric and a dedicated 1 GB/s path to the PFS I/O nodes; BB nodes
    serve 950 MB/s each from their SSDs; the PFS serves 100 MB/s total.
    Per-node dedicated uplinks reproduce the paper's observation that
    concurrent pipelines *within* one node contend for that node's BB
    bandwidth (Figure 7) while the PFS disk is the global bottleneck.
    """
    params = TABLE_I["cori"]
    hosts = [
        HostSpec(
            name=name,
            cores=cores_per_node,
            core_speed=params["core_speed"],
            role=HostRole.COMPUTE,
        )
        for name in compute_node_names(n_compute)
    ]
    hosts += [
        HostSpec(
            name=name,
            cores=1,
            core_speed=params["core_speed"],
            role=HostRole.SHARED_BB,
            disks=(
                DiskSpec(
                    name=BB_DISK,
                    read_bandwidth=params["bb_disk_bandwidth"],
                    write_bandwidth=params["bb_disk_bandwidth"],
                    capacity=CORI_BB_NODE_CAPACITY,
                ),
            ),
        )
        for name in bb_node_names(n_bb_nodes)
    ]
    hosts.append(
        HostSpec(
            name=PFS_HOST,
            cores=1,
            core_speed=params["core_speed"],
            role=HostRole.PFS,
            disks=(
                DiskSpec(
                    name=PFS_DISK,
                    read_bandwidth=params["pfs_disk_bandwidth"],
                    write_bandwidth=params["pfs_disk_bandwidth"],
                    capacity=NON_TABLE_I_CONSTANTS["pfs_capacity"],
                ),
            ),
        )
    )

    links = []
    routes = []
    fabric = LinkSpec(
        name="fabric",
        bandwidth=NON_TABLE_I_CONSTANTS["compute_fabric_bandwidth"],
        latency=NON_TABLE_I_CONSTANTS["compute_fabric_latency"],
    )
    links.append(fabric)
    for cn in compute_node_names(n_compute):
        bb_uplink = LinkSpec(name=f"{cn}-bbnet", bandwidth=params["bb_network_bandwidth"])
        pfs_uplink = LinkSpec(name=f"{cn}-pfsnet", bandwidth=params["pfs_network_bandwidth"])
        links += [bb_uplink, pfs_uplink]
        for bb in bb_node_names(n_bb_nodes):
            routes.append(RouteSpec(cn, bb, [bb_uplink.name]))
        routes.append(RouteSpec(cn, PFS_HOST, [pfs_uplink.name]))
        for other in compute_node_names(n_compute):
            if other < cn:
                routes.append(RouteSpec(other, cn, [fabric.name]))
    for bb in bb_node_names(n_bb_nodes):
        # BB ↔ PFS path (staging between layers) rides the PFS fabric.
        routes.append(
            RouteSpec(bb, PFS_HOST, [f"cn0-pfsnet" if n_compute else "fabric"])
        )

    return PlatformSpec(
        name=f"cori[{n_compute}cn,{n_bb_nodes}bb]",
        hosts=tuple(hosts),
        links=tuple(links),
        routes=tuple(routes),
    )


def summit_spec(
    n_compute: int = 1,
    cores_per_node: int = SUMMIT_CORES_PER_NODE,
) -> PlatformSpec:
    """Summit: on-node burst buffer, one NVMe per compute node (Figure 1b).

    Each node's SSD hangs off a private 6.5 GB/s PCIe path (Table I "BB
    network") in front of a 3.3 GB/s device (Table I "BB disk I/O").
    """
    params = TABLE_I["summit"]
    cns = compute_node_names(n_compute)
    hosts = [
        HostSpec(
            name=cn,
            cores=cores_per_node,
            core_speed=params["core_speed"],
            role=HostRole.COMPUTE,
        )
        for cn in cns
    ]
    hosts += [
        HostSpec(
            name=local_bb_host(cn),
            cores=1,
            core_speed=params["core_speed"],
            role=HostRole.LOCAL_BB,
            attached_to=cn,
            disks=(
                DiskSpec(
                    name=BB_DISK,
                    read_bandwidth=params["bb_disk_bandwidth"],
                    write_bandwidth=params["bb_disk_bandwidth"],
                    capacity=SUMMIT_BB_NODE_CAPACITY,
                ),
            ),
        )
        for cn in cns
    ]
    hosts.append(
        HostSpec(
            name=PFS_HOST,
            cores=1,
            core_speed=params["core_speed"],
            role=HostRole.PFS,
            disks=(
                DiskSpec(
                    name=PFS_DISK,
                    read_bandwidth=params["pfs_disk_bandwidth"],
                    write_bandwidth=params["pfs_disk_bandwidth"],
                    capacity=NON_TABLE_I_CONSTANTS["pfs_capacity"],
                ),
            ),
        )
    )

    links = [
        LinkSpec(
            name="fabric",
            bandwidth=NON_TABLE_I_CONSTANTS["compute_fabric_bandwidth"],
            latency=NON_TABLE_I_CONSTANTS["compute_fabric_latency"],
        )
    ]
    routes = []
    for cn in cns:
        pcie = LinkSpec(name=f"{cn}-pcie", bandwidth=params["bb_network_bandwidth"])
        pfs_uplink = LinkSpec(name=f"{cn}-pfsnet", bandwidth=params["pfs_network_bandwidth"])
        links += [pcie, pfs_uplink]
        routes.append(RouteSpec(cn, local_bb_host(cn), [pcie.name]))
        routes.append(RouteSpec(cn, PFS_HOST, [pfs_uplink.name]))
        # Cross-node BB access (remote NVMe) rides the fabric + remote PCIe.
        for other in cns:
            if other != cn:
                routes.append(
                    RouteSpec(cn, local_bb_host(other), ["fabric", f"{other}-pcie"])
                )
        for other in cns:
            if other < cn:
                routes.append(RouteSpec(other, cn, ["fabric"]))
    for cn in cns:
        routes.append(RouteSpec(local_bb_host(cn), PFS_HOST, [f"{cn}-pfsnet"]))

    return PlatformSpec(
        name=f"summit[{n_compute}cn]",
        hosts=tuple(hosts),
        links=tuple(links),
        routes=tuple(routes),
    )
