"""JSON (de)serialization of platform specs.

The schema mirrors the dataclasses one-to-one so that a platform can be
described in a standalone file, mimicking WRENCH's platform-XML workflow:

.. code-block:: json

    {
      "name": "my-cluster",
      "hosts": [
        {"name": "cn0", "cores": 32, "core_speed": 3.68e10, "ram": 1.28e11,
         "disks": [{"name": "ssd", "read_bandwidth": 9.5e8,
                     "write_bandwidth": 9.5e8, "capacity": 6.4e12}]}
      ],
      "links": [{"name": "up0", "bandwidth": 8e8, "latency": 0.0}],
      "routes": [{"src": "cn0", "dst": "bb0", "links": ["up0"]}]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.platform.spec import (
    DiskSpec,
    HostRole,
    HostSpec,
    LinkSpec,
    PlatformSpec,
    RouteSpec,
)

_INF = float("inf")


def _num(value: Any, default: float) -> float:
    if value is None:
        return default
    return float(value)


def platform_to_json(spec: PlatformSpec, path: "str | Path | None" = None) -> str:
    """Serialize ``spec`` to a JSON string (and optionally write ``path``)."""
    doc = {
        "name": spec.name,
        "hosts": [
            {
                "name": h.name,
                "cores": h.cores,
                "core_speed": h.core_speed,
                **({"role": h.role.value} if h.role is not None else {}),
                **(
                    {"attached_to": h.attached_to}
                    if h.attached_to is not None
                    else {}
                ),
                **({"ram": h.ram} if h.ram != _INF else {}),
                "disks": [
                    {
                        "name": d.name,
                        "read_bandwidth": d.read_bandwidth,
                        "write_bandwidth": d.write_bandwidth,
                        **({"capacity": d.capacity} if d.capacity != _INF else {}),
                    }
                    for d in h.disks
                ],
            }
            for h in spec.hosts
        ],
        "links": [
            {
                "name": l.name,
                "bandwidth": l.bandwidth,
                "latency": l.latency,
                **(
                    {"concurrency_penalty": l.concurrency_penalty}
                    if l.concurrency_penalty
                    else {}
                ),
            }
            for l in spec.links
        ],
        "routes": [
            {"src": r.src, "dst": r.dst, "links": list(r.link_names)}
            for r in spec.routes
        ],
    }
    text = json.dumps(doc, indent=2)
    if path is not None:
        Path(path).write_text(text)
    return text


def platform_from_json(source: "str | Path") -> PlatformSpec:
    """Parse a platform spec from a JSON string or file path."""
    if isinstance(source, Path) or (
        isinstance(source, str) and not source.lstrip().startswith("{")
    ):
        text = Path(source).read_text()
    else:
        text = source
    doc = json.loads(text)

    if "name" not in doc or "hosts" not in doc:
        raise ValueError("platform JSON must contain 'name' and 'hosts'")

    hosts = []
    for h in doc["hosts"]:
        disks = tuple(
            DiskSpec(
                name=d["name"],
                read_bandwidth=float(d["read_bandwidth"]),
                write_bandwidth=float(d["write_bandwidth"]),
                capacity=_num(d.get("capacity"), _INF),
            )
            for d in h.get("disks", [])
        )
        role = h.get("role")
        hosts.append(
            HostSpec(
                name=h["name"],
                cores=int(h["cores"]),
                core_speed=float(h["core_speed"]),
                ram=_num(h.get("ram"), _INF),
                disks=disks,
                role=HostRole(role) if role is not None else None,
                attached_to=h.get("attached_to"),
            )
        )

    links = tuple(
        LinkSpec(
            name=l["name"],
            bandwidth=float(l["bandwidth"]),
            latency=_num(l.get("latency"), 0.0),
            concurrency_penalty=_num(l.get("concurrency_penalty"), 0.0),
        )
        for l in doc.get("links", [])
    )
    routes = tuple(
        RouteSpec(r["src"], r["dst"], r["links"]) for r in doc.get("routes", [])
    )
    return PlatformSpec(
        name=doc["name"], hosts=tuple(hosts), links=links, routes=routes
    )
