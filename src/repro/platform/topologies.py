"""Interconnect topology generators: fat-tree and dragonfly.

The presets model each compute node's path to storage as a dedicated
uplink — sufficient for the paper's single-node experiments.  For
multi-node studies the fabric's structure matters: Cori's Aries is a
dragonfly, Summit's EDR InfiniBand a fat-tree.  These generators build
:class:`~repro.platform.PlatformSpec` fragments with explicit switch
levels/groups so cross-node flows contend realistically.

Both produce *routes between compute hosts* (plus optional storage
attachment points); they compose with the storage/compute services like
any other platform.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.platform.spec import DiskSpec, HostSpec, LinkSpec, PlatformSpec, RouteSpec
from repro.platform.units import GB, GFLOPS, MB, US


@dataclass(frozen=True)
class NodeConfig:
    """Compute node parameters shared by the topology builders."""

    cores: int = 32
    core_speed: float = 40 * GFLOPS
    ram: float = float("inf")


def build_fat_tree(
    pods: int = 2,
    nodes_per_pod: int = 4,
    link_bandwidth: float = 12.5 * GB,
    link_latency: float = 1 * US,
    core_oversubscription: float = 1.0,
    node: Optional[NodeConfig] = None,
    pfs_bandwidth: float = 100 * MB,
) -> PlatformSpec:
    """A two-level fat-tree: edge switch per pod, one core layer.

    Each node has an access link to its pod's edge switch; pods connect
    through a core trunk whose bandwidth is the sum of pod uplinks
    divided by ``core_oversubscription`` (1.0 = full bisection).  Routes:

    * same pod:  access ↑, access ↓ (through the edge switch);
    * cross pod: access ↑, pod uplink, core trunk, pod uplink, access ↓.

    A ``pfs`` host with one disk hangs off the core layer, so storage
    traffic shares the trunk with cross-pod traffic — the fat-tree
    analogue of an I/O-node SAN.
    """
    if pods <= 0 or nodes_per_pod <= 0:
        raise ValueError("pods and nodes_per_pod must be positive")
    if core_oversubscription < 1.0:
        raise ValueError("core_oversubscription must be >= 1")
    node = node or NodeConfig()

    hosts: list[HostSpec] = []
    links: list[LinkSpec] = []
    routes: list[RouteSpec] = []

    access: dict[str, str] = {}  # host -> access link name
    uplink: dict[int, str] = {}  # pod -> uplink name
    for p in range(pods):
        up = LinkSpec(
            name=f"pod{p}-up",
            bandwidth=nodes_per_pod * link_bandwidth,
            latency=link_latency,
        )
        links.append(up)
        uplink[p] = up.name
        for n in range(nodes_per_pod):
            name = f"cn{p * nodes_per_pod + n}"
            hosts.append(
                HostSpec(
                    name=name,
                    cores=node.cores,
                    core_speed=node.core_speed,
                    ram=node.ram,
                )
            )
            link = LinkSpec(
                name=f"{name}-access",
                bandwidth=link_bandwidth,
                latency=link_latency,
            )
            links.append(link)
            access[name] = link.name

    trunk = LinkSpec(
        name="core-trunk",
        bandwidth=pods * nodes_per_pod * link_bandwidth / core_oversubscription,
        latency=link_latency,
    )
    links.append(trunk)

    hosts.append(
        HostSpec(
            name="pfs",
            cores=1,
            core_speed=node.core_speed,
            disks=(
                DiskSpec(
                    "lustre",
                    read_bandwidth=pfs_bandwidth,
                    write_bandwidth=pfs_bandwidth,
                ),
            ),
        )
    )

    names = [h.name for h in hosts if h.name != "pfs"]
    for i, a in enumerate(names):
        pod_a = i // nodes_per_pod
        for j in range(i + 1, len(names)):
            b = names[j]
            pod_b = j // nodes_per_pod
            if pod_a == pod_b:
                routes.append(RouteSpec(a, b, [access[a], access[b]]))
            else:
                routes.append(
                    RouteSpec(
                        a,
                        b,
                        [
                            access[a],
                            uplink[pod_a],
                            trunk.name,
                            uplink[pod_b],
                            access[b],
                        ],
                    )
                )
        routes.append(
            RouteSpec(a, "pfs", [access[a], uplink[pod_a], trunk.name])
        )

    return PlatformSpec(
        name=f"fat-tree[{pods}x{nodes_per_pod}]",
        hosts=tuple(hosts),
        links=tuple(links),
        routes=tuple(routes),
    )


def build_dragonfly(
    groups: int = 3,
    nodes_per_group: int = 4,
    local_bandwidth: float = 12.5 * GB,
    global_bandwidth: float = 4.7 * GB,
    link_latency: float = 1.3 * US,
    node: Optional[NodeConfig] = None,
    pfs_bandwidth: float = 100 * MB,
) -> PlatformSpec:
    """A simplified dragonfly: all-to-all groups, shared intra-group rail.

    Each group owns one local rail every member traverses; each ordered
    group pair shares one global link (minimal routing).  Cross-group
    routes are local rail → global link → local rail, so global links
    are the scarce resource — the defining dragonfly property.  The PFS
    attaches to group 0's rail (Aries systems reach storage through I/O
    groups).
    """
    if groups <= 1 or nodes_per_group <= 0:
        raise ValueError("need >= 2 groups and positive nodes_per_group")
    node = node or NodeConfig()

    hosts: list[HostSpec] = []
    links: list[LinkSpec] = []
    routes: list[RouteSpec] = []

    rail: dict[int, str] = {}
    for g in range(groups):
        local = LinkSpec(
            name=f"g{g}-rail",
            bandwidth=nodes_per_group * local_bandwidth,
            latency=link_latency,
        )
        links.append(local)
        rail[g] = local.name
        for n in range(nodes_per_group):
            hosts.append(
                HostSpec(
                    name=f"cn{g * nodes_per_group + n}",
                    cores=node.cores,
                    core_speed=node.core_speed,
                    ram=node.ram,
                )
            )

    global_link: dict[tuple[int, int], str] = {}
    for a in range(groups):
        for b in range(a + 1, groups):
            link = LinkSpec(
                name=f"global-{a}-{b}",
                bandwidth=global_bandwidth,
                latency=link_latency,
            )
            links.append(link)
            global_link[(a, b)] = link.name

    hosts.append(
        HostSpec(
            name="pfs",
            cores=1,
            core_speed=node.core_speed,
            disks=(
                DiskSpec(
                    "lustre",
                    read_bandwidth=pfs_bandwidth,
                    write_bandwidth=pfs_bandwidth,
                ),
            ),
        )
    )

    def group_of(index: int) -> int:
        return index // nodes_per_group

    names = [h.name for h in hosts if h.name != "pfs"]
    for i, a in enumerate(names):
        ga = group_of(i)
        for j in range(i + 1, len(names)):
            b = names[j]
            gb = group_of(j)
            if ga == gb:
                routes.append(RouteSpec(a, b, [rail[ga]]))
            else:
                key = (min(ga, gb), max(ga, gb))
                routes.append(
                    RouteSpec(a, b, [rail[ga], global_link[key], rail[gb]])
                )
        # PFS through group 0.
        if ga == 0:
            routes.append(RouteSpec(a, "pfs", [rail[0]]))
        else:
            key = (0, ga)
            routes.append(
                RouteSpec(a, "pfs", [rail[ga], global_link[key], rail[0]])
            )

    return PlatformSpec(
        name=f"dragonfly[{groups}x{nodes_per_group}]",
        hosts=tuple(hosts),
        links=tuple(links),
        routes=tuple(routes),
    )
