"""Unit helpers: byte sizes, bandwidths, and compute speeds.

The paper mixes decimal (MB/s bandwidths from vendor datasheets) and
binary (MiB file sizes) units; both families are provided so call sites
can quote the paper verbatim.
"""

from __future__ import annotations

import math

# lint: ignore-file[SIM010] - this module *defines* the unit vocabulary,
# so its raw magnitudes are the one sanctioned source of such literals.

# Decimal byte units (bandwidths, vendor capacities)
KB = 1e3
MB = 1e6
GB = 1e9
TB = 1e12

# Binary byte units (file sizes)
KiB = 1024.0
MiB = 1024.0**2
GiB = 1024.0**3
TiB = 1024.0**4

# Compute speeds
MFLOPS = 1e6
GFLOPS = 1e9
TFLOPS = 1e12

# Time
US = 1e-6
MS = 1e-3
MINUTE = 60.0
HOUR = 3600.0


def parse_size(text: str) -> float:
    """Parse a human-readable size like ``"32 MiB"`` or ``"6.5GB"``.

    Supports the decimal (kB/MB/GB/TB) and binary (KiB/MiB/GiB/TiB)
    families, a bare ``B`` suffix, and unit-less numbers (bytes).
    Sizes are byte counts, so negative, ``NaN``, and infinite
    magnitudes are rejected with :class:`ValueError`.
    """
    units = {
        "b": 1.0,
        "kb": KB, "mb": MB, "gb": GB, "tb": TB,
        "kib": KiB, "mib": MiB, "gib": GiB, "tib": TiB,
    }
    s = text.strip().lower().replace(" ", "")
    for suffix in sorted(units, key=len, reverse=True):
        if s.endswith(suffix):
            number = s[: -len(suffix)]
            if not number:
                raise ValueError(f"missing magnitude in size {text!r}")
            return _checked_magnitude(number, text) * units[suffix]
    return _checked_magnitude(s, text)


def _checked_magnitude(number: str, original: str) -> float:
    value = float(number)  # raises ValueError on garbage already
    if math.isnan(value):
        raise ValueError(f"size {original!r} is not a number")
    if math.isinf(value):
        raise ValueError(f"size {original!r} is infinite")
    if value < 0:
        raise ValueError(f"size {original!r} is negative; sizes are byte counts")
    return value


def format_size(n_bytes: float) -> str:
    """Render a byte count with a binary suffix (``"32.0 MiB"``)."""
    value = float(n_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            return f"{value:.1f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_bandwidth(bytes_per_s: float) -> str:
    """Render a bandwidth with a decimal suffix (``"6.5 GB/s"``)."""
    value = float(bytes_per_s)
    for suffix in ("B/s", "kB/s", "MB/s", "GB/s", "TB/s"):
        if abs(value) < 1000.0 or suffix == "TB/s":
            return f"{value:.1f} {suffix}"
        value /= 1000.0
    raise AssertionError("unreachable")
