"""Live platform: a PlatformSpec instantiated into a DES environment.

The runtime platform owns:

* the :class:`~repro.network.FlowNetwork` that all transfers run on,
* the :class:`~repro.network.RoutingTable` between hosts,
* per-disk read/write channel links (a disk is two links in the flow
  graph, so reads and writes contend separately, each shared max-min
  among concurrent operations).
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.des import Environment, Event
from repro.network import FlowNetwork, Link, RateAllocator, Route, RoutingTable
from repro.platform.spec import DiskSpec, HostSpec, PlatformSpec


class Platform:
    """A platform bound to a simulation environment.

    ``allocator`` selects the network's bandwidth-sharing discipline — a
    registry name or callable, passed through to
    :class:`~repro.network.FlowNetwork` (``None`` keeps the default
    max-min model).
    """

    def __init__(
        self,
        env: Environment,
        spec: PlatformSpec,
        allocator: "str | RateAllocator | None" = None,
    ) -> None:
        self.env = env
        self.spec = spec
        self.network = FlowNetwork(env, allocator=allocator)

        #: Link name → live Link object.
        self.links: dict[str, Link] = {
            ls.name: Link(
                name=ls.name,
                bandwidth=ls.bandwidth,
                latency=ls.latency,
                concurrency_penalty=ls.concurrency_penalty,
            )
            for ls in spec.links
        }

        #: (host, disk) → (read channel link, write channel link).
        self.disk_channels: dict[tuple[str, str], tuple[Link, Link]] = {}
        for host in spec.hosts:
            for disk in host.disks:
                read = Link(
                    name=f"{host.name}:{disk.name}:read",
                    bandwidth=disk.read_bandwidth,
                )
                write = Link(
                    name=f"{host.name}:{disk.name}:write",
                    bandwidth=disk.write_bandwidth,
                )
                self.disk_channels[(host.name, disk.name)] = (read, write)

        self.routing = RoutingTable()
        for route in spec.routes:
            self.routing.add_route(
                route.src,
                route.dst,
                [self.links[name] for name in route.link_names],
            )

        self.hosts: dict[str, HostSpec] = {h.name: h for h in spec.hosts}

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def host(self, name: str) -> HostSpec:
        try:
            return self.hosts[name]
        except KeyError:
            raise KeyError(f"no host named {name!r}") from None

    def disk_read_link(self, host: str, disk: str) -> Link:
        return self._channels(host, disk)[0]

    def disk_write_link(self, host: str, disk: str) -> Link:
        return self._channels(host, disk)[1]

    def _channels(self, host: str, disk: str) -> tuple[Link, Link]:
        try:
            return self.disk_channels[(host, disk)]
        except KeyError:
            raise KeyError(f"no disk {disk!r} on host {host!r}") from None

    def route(self, src: str, dst: str) -> Route:
        return self.routing.route(src, dst)

    # ------------------------------------------------------------------
    # Transfers
    # ------------------------------------------------------------------
    def read_from_disk(
        self,
        size: float,
        disk_host: str,
        disk_name: str,
        dest_host: str,
        extra_latency: float = 0.0,
        max_rate: float = float("inf"),
        label: str = "",
    ) -> Event:
        """Move ``size`` bytes disk → ``dest_host`` RAM.

        The flow traverses the disk's read channel plus the network route
        from the disk's host to the destination host (empty for local
        disks).
        """
        links = [self.disk_read_link(disk_host, disk_name)]
        links += list(self.route(disk_host, dest_host))
        return self.network.transfer(
            size, links, latency=extra_latency, max_rate=max_rate, label=label
        )

    def write_to_disk(
        self,
        size: float,
        disk_host: str,
        disk_name: str,
        src_host: str,
        extra_latency: float = 0.0,
        max_rate: float = float("inf"),
        label: str = "",
    ) -> Event:
        """Move ``size`` bytes ``src_host`` RAM → disk."""
        links = list(self.route(src_host, disk_host))
        links.append(self.disk_write_link(disk_host, disk_name))
        return self.network.transfer(
            size, links, latency=extra_latency, max_rate=max_rate, label=label
        )

    def transfer_between_disks(
        self,
        size: float,
        src: tuple[str, str],
        dst: tuple[str, str],
        extra_latency: float = 0.0,
        max_rate: float = float("inf"),
        label: str = "",
    ) -> Event:
        """Disk-to-disk copy: src read channel → network → dst write channel."""
        src_host, src_disk = src
        dst_host, dst_disk = dst
        links = [self.disk_read_link(src_host, src_disk)]
        links += list(self.route(src_host, dst_host))
        links.append(self.disk_write_link(dst_host, dst_disk))
        return self.network.transfer(
            size, links, latency=extra_latency, max_rate=max_rate, label=label
        )
