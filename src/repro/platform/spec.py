"""Declarative platform descriptions (the analogue of SimGrid platform XML)."""

from __future__ import annotations

import enum
import warnings
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional


class HostRole(str, enum.Enum):
    """What a host *is* in the storage/compute topology.

    Historically the simulator inferred roles from name prefixes
    (``cn*`` compute, ``bb*`` shared burst buffer, ``*-bb`` node-local
    burst buffer, ``pfs`` the parallel file system).  Roles make that
    contract explicit so platforms are free to name hosts anything;
    :func:`infer_host_roles` upgrades legacy, name-convention specs.
    """

    COMPUTE = "compute"
    SHARED_BB = "shared_bb"
    LOCAL_BB = "local_bb"
    PFS = "pfs"


def infer_role(name: str) -> Optional[HostRole]:
    """Role implied by the legacy name conventions, or ``None``."""
    if name == "pfs":
        return HostRole.PFS
    if name.endswith("-bb"):
        return HostRole.LOCAL_BB
    if name.startswith("bb"):
        return HostRole.SHARED_BB
    if name.startswith("cn"):
        return HostRole.COMPUTE
    return None


@dataclass(frozen=True)
class DiskSpec:
    """A storage device attached to a host.

    Read and write channels are independent (NVMe devices routinely have
    asymmetric performance — Summit's PM1725a reads at ~6 GB/s but writes
    at ~2.1 GB/s).
    """

    name: str
    read_bandwidth: float      # bytes/s
    write_bandwidth: float     # bytes/s
    capacity: float = float("inf")  # bytes

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("disk name must be non-empty")
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError(
                f"disk {self.name!r}: bandwidths must be positive"
            )
        if self.capacity <= 0:
            raise ValueError(f"disk {self.name!r}: capacity must be positive")


@dataclass(frozen=True)
class HostSpec:
    """A machine: cores, per-core speed, RAM, and locally attached disks.

    ``role`` declares the host's function in the storage topology (see
    :class:`HostRole`); ``None`` means "unspecified" and the simulator
    falls back to the legacy name-prefix inference with a
    ``DeprecationWarning``.  ``attached_to`` names the compute host a
    ``local_bb`` host serves (its NVMe sits on that node's PCIe bus).
    """

    name: str
    cores: int
    core_speed: float          # flop/s per core
    ram: float = float("inf")  # bytes
    disks: tuple[DiskSpec, ...] = ()
    role: Optional[HostRole] = None
    attached_to: Optional[str] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("host name must be non-empty")
        if self.cores <= 0:
            raise ValueError(f"host {self.name!r}: cores must be positive")
        if self.core_speed <= 0:
            raise ValueError(f"host {self.name!r}: core_speed must be positive")
        if self.ram <= 0:
            raise ValueError(f"host {self.name!r}: ram must be positive")
        if self.role is not None and not isinstance(self.role, HostRole):
            object.__setattr__(self, "role", HostRole(self.role))
        if self.attached_to is not None and self.role is not HostRole.LOCAL_BB:
            raise ValueError(
                f"host {self.name!r}: attached_to is only meaningful for "
                f"local_bb hosts (role is {self.role})"
            )
        object.__setattr__(self, "disks", tuple(self.disks))
        seen = set()
        for disk in self.disks:
            if disk.name in seen:
                raise ValueError(
                    f"host {self.name!r}: duplicate disk {disk.name!r}"
                )
            seen.add(disk.name)

    @property
    def speed(self) -> float:
        """Aggregate peak speed of the host in flop/s."""
        return self.cores * self.core_speed

    def disk(self, name: str) -> DiskSpec:
        for d in self.disks:
            if d.name == name:
                return d
        raise KeyError(f"host {self.name!r} has no disk {name!r}")


@dataclass(frozen=True)
class LinkSpec:
    """A network link (see :class:`repro.network.Link` for semantics)."""

    name: str
    bandwidth: float
    latency: float = 0.0
    concurrency_penalty: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("link name must be non-empty")
        if self.bandwidth <= 0:
            raise ValueError(f"link {self.name!r}: bandwidth must be positive")
        if self.latency < 0:
            raise ValueError(f"link {self.name!r}: negative latency")


@dataclass(frozen=True)
class RouteSpec:
    """A route between two hosts, referencing links by name."""

    src: str
    dst: str
    link_names: tuple[str, ...]

    def __init__(self, src: str, dst: str, link_names: Iterable[str]) -> None:
        object.__setattr__(self, "src", src)
        object.__setattr__(self, "dst", dst)
        object.__setattr__(self, "link_names", tuple(link_names))
        if src == dst:
            raise ValueError("route endpoints must differ")


@dataclass(frozen=True)
class PlatformSpec:
    """A complete platform: hosts, links, and routes.

    Invariants checked at construction:

    * host and link names are unique;
    * every route references existing hosts and links.
    """

    name: str
    hosts: tuple[HostSpec, ...]
    links: tuple[LinkSpec, ...] = ()
    routes: tuple[RouteSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "hosts", tuple(self.hosts))
        object.__setattr__(self, "links", tuple(self.links))
        object.__setattr__(self, "routes", tuple(self.routes))

        host_names = [h.name for h in self.hosts]
        if len(set(host_names)) != len(host_names):
            raise ValueError("duplicate host names in platform")
        link_names = [l.name for l in self.links]
        if len(set(link_names)) != len(link_names):
            raise ValueError("duplicate link names in platform")

        hosts = set(host_names)
        links = set(link_names)
        for h in self.hosts:
            if h.attached_to is not None and h.attached_to not in hosts:
                raise ValueError(
                    f"host {h.name!r} is attached to unknown host "
                    f"{h.attached_to!r}"
                )
        for route in self.routes:
            if route.src not in hosts or route.dst not in hosts:
                raise ValueError(
                    f"route {route.src!r}→{route.dst!r} references unknown host"
                )
            for name in route.link_names:
                if name not in links:
                    raise ValueError(
                        f"route {route.src!r}→{route.dst!r} references "
                        f"unknown link {name!r}"
                    )

    def host(self, name: str) -> HostSpec:
        for h in self.hosts:
            if h.name == name:
                return h
        raise KeyError(f"no host named {name!r}")

    def link(self, name: str) -> LinkSpec:
        for l in self.links:
            if l.name == name:
                return l
        raise KeyError(f"no link named {name!r}")

    def hosts_matching(self, prefix: str) -> list[HostSpec]:
        """All hosts whose name starts with ``prefix`` (e.g. ``"cn"``)."""
        return [h for h in self.hosts if h.name.startswith(prefix)]

    def hosts_with_role(self, role: "HostRole | str") -> list[HostSpec]:
        """All hosts declaring ``role`` (explicit roles only)."""
        role = HostRole(role)
        return [h for h in self.hosts if h.role is role]

    @property
    def has_roles(self) -> bool:
        """True when every host declares an explicit :class:`HostRole`."""
        return all(h.role is not None for h in self.hosts)

    @property
    def total_cores(self) -> int:
        return sum(h.cores for h in self.hosts)


def infer_host_roles(spec: PlatformSpec, warn: bool = True) -> PlatformSpec:
    """Fill missing host roles from the legacy name conventions.

    Returns a new spec in which every host carries an explicit
    :class:`HostRole` (hosts that already declare one are untouched;
    a ``local_bb`` host additionally gets ``attached_to`` derived from
    its ``<cn>-bb`` name).  Emits a ``DeprecationWarning`` when any
    role had to be inferred — platform descriptions should declare
    roles explicitly.

    Raises
    ------
    ValueError
        If a host's role can be neither read nor inferred.
    """
    if spec.has_roles:
        return spec
    inferred: list[str] = []
    hosts = []
    for h in spec.hosts:
        if h.role is not None:
            hosts.append(h)
            continue
        role = infer_role(h.name)
        if role is None:
            raise ValueError(
                f"host {h.name!r} has no role and none can be inferred from "
                "its name; declare role=compute|shared_bb|local_bb|pfs"
            )
        attached = h.attached_to
        if role is HostRole.LOCAL_BB and attached is None:
            attached = h.name[: -len("-bb")]
        hosts.append(replace(h, role=role, attached_to=attached))
        inferred.append(h.name)
    if warn and inferred:
        warnings.warn(
            "platform relies on host-name conventions to assign storage "
            f"roles (inferred for: {', '.join(inferred)}); declare an "
            "explicit 'role' on each host instead",
            DeprecationWarning,
            stacklevel=2,
        )
    return replace(spec, hosts=tuple(hosts))
