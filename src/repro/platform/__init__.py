"""Platform descriptions: hosts, disks, links, routes, and presets.

A :class:`PlatformSpec` is a declarative description of an execution
platform (the analogue of WRENCH/SimGrid's platform XML file).  It can be
written/read as JSON and instantiated into a live :class:`Platform`
bound to a DES environment, which owns the flow network and routing
table used by the storage and compute services.

The :mod:`repro.platform.presets` module encodes Table I of the paper:
the calibrated Cori (shared burst buffer) and Summit (on-node burst
buffer) platforms.
"""

from repro.platform.spec import (
    DiskSpec,
    HostRole,
    HostSpec,
    LinkSpec,
    PlatformSpec,
    RouteSpec,
    infer_host_roles,
    infer_role,
)
from repro.platform.runtime import Platform
from repro.platform.serialization import platform_from_json, platform_to_json
from repro.platform import presets
from repro.platform import units

__all__ = [
    "DiskSpec",
    "HostRole",
    "HostSpec",
    "LinkSpec",
    "Platform",
    "PlatformSpec",
    "RouteSpec",
    "infer_host_roles",
    "infer_role",
    "platform_from_json",
    "platform_to_json",
    "presets",
    "units",
]
