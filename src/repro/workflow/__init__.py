"""Workflow abstraction: files, tasks, DAGs, and workflow generators.

A workflow is a DAG whose vertices are tasks and whose edges are induced
by input/output files (exactly the simulator input described in
Section IV-A of the paper).  Two generators reproduce the paper's
workloads:

* :func:`repro.workflow.swarp.make_swarp` — the SWarp cosmology workflow
  (Figure 2): a sequential stage-in task followed by N independent
  Resample→Combine pipelines.
* :func:`repro.workflow.genomes.make_1000genomes` — the 1000Genomes
  bioinformatics workflow (Figure 12): 903 tasks over 22 chromosomes with
  a ~67 GB data footprint.

:mod:`repro.workflow.wfformat` reads and writes the WfCommons
(WorkflowHub) JSON trace schema the paper's case study consumes.
"""

from repro.workflow.model import File, Task, TaskCategory, Workflow
from repro.workflow import calibration, checks, genomes, swarp, synthetic, transforms, wfformat

__all__ = [
    "File",
    "Task",
    "TaskCategory",
    "Workflow",
    "calibration",
    "checks",
    "genomes",
    "swarp",
    "synthetic",
    "transforms",
    "wfformat",
]
