"""Workflow linting: catch modelling mistakes before simulating them.

The Workflow constructor enforces hard invariants (DAG-ness, single
producers, consistent sizes); this linter flags the *soft* smells that
usually mean a modelling bug — zero-work tasks, dangling outputs,
unreachable islands, core requests no preset host satisfies — without
refusing to run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import networkx as nx

from repro.workflow.model import TaskCategory, Workflow


@dataclass(frozen=True)
class LintFinding:
    severity: str   # "warning" | "info"
    code: str       # short machine-readable id
    message: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"[{self.severity}] {self.code}: {self.message}"


def lint_workflow(
    workflow: Workflow,
    max_host_cores: Optional[int] = None,
) -> list[LintFinding]:
    """Return the lint findings for ``workflow`` (empty = clean)."""
    findings: list[LintFinding] = []

    # Zero-work compute tasks (stage-in/out are legitimately workless).
    for task in workflow:
        if task.category == TaskCategory.COMPUTE and task.flops == 0:
            findings.append(
                LintFinding(
                    "warning",
                    "zero-flops",
                    f"compute task {task.name!r} has zero flops — it will "
                    "finish instantly except for I/O",
                )
            )

    # Tasks with neither inputs nor outputs: pure compute islands.
    for task in workflow:
        if not task.inputs and not task.outputs and len(workflow) > 1:
            findings.append(
                LintFinding(
                    "info",
                    "detached-task",
                    f"task {task.name!r} exchanges no files — it runs "
                    "independently of the rest of the workflow",
                )
            )

    # Disconnected components (beyond one) often mean a typo'd file name.
    if len(workflow) > 1:
        components = nx.number_weakly_connected_components(workflow.graph)
        if components > 1:
            findings.append(
                LintFinding(
                    "info",
                    "disconnected",
                    f"workflow splits into {components} independent "
                    "components",
                )
            )

    # Core requests beyond the target host size get silently clamped by
    # the engine; better to know up front.
    if max_host_cores is not None:
        for task in workflow:
            if task.cores > max_host_cores:
                findings.append(
                    LintFinding(
                        "warning",
                        "cores-clamped",
                        f"task {task.name!r} requests {task.cores} cores but "
                        f"the largest host has {max_host_cores} — the engine "
                        "will clamp it",
                    )
                )

    # Very skewed file sizes can indicate unit mistakes (bytes vs MB).
    sizes = [f.size for f in workflow.files.values() if f.size > 0]
    if len(sizes) >= 2:
        ratio = max(sizes) / min(sizes)
        if ratio > 1e9:
            findings.append(
                LintFinding(
                    "warning",
                    "size-skew",
                    f"file sizes span {ratio:.1e}x — check units "
                    "(bytes vs MB?)",
                )
            )

    # Tasks reading their own outputs would already fail DAG checks;
    # but a task whose output is never read and never marked as a final
    # product of an exit task is suspicious.
    exit_names = {t.name for t in workflow.exit_tasks()}
    for task in workflow:
        if task.name in exit_names:
            continue
        for f in task.outputs:
            if not workflow.consumers_of(f.name):
                findings.append(
                    LintFinding(
                        "info",
                        "unused-output",
                        f"file {f.name!r} produced by non-exit task "
                        f"{task.name!r} is never consumed",
                    )
                )

    return findings
