"""Generator for the SWarp cosmology workflow (paper Figure 2).

The workflow is a sequential *stage-in* task followed by ``n_pipelines``
independent pipelines, each a Resample task feeding a Combine task.
Every pipeline reads 16 input images (32 MiB) and 16 weight maps
(16 MiB); Resample writes one resampled image+weight per input pair and
Combine coadds them into a single mosaic.
"""

from __future__ import annotations

from repro.workflow import calibration as cal
from repro.workflow.model import File, Task, TaskCategory, Workflow


def pipeline_input_files(pipeline: int) -> list[File]:
    """The 32 external input files of one pipeline (16 images, 16 weights)."""
    files = []
    for j in range(cal.SWARP_IMAGES_PER_PIPELINE):
        files.append(File(f"p{pipeline}/input_{j}.fits", cal.SWARP_IMAGE_SIZE))
        files.append(File(f"p{pipeline}/weight_{j}.fits", cal.SWARP_WEIGHT_SIZE))
    return files


def pipeline_intermediate_files(pipeline: int) -> list[File]:
    """The 32 files Resample writes and Combine reads."""
    files = []
    for j in range(cal.SWARP_IMAGES_PER_PIPELINE):
        files.append(
            File(f"p{pipeline}/resamp_{j}.fits", cal.SWARP_RESAMPLED_IMAGE_SIZE)
        )
        files.append(
            File(f"p{pipeline}/resamp_w_{j}.fits", cal.SWARP_RESAMPLED_WEIGHT_SIZE)
        )
    return files


def make_swarp(
    n_pipelines: int = 1,
    cores_per_task: int = 32,
    include_stage_in: bool = True,
    include_stage_out: bool = False,
) -> Workflow:
    """Build a SWarp workflow instance.

    Parameters
    ----------
    n_pipelines:
        Number of independent Resample→Combine pipelines (the paper runs
        1–32 on a single node).
    cores_per_task:
        Cores requested by each Resample/Combine task (the paper sweeps
        1–32).
    include_stage_in:
        Include the leading sequential stage-in task (paper Figure 2's
        ``S_in``).  The engine executes it as pure data movement.
    include_stage_out:
        Append a stage-out task that drains every pipeline's coadd
        products from the burst buffer to the PFS (the "staging out"
        half of the data lifecycle; not part of the paper's measured
        scenarios, which archive implicitly).
    """
    if n_pipelines <= 0:
        raise ValueError("n_pipelines must be positive")
    if cores_per_task <= 0:
        raise ValueError("cores_per_task must be positive")

    tasks: list[Task] = []
    all_inputs: list[File] = []
    all_outputs: list[File] = []

    for i in range(n_pipelines):
        inputs = pipeline_input_files(i)
        intermediates = pipeline_intermediate_files(i)
        outputs = [
            File(f"p{i}/coadd.fits", cal.SWARP_COADD_IMAGE_SIZE),
            File(f"p{i}/coadd_w.fits", cal.SWARP_COADD_WEIGHT_SIZE),
        ]
        all_inputs.extend(inputs)
        all_outputs.extend(outputs)
        tasks.append(
            Task(
                name=f"resample_{i}",
                flops=cal.resample_flops(),
                inputs=tuple(inputs),
                outputs=tuple(intermediates),
                cores=cores_per_task,
                alpha=cal.RESAMPLE_ALPHA,
                group="resample",
            )
        )
        tasks.append(
            Task(
                name=f"combine_{i}",
                flops=cal.combine_flops(),
                inputs=tuple(intermediates),
                outputs=tuple(outputs),
                cores=cores_per_task,
                alpha=cal.COMBINE_ALPHA,
                group="combine",
            )
        )

    if include_stage_in:
        # The stage-in task "produces" every external input file; the
        # engine executes it as PFS→placement copies (paper: stage-in is
        # always sequential, performed before any pipeline starts).
        tasks.insert(
            0,
            Task(
                name="stage_in",
                flops=cal.STAGE_IN_FLOPS,
                inputs=(),
                outputs=tuple(all_inputs),
                cores=1,
                category=TaskCategory.STAGE_IN,
                group="stage_in",
            ),
        )

    if include_stage_out:
        tasks.append(
            Task(
                name="stage_out",
                flops=cal.STAGE_IN_FLOPS,
                inputs=tuple(all_outputs),
                outputs=(),
                cores=1,
                category=TaskCategory.STAGE_OUT,
                group="stage_out",
            )
        )

    return Workflow(name=f"swarp[{n_pipelines}x{cores_per_task}]", tasks=tasks)
