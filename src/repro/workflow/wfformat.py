"""WfCommons (WorkflowHub) JSON trace import/export.

The paper's case study consumes 1000Genomes execution traces from the
WorkflowHub project.  This module reads and writes the WfCommons JSON
schema (the "wfformat"), so that:

* our generated workflows can be exported as traces other tools consume;
* published traces can be imported and simulated directly.

Only the subset of the schema the simulator needs is handled: task
names, categories, runtimes, cores, and input/output files with sizes.
Runtimes in the trace are *observed seconds*; they are converted to
platform-independent flops via a reference core speed (Section IV-A's
calibration step, Eq. 4).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Optional

from repro.platform.presets import TABLE_I
from repro.workflow.model import File, Task, TaskCategory, Workflow

if False:  # pragma: no cover - typing-only import without a cycle
    from repro.traces.events import ExecutionTrace

SCHEMA_VERSION = "1.4"


def workflow_to_wfformat(
    workflow: Workflow,
    reference_core_speed: Optional[float] = None,
    path: "str | Path | None" = None,
    description: str = "",
    trace: "Optional[ExecutionTrace]" = None,
) -> dict[str, Any]:
    """Export ``workflow`` as a WfCommons JSON document.

    Without a ``trace``, ``runtimeInSeconds`` is the sequential compute
    time on the reference core (defaults to Cori's calibrated speed) —
    a *specification* trace.  With a ``trace`` from an execution, task
    runtimes and the makespan are the *observed* values, producing the
    kind of executed-workflow trace WorkflowHub publishes.
    """
    speed = reference_core_speed or TABLE_I["cori"]["core_speed"]
    tasks_doc = []
    for task in workflow.topological_order():
        files_doc = [
            {"link": "input", "name": f.name, "sizeInBytes": int(f.size)}
            for f in task.inputs
        ] + [
            {"link": "output", "name": f.name, "sizeInBytes": int(f.size)}
            for f in task.outputs
        ]
        if trace is not None and task.name in trace.records:
            runtime = trace.records[task.name].duration
        else:
            runtime = task.flops / speed
        tasks_doc.append(
            {
                "name": task.name,
                "id": task.name,
                "category": task.group or task.category.value,
                "type": "compute",
                "runtimeInSeconds": runtime,
                "cores": task.cores,
                "files": files_doc,
                "parents": sorted(p.name for p in workflow.parents(task.name)),
            }
        )
    doc = {
        "name": workflow.name,
        "description": description,
        "schemaVersion": SCHEMA_VERSION,
        "workflow": {
            "makespanInSeconds": trace.makespan if trace is not None else 0,
            "executedAt": "1970-01-01T00:00:00Z",
            "tasks": tasks_doc,
        },
        "author": {"name": "repro", "email": "noreply@example.org"},
        "wms": {"name": "repro-wms", "version": "1.0.0"},
    }
    if path is not None:
        Path(path).write_text(json.dumps(doc, indent=2))
    return doc


def workflow_from_wfformat(
    source: "str | Path | dict",
    reference_core_speed: Optional[float] = None,
    default_cores: int = 1,
) -> Workflow:
    """Import a WfCommons JSON document (dict, JSON string, or file path)."""
    if isinstance(source, dict):
        doc = source
    else:
        if isinstance(source, Path) or not str(source).lstrip().startswith("{"):
            text = Path(source).read_text()
        else:
            text = str(source)
        doc = json.loads(text)

    try:
        tasks_doc = doc["workflow"]["tasks"]
    except (KeyError, TypeError):
        # Older traces use "jobs" instead of "tasks".
        try:
            tasks_doc = doc["workflow"]["jobs"]
        except (KeyError, TypeError):
            raise ValueError(
                "not a WfCommons document: missing workflow.tasks"
            ) from None

    speed = reference_core_speed or TABLE_I["cori"]["core_speed"]
    tasks = []
    for t in tasks_doc:
        inputs, outputs = [], []
        for f in t.get("files", []):
            size = float(f.get("sizeInBytes", f.get("size", 0)))
            file = File(f["name"], size)
            if f.get("link") == "output":
                outputs.append(file)
            else:
                inputs.append(file)
        runtime = float(t.get("runtimeInSeconds", t.get("runtime", 0.0)))
        group = str(t.get("category", ""))
        tasks.append(
            Task(
                name=t["name"],
                flops=runtime * speed,
                inputs=tuple(inputs),
                outputs=tuple(outputs),
                cores=int(t.get("cores", default_cores) or default_cores),
                category=(
                    TaskCategory.STAGE_IN
                    if group == TaskCategory.STAGE_IN.value
                    else TaskCategory.COMPUTE
                ),
                group=group,
            )
        )
    return Workflow(name=str(doc.get("name", "imported")), tasks=tasks)
