"""Generator for the 1000Genomes workflow (paper Figure 12, Section IV-C).

Structure per chromosome ``c``:

* ``individuals_c_k`` (k = 1..25): parse one chunk of the chromosome's
  VCF data;
* ``individuals_merge_c``: merge the 25 chunks;
* ``sifting_c``: compute SIFT scores from the chromosome's annotation
  file;
* ``mutation_overlap_c_p`` and ``frequency_c_p`` (p over 7 populations):
  cross the merged individuals, the sifting output, and a population
  panel.

One global ``populations`` task produces the 7 population panels.  With
22 chromosomes this yields 22 × (25 + 1 + 1 + 7 + 7) + 1 = 903 tasks,
matching the instance the paper simulates, with a ~67 GB footprint of
which ~52 GB is external input (77%).
"""

from __future__ import annotations

from repro.workflow import calibration as cal
from repro.workflow.model import File, Task, Workflow

# Per-file size constants (bytes), chosen to hit the paper's aggregate
# footprint: 22 chromosomes × 25 chunks × 94 MB ≈ 51.7 GB of input and
# ≈ 14 GB of intermediates (see tests/workflow/test_genomes.py).
CHUNK_SIZE = 94e6              # raw VCF chunk read by one individuals task
ANNOTATION_SIZE = 20e6         # per-chromosome annotation read by sifting
POPULATION_PANEL_SIZE = 10e6   # per-population panel file
INDIVIDUALS_OUTPUT_SIZE = 20e6  # parsed chunk written by individuals
MERGE_OUTPUT_SIZE = 100e6      # merged per-chromosome individuals file
SIFTING_OUTPUT_SIZE = 2e6      # per-chromosome SIFT scores
OVERLAP_OUTPUT_SIZE = 0.1e6    # final statistics files
FREQUENCY_OUTPUT_SIZE = 0.2e6

POPULATION_NAMES = ("ALL", "AFR", "AMR", "EAS", "EUR", "SAS", "GBR")


def make_1000genomes(
    n_chromosomes: int = cal.GENOMES_CHROMOSOMES,
    individuals_per_chromosome: int = cal.GENOMES_INDIVIDUALS_PER_CHROMOSOME,
    cores_per_task: int = 1,
) -> Workflow:
    """Build a 1000Genomes workflow instance.

    The default parameters reproduce the paper's 903-task instance; the
    paper's Figure 14 reference data used a 2-chromosome configuration,
    obtainable with ``n_chromosomes=2``.
    """
    if n_chromosomes <= 0 or individuals_per_chromosome <= 0:
        raise ValueError("chromosome and chunk counts must be positive")

    populations = POPULATION_NAMES[: cal.GENOMES_POPULATIONS]
    tasks: list[Task] = []

    panel_files = {
        p: File(f"populations/{p}.panel", POPULATION_PANEL_SIZE)
        for p in populations
    }
    tasks.append(
        Task(
            name="populations",
            flops=cal.genomes_flops("populations"),
            inputs=(),
            outputs=tuple(panel_files.values()),
            cores=cores_per_task,
            group="populations",
        )
    )

    for c in range(1, n_chromosomes + 1):
        chunk_outputs = []
        for k in range(individuals_per_chromosome):
            chunk_in = File(f"chr{c}/chunk_{k}.vcf", CHUNK_SIZE)
            chunk_out = File(f"chr{c}/parsed_{k}.txt", INDIVIDUALS_OUTPUT_SIZE)
            chunk_outputs.append(chunk_out)
            tasks.append(
                Task(
                    name=f"individuals_c{c}_k{k}",
                    flops=cal.genomes_flops("individuals"),
                    inputs=(chunk_in,),
                    outputs=(chunk_out,),
                    cores=cores_per_task,
                    group="individuals",
                )
            )

        merged = File(f"chr{c}/merged.txt", MERGE_OUTPUT_SIZE)
        tasks.append(
            Task(
                name=f"individuals_merge_c{c}",
                flops=cal.genomes_flops("individuals_merge"),
                inputs=tuple(chunk_outputs),
                outputs=(merged,),
                cores=cores_per_task,
                group="individuals_merge",
            )
        )

        annotation = File(f"chr{c}/annotation.vcf", ANNOTATION_SIZE)
        sifted = File(f"chr{c}/sifted.txt", SIFTING_OUTPUT_SIZE)
        tasks.append(
            Task(
                name=f"sifting_c{c}",
                flops=cal.genomes_flops("sifting"),
                inputs=(annotation,),
                outputs=(sifted,),
                cores=cores_per_task,
                group="sifting",
            )
        )

        for p in populations:
            tasks.append(
                Task(
                    name=f"mutation_overlap_c{c}_{p}",
                    flops=cal.genomes_flops("mutation_overlap"),
                    inputs=(merged, sifted, panel_files[p]),
                    outputs=(
                        File(f"chr{c}/overlap_{p}.tar.gz", OVERLAP_OUTPUT_SIZE),
                    ),
                    cores=cores_per_task,
                    group="mutation_overlap",
                )
            )
            tasks.append(
                Task(
                    name=f"frequency_c{c}_{p}",
                    flops=cal.genomes_flops("frequency"),
                    inputs=(merged, sifted, panel_files[p]),
                    outputs=(
                        File(f"chr{c}/freq_{p}.tar.gz", FREQUENCY_OUTPUT_SIZE),
                    ),
                    cores=cores_per_task,
                    group="frequency",
                )
            )

    return Workflow(name=f"1000genomes[{n_chromosomes}chr]", tasks=tasks)
