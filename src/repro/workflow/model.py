"""Files, tasks, and the workflow DAG."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

import networkx as nx


@dataclass(frozen=True)
class File:
    """A data file flowing between tasks.

    Files are identified by name; two File objects with the same name are
    the same file (and must have the same size).
    """

    name: str
    size: float  # bytes

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("file name must be non-empty")
        if self.size < 0:
            raise ValueError(f"file {self.name!r}: negative size")


class TaskCategory(str, enum.Enum):
    """Task roles the engine and experiment harnesses distinguish."""

    STAGE_IN = "stage_in"
    STAGE_OUT = "stage_out"
    COMPUTE = "compute"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Task:
    """A workflow task.

    Parameters
    ----------
    name:
        Unique task identifier.
    flops:
        Sequential compute work in flop — the platform-independent
        equivalent of the paper's ``T_c(1)`` (divide by a core speed to
        get seconds).
    inputs / outputs:
        Files read before and written after the compute phase.
    cores:
        Cores requested for execution.
    alpha:
        Amdahl's-law non-parallelizable fraction (paper Eq. 2).  The
        paper's headline model assumes ``alpha = 0`` (perfect speedup,
        Eq. 4).
    category:
        Role marker; ``STAGE_IN`` tasks are executed by the engine as
        pure data movements.
    group:
        Free-form label tying tasks of the same kind together
        (e.g. ``"resample"``), used for per-category statistics.
    memory:
        RAM the task holds while executing, in bytes (0 = unaccounted).
        Enforced by the compute service against the host's RAM.
    """

    name: str
    flops: float
    inputs: tuple[File, ...] = ()
    outputs: tuple[File, ...] = ()
    cores: int = 1
    alpha: float = 0.0
    category: TaskCategory = TaskCategory.COMPUTE
    group: str = ""
    memory: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("task name must be non-empty")
        if self.flops < 0:
            raise ValueError(f"task {self.name!r}: negative flops")
        if self.cores <= 0:
            raise ValueError(f"task {self.name!r}: cores must be positive")
        if not (0.0 <= self.alpha <= 1.0):
            raise ValueError(f"task {self.name!r}: alpha must be in [0, 1]")
        if self.memory < 0:
            raise ValueError(f"task {self.name!r}: negative memory")
        object.__setattr__(self, "inputs", tuple(self.inputs))
        object.__setattr__(self, "outputs", tuple(self.outputs))
        names = [f.name for f in self.inputs]
        if len(set(names)) != len(names):
            raise ValueError(f"task {self.name!r}: duplicate input file")
        names = [f.name for f in self.outputs]
        if len(set(names)) != len(names):
            raise ValueError(f"task {self.name!r}: duplicate output file")

    @property
    def input_bytes(self) -> float:
        return sum(f.size for f in self.inputs)

    @property
    def output_bytes(self) -> float:
        return sum(f.size for f in self.outputs)


class Workflow:
    """A DAG of tasks with file-induced dependencies.

    Edges are derived, not declared: task B depends on task A iff some
    output file of A is an input file of B.  Construction validates that:

    * task names are unique;
    * every file name maps to a single size;
    * each file has at most one producer;
    * the induced graph is acyclic.
    """

    def __init__(self, name: str, tasks: Iterable[Task]) -> None:
        self.name = name
        self.tasks: dict[str, Task] = {}
        for task in tasks:
            if task.name in self.tasks:
                raise ValueError(f"duplicate task name {task.name!r}")
            self.tasks[task.name] = task

        # File table + single-producer validation.
        self.files: dict[str, File] = {}
        self._producer: dict[str, str] = {}
        self._consumers: dict[str, list[str]] = {}
        for task in self.tasks.values():
            for f in task.inputs + task.outputs:
                known = self.files.get(f.name)
                if known is None:
                    self.files[f.name] = f
                elif known.size != f.size:
                    raise ValueError(
                        f"file {f.name!r} declared with conflicting sizes "
                        f"{known.size} and {f.size}"
                    )
            for f in task.outputs:
                if f.name in self._producer:
                    raise ValueError(
                        f"file {f.name!r} produced by both "
                        f"{self._producer[f.name]!r} and {task.name!r}"
                    )
                self._producer[f.name] = task.name
            for f in task.inputs:
                self._consumers.setdefault(f.name, []).append(task.name)

        # Dependency graph.
        self.graph = nx.DiGraph()
        self.graph.add_nodes_from(self.tasks)
        for task in self.tasks.values():
            for f in task.inputs:
                producer = self._producer.get(f.name)
                if producer is not None and producer != task.name:
                    self.graph.add_edge(producer, task.name)
        if not nx.is_directed_acyclic_graph(self.graph):
            cycle = nx.find_cycle(self.graph)
            raise ValueError(f"workflow contains a cycle: {cycle}")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks.values())

    def task(self, name: str) -> Task:
        try:
            return self.tasks[name]
        except KeyError:
            raise KeyError(f"no task named {name!r}") from None

    def producer_of(self, file_name: str) -> Optional[Task]:
        """The task producing ``file_name``, or None for external inputs."""
        producer = self._producer.get(file_name)
        return self.tasks[producer] if producer else None

    def consumers_of(self, file_name: str) -> list[Task]:
        return [self.tasks[n] for n in self._consumers.get(file_name, [])]

    def parents(self, task_name: str) -> list[Task]:
        return [self.tasks[n] for n in self.graph.predecessors(task_name)]

    def children(self, task_name: str) -> list[Task]:
        return [self.tasks[n] for n in self.graph.successors(task_name)]

    def topological_order(self) -> list[Task]:
        """Tasks in a valid execution order (deterministic)."""
        return [
            self.tasks[n]
            for n in nx.lexicographical_topological_sort(self.graph)
        ]

    def entry_tasks(self) -> list[Task]:
        return [t for t in self.tasks.values() if self.graph.in_degree(t.name) == 0]

    def exit_tasks(self) -> list[Task]:
        return [t for t in self.tasks.values() if self.graph.out_degree(t.name) == 0]

    def levels(self) -> list[list[Task]]:
        """Tasks grouped by DAG depth (entry tasks = level 0)."""
        depth: dict[str, int] = {}
        for name in nx.topological_sort(self.graph):
            preds = list(self.graph.predecessors(name))
            depth[name] = 1 + max((depth[p] for p in preds), default=-1)
        out: list[list[Task]] = [[] for _ in range(max(depth.values(), default=-1) + 1)]
        for name, d in depth.items():
            out[d].append(self.tasks[name])
        return out

    # ------------------------------------------------------------------
    # File classification
    # ------------------------------------------------------------------
    def _computed_by_workflow(self, file_name: str) -> bool:
        """True if a *compute* task produces the file.

        Stage-in tasks move pre-existing data rather than computing it,
        so their outputs still count as external workflow inputs.
        """
        producer = self._producer.get(file_name)
        if producer is None:
            return False
        return self.tasks[producer].category != TaskCategory.STAGE_IN

    def external_input_files(self) -> list[File]:
        """Files consumed but not computed by the workflow (its inputs).

        Includes files "produced" by stage-in tasks: those exist in
        long-term storage before the execution starts.
        """
        return sorted(
            (
                f
                for name, f in self.files.items()
                if not self._computed_by_workflow(name) and self._consumers.get(name)
            ),
            key=lambda f: f.name,
        )

    def intermediate_files(self) -> list[File]:
        """Files both computed and consumed inside the workflow."""
        return sorted(
            (
                f
                for name, f in self.files.items()
                if self._computed_by_workflow(name) and self._consumers.get(name)
            ),
            key=lambda f: f.name,
        )

    def output_files(self) -> list[File]:
        """Files computed but never consumed (workflow outputs)."""
        return sorted(
            (
                f
                for name, f in self.files.items()
                if self._computed_by_workflow(name) and not self._consumers.get(name)
            ),
            key=lambda f: f.name,
        )

    @property
    def data_footprint(self) -> float:
        """Total bytes across all distinct files."""
        return sum(f.size for f in self.files.values())

    @property
    def total_flops(self) -> float:
        return sum(t.flops for t in self.tasks.values())

    def critical_path_flops(self) -> float:
        """Largest cumulative flops along any dependency chain."""
        best: dict[str, float] = {}
        for name in nx.topological_sort(self.graph):
            preds = list(self.graph.predecessors(name))
            best[name] = self.tasks[name].flops + max(
                (best[p] for p in preds), default=0.0
            )
        return max(best.values(), default=0.0)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Workflow {self.name!r}: {len(self.tasks)} tasks, "
            f"{len(self.files)} files, {self.data_footprint:.3e} bytes>"
        )
