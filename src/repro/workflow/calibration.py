"""Workload calibration constants and their provenance.

Everything here is either quoted from the paper (marked *paper*) or an
assumption required because the paper does not publish raw numbers
(marked *assumed*, with the observation that constrains it).
"""

from __future__ import annotations

from repro.platform.presets import TABLE_I
from repro.platform.units import MiB

# ----------------------------------------------------------------------
# SWarp (Section III-B, Figure 2)
# ----------------------------------------------------------------------
#: *paper*: 16 input images of 32 MiB per pipeline.
SWARP_IMAGES_PER_PIPELINE = 16
SWARP_IMAGE_SIZE = 32 * MiB
#: *paper*: 16 input weight maps of 16 MiB per pipeline.
SWARP_WEIGHT_SIZE = 16 * MiB

#: *assumed*: Resample emits one resampled image + weight per input pair,
#: preserving sizes (SWarp resamples to a common projection without
#: changing pixel count materially).
SWARP_RESAMPLED_IMAGE_SIZE = 32 * MiB
SWARP_RESAMPLED_WEIGHT_SIZE = 16 * MiB

#: *assumed*: Combine coadds the 16 resampled images into one mosaic
#: (plus its weight map); sized at 2× a single tile.
SWARP_COADD_IMAGE_SIZE = 64 * MiB
SWARP_COADD_WEIGHT_SIZE = 32 * MiB

#: *paper* (Section IV-A, from Daley et al. [24]): observed I/O-time
#: fractions for the two SWarp tasks, measured on Cori's PFS.
RESAMPLE_LAMBDA_IO = 0.203
COMBINE_LAMBDA_IO = 0.260

#: *assumed*: observed 32-core execution times on Cori with all files in
#: the private-mode BB.  The paper plots these (Figure 5) without giving
#: a table; the values below sit in the range the narrative implies
#: (tens of seconds per task, Resample slower than Combine).  They fix
#: the task flops via Eq. (4): T_c(1) = p (1 − λ_io) T(p).
RESAMPLE_OBSERVED_T32 = 12.0   # seconds on 32 Cori cores
COMBINE_OBSERVED_T32 = 8.0     # seconds on 32 Cori cores
_OBSERVED_CORES = 32

#: *paper observation* (Figure 6): Combine "does not benefit from
#: increased parallelism" — reads all inputs at once and combines them
#: into a single file under locks.  We encode that as a high Amdahl
#: alpha for Combine when the general model (Eq. 3) is exercised; the
#: paper's headline model forces alpha = 0 everywhere.
RESAMPLE_ALPHA = 0.0
COMBINE_ALPHA = 0.85

#: *assumed*: the stage-in task's own compute is negligible; it is pure
#: data movement (the paper notes stage-in is always sequential).
STAGE_IN_FLOPS = 0.0


def _tc1_from_observation(t_p: float, lam: float, cores: int) -> float:
    """Paper Eq. (4): sequential compute time from an observed run."""
    return cores * (1.0 - lam) * t_p


def resample_flops() -> float:
    """Sequential work of one Resample task, in flop.

    Derived by applying Eq. (4) to the assumed Cori observation and
    converting with Cori's calibrated core speed (Table I), so the same
    task takes proportionally less time on Summit's faster cores.
    """
    tc1 = _tc1_from_observation(
        RESAMPLE_OBSERVED_T32, RESAMPLE_LAMBDA_IO, _OBSERVED_CORES
    )
    return tc1 * TABLE_I["cori"]["core_speed"]


def combine_flops() -> float:
    """Sequential work of one Combine task, in flop (see resample_flops)."""
    tc1 = _tc1_from_observation(
        COMBINE_OBSERVED_T32, COMBINE_LAMBDA_IO, _OBSERVED_CORES
    )
    return tc1 * TABLE_I["cori"]["core_speed"]


# ----------------------------------------------------------------------
# 1000Genomes (Section IV-C, Figure 12)
# ----------------------------------------------------------------------
#: *paper*: 903 tasks over 22 chromosomes, ~67 GB footprint, ~52 GB input.
GENOMES_CHROMOSOMES = 22
GENOMES_TASK_COUNT = 903
#: *paper*: "total input data is about 52 GB, i.e. 77% of the workflow
#: data footprint" (Figure 13 caption).
GENOMES_INPUT_BYTES = 52e9
GENOMES_FOOTPRINT_BYTES = 67e9

#: Structure constants chosen so 22 chromosomes yield exactly 903 tasks:
#: 22 × (25 individuals + 1 merge + 1 sifting + 7 overlap + 7 frequency)
#: + 1 populations = 903.  The per-population fan-out of 7 matches the
#: real 1000Genomes Pegasus workflow (5 super-populations + ALL + a
#: subsampled panel in the WorkflowHub traces).
GENOMES_INDIVIDUALS_PER_CHROMOSOME = 25
GENOMES_POPULATIONS = 7

#: *assumed* sequential compute times (seconds on a Cori core), in the
#: range reported by the WorkflowHub 1000Genomes traces; only relative
#: magnitudes matter for the case study's shape.  The workflow must be
#: genuinely I/O-intensive (the paper calls it "a large I/O-intensive
#: workflow"), so compute per task is small relative to the time its
#: input takes to cross the calibrated 100 MB/s PFS.
GENOMES_TC1_SECONDS = {
    "individuals": 60.0,
    "individuals_merge": 30.0,
    "sifting": 20.0,
    "populations": 10.0,
    "mutation_overlap": 45.0,
    "frequency": 50.0,
}

#: *assumed* per-task I/O fractions for the genomics codes (Python
#: parsers dominated by I/O more than SWarp's C code).
GENOMES_LAMBDA_IO = {
    "individuals": 0.40,
    "individuals_merge": 0.50,
    "sifting": 0.30,
    "populations": 0.30,
    "mutation_overlap": 0.25,
    "frequency": 0.25,
}


def genomes_flops(group: str) -> float:
    """Sequential work for a 1000Genomes task category, in flop."""
    return GENOMES_TC1_SECONDS[group] * TABLE_I["cori"]["core_speed"]
