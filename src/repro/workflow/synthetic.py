"""Synthetic workflow generators: chains, fork-joins, random DAGs.

The paper studies two concrete applications; downstream users exploring
placement or scheduling heuristics need controllable structures too.
These generators produce the classic shapes with tunable compute/data
ratios, all seeded and deterministic.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.platform.presets import TABLE_I
from repro.workflow.model import File, Task, Workflow

#: Default seconds-to-flops conversion (one calibrated Cori core).
_SPEED = TABLE_I["cori"]["core_speed"]


def make_chain(
    length: int,
    task_seconds: float = 10.0,
    file_size: float = 100e6,
    cores: int = 1,
) -> Workflow:
    """A linear pipeline: t0 → t1 → ... → t{n-1}.

    The fully-sequential extreme: makespan is the sum of stages, and
    every intermediate file is a producer-consumer handoff (the best
    case for burst-buffer locality placement).
    """
    if length <= 0:
        raise ValueError("length must be positive")
    tasks = []
    previous: Optional[File] = File("chain/input", file_size)
    for i in range(length):
        output = File(f"chain/stage_{i}", file_size)
        tasks.append(
            Task(
                f"stage_{i}",
                flops=task_seconds * _SPEED,
                inputs=(previous,),
                outputs=(output,),
                cores=cores,
                group="stage",
            )
        )
        previous = output
    return Workflow(f"chain[{length}]", tasks)


def make_fork_join(
    width: int,
    task_seconds: float = 10.0,
    file_size: float = 100e6,
    cores: int = 1,
) -> Workflow:
    """Fork-join: source → {w parallel workers} → sink.

    The bag-of-tasks extreme with synchronization at both ends — the
    structure of one SWarp "level" and of most map-reduce rounds.
    """
    if width <= 0:
        raise ValueError("width must be positive")
    source_out = [File(f"fj/part_{i}", file_size) for i in range(width)]
    worker_out = [File(f"fj/result_{i}", file_size) for i in range(width)]
    tasks = [
        Task(
            "source",
            flops=task_seconds * _SPEED,
            inputs=(File("fj/input", file_size),),
            outputs=tuple(source_out),
            cores=cores,
            group="source",
        )
    ]
    for i in range(width):
        tasks.append(
            Task(
                f"worker_{i}",
                flops=task_seconds * _SPEED,
                inputs=(source_out[i],),
                outputs=(worker_out[i],),
                cores=cores,
                group="worker",
            )
        )
    tasks.append(
        Task(
            "sink",
            flops=task_seconds * _SPEED,
            inputs=tuple(worker_out),
            outputs=(File("fj/output", file_size),),
            cores=cores,
            group="sink",
        )
    )
    return Workflow(f"fork-join[{width}]", tasks)


def make_random_dag(
    n_tasks: int,
    seed: int,
    edge_probability: float = 0.25,
    max_task_seconds: float = 30.0,
    max_file_size: float = 200e6,
    cores: int = 1,
) -> Workflow:
    """A random layered-free DAG, deterministic in ``seed``.

    Tasks are ordered 0..n-1; an edge i→j (i < j) exists with
    ``edge_probability``, realized as a dedicated file.  Every non-first
    task is guaranteed at least one parent so the graph is connected
    enough to be interesting; task durations and file sizes are drawn
    uniformly.
    """
    if n_tasks <= 0:
        raise ValueError("n_tasks must be positive")
    if not (0.0 <= edge_probability <= 1.0):
        raise ValueError("edge_probability must be in [0, 1]")
    rng = np.random.default_rng(seed)

    inputs: dict[int, list[File]] = {i: [] for i in range(n_tasks)}
    outputs: dict[int, list[File]] = {i: [] for i in range(n_tasks)}

    for j in range(1, n_tasks):
        parents = [
            i for i in range(j) if rng.random() < edge_probability
        ]
        if not parents:
            parents = [int(rng.integers(0, j))]
        for i in parents:
            f = File(
                f"rand/e_{i}_{j}",
                float(rng.uniform(1e6, max_file_size)),
            )
            outputs[i].append(f)
            inputs[j].append(f)

    tasks = []
    for i in range(n_tasks):
        ext = (
            (File(f"rand/in_{i}", float(rng.uniform(1e6, max_file_size))),)
            if not inputs[i]
            else ()
        )
        final = (
            (File(f"rand/out_{i}", float(rng.uniform(1e6, max_file_size))),)
            if not outputs[i]
            else ()
        )
        tasks.append(
            Task(
                f"task_{i}",
                flops=float(rng.uniform(0.1, max_task_seconds)) * _SPEED,
                inputs=tuple(inputs[i]) + ext,
                outputs=tuple(outputs[i]) + final,
                cores=cores,
                group="random",
            )
        )
    return Workflow(f"random[{n_tasks},seed={seed}]", tasks)
