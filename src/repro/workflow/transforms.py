"""Workflow transformations: task clustering.

Task clustering merges linear producer→consumer chains into single
tasks, eliminating the materialization of their intermediate files — a
standard WMS optimization (Pegasus' "horizontal/vertical clustering")
that interacts directly with burst-buffer placement: a merged chain
never touches storage for its internal handoff, trading scheduling
flexibility for I/O savings.
"""

from __future__ import annotations

from typing import Optional

from repro.workflow.model import File, Task, TaskCategory, Workflow


def _mergeable(workflow: Workflow, parent: Task, child: Task) -> bool:
    """True if ``parent → child`` is a private linear link.

    Requirements: the child is the parent's only child, the parent the
    child's only parent, every parent output is consumed by the child
    and nobody else, and both are plain compute tasks.
    """
    if parent.category != TaskCategory.COMPUTE:
        return False
    if child.category != TaskCategory.COMPUTE:
        return False
    if [t.name for t in workflow.children(parent.name)] != [child.name]:
        return False
    if [t.name for t in workflow.parents(child.name)] != [parent.name]:
        return False
    child_inputs = {f.name for f in child.inputs}
    for f in parent.outputs:
        consumers = workflow.consumers_of(f.name)
        if [t.name for t in consumers] != [child.name]:
            return False
        if f.name not in child_inputs:
            return False
    return True


def _merge(parent: Task, child: Task) -> Task:
    """Fuse two tasks; internal files vanish (in-memory handoff)."""
    internal = {f.name for f in parent.outputs}
    inputs = parent.inputs + tuple(
        f for f in child.inputs if f.name not in internal
    )
    total_flops = parent.flops + child.flops
    # Flops-weighted serial fraction keeps Amdahl timing of the pair
    # roughly faithful when the general model is in use.
    alpha = (
        (parent.alpha * parent.flops + child.alpha * child.flops) / total_flops
        if total_flops > 0
        else max(parent.alpha, child.alpha)
    )
    return Task(
        name=f"{parent.name}+{child.name}",
        flops=total_flops,
        inputs=inputs,
        outputs=child.outputs,
        cores=max(parent.cores, child.cores),
        alpha=alpha,
        group=parent.group if parent.group == child.group else "clustered",
    )


def cluster_linear_chains(workflow: Workflow) -> Workflow:
    """Merge all private linear chains; returns a new workflow.

    Applies repeatedly until no mergeable pair remains, so a chain of
    any length collapses into one task.  Non-linear structure (fan-out,
    fan-in, shared files) is untouched, as are stage-in/out tasks.
    """
    tasks = {t.name: t for t in workflow}
    current = Workflow(workflow.name, tasks.values())

    while True:
        merged: Optional[tuple[str, str]] = None
        for task in current.topological_order():
            children = current.children(task.name)
            if len(children) == 1 and _mergeable(current, task, children[0]):
                merged = (task.name, children[0].name)
                break
        if merged is None:
            return Workflow(f"{workflow.name}[clustered]", list(current))
        parent_name, child_name = merged
        fused = _merge(current.task(parent_name), current.task(child_name))
        remaining = [
            t for t in current if t.name not in (parent_name, child_name)
        ]
        remaining.append(fused)
        current = Workflow(current.name, remaining)


def clustering_savings(workflow: Workflow) -> tuple[int, float]:
    """(tasks eliminated, intermediate bytes no longer materialized)."""
    clustered = cluster_linear_chains(workflow)
    bytes_before = sum(f.size for f in workflow.intermediate_files())
    bytes_after = sum(f.size for f in clustered.intermediate_files())
    return len(workflow) - len(clustered), bytes_before - bytes_after
