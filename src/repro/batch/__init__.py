"""Batch scheduling: the Slurm/LSF layer the paper's experiments ran under.

The paper's runs were submitted through Slurm (Cori) and LSF (Summit)
with node-exclusive directives.  This package models that layer: jobs
request nodes and walltime, wait in an FCFS queue with EASY
backfilling, run their body (typically a workflow engine on the granted
nodes), and are killed at their walltime limit — enabling studies of
co-running workflow jobs sharing one machine's burst buffer.
"""

from repro.batch.scheduler import (
    BatchScheduler,
    JobAllocation,
    JobRequest,
    JobResult,
    JobState,
)

__all__ = [
    "BatchScheduler",
    "JobAllocation",
    "JobRequest",
    "JobResult",
    "JobState",
]
