"""FCFS batch scheduler with EASY backfilling."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Callable, Generator, Optional

from repro.des import Environment, Event, Interrupt


class JobState(str, enum.Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    TIMEOUT = "timeout"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class JobRequest:
    """A batch job submission."""

    name: str
    n_nodes: int
    walltime: float  # seconds; the job is killed when it expires

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("job name must be non-empty")
        if self.n_nodes <= 0:
            raise ValueError(f"job {self.name!r}: n_nodes must be positive")
        if self.walltime <= 0:
            raise ValueError(f"job {self.name!r}: walltime must be positive")


@dataclass(frozen=True)
class JobAllocation:
    """Nodes granted to a started job."""

    job: JobRequest
    nodes: tuple[str, ...]
    start_time: float

    @property
    def deadline(self) -> float:
        return self.start_time + self.job.walltime


@dataclass(frozen=True)
class JobResult:
    """Outcome of a finished job."""

    job: JobRequest
    nodes: tuple[str, ...]
    start_time: float
    end_time: float
    state: JobState

    @property
    def wait_time(self) -> float:
        """Queue wait (submission is time 0 of the request's life)."""
        return self.start_time - self.submitted_at if hasattr(self, "submitted_at") else self.start_time

    @property
    def runtime(self) -> float:
        return self.end_time - self.start_time


#: A job body: a generator started when the job begins, receiving its
#: allocation.  It is interrupted if the walltime expires first.
JobBody = Callable[[JobAllocation], Generator]


class BatchScheduler:
    """FCFS + EASY backfilling over a fixed pool of nodes.

    FCFS: the queue head starts as soon as enough nodes are free.  EASY
    backfilling: while the head waits, a later job may jump ahead iff it
    can finish (by its walltime) before the head's *reservation* — the
    earliest time enough nodes will be free for the head assuming all
    running jobs use their full walltime — or it only uses nodes the
    head's reservation leaves spare.
    """

    def __init__(self, env: Environment, nodes: list[str]) -> None:
        if not nodes:
            raise ValueError("need at least one node")
        self.env = env
        self.all_nodes = list(nodes)
        self._free: list[str] = list(nodes)
        self._queue: list[tuple[int, JobRequest, JobBody, Event]] = []
        self._running: dict[str, JobAllocation] = {}
        self._order = itertools.count()
        self.results: list[JobResult] = []

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def submit(self, job: JobRequest, body: JobBody) -> Event:
        """Queue a job; the returned event fires with its JobResult."""
        if job.n_nodes > len(self.all_nodes):
            raise ValueError(
                f"job {job.name!r} requests {job.n_nodes} nodes but the "
                f"machine has {len(self.all_nodes)}"
            )
        done = self.env.event()
        self._queue.append((next(self._order), job, body, done))
        self._schedule()
        return done

    @property
    def free_nodes(self) -> int:
        return len(self._free)

    @property
    def queued_jobs(self) -> list[str]:
        return [job.name for _, job, _, _ in sorted(self._queue)]

    @property
    def running_jobs(self) -> list[str]:
        return sorted(self._running)

    # ------------------------------------------------------------------
    # Scheduling core
    # ------------------------------------------------------------------
    def _schedule(self) -> None:
        self._queue.sort()
        # 1. Start queue-head jobs while they fit (plain FCFS).
        while self._queue and self._queue[0][1].n_nodes <= len(self._free):
            self._start(*self._queue.pop(0))
        if not self._queue:
            return

        # 2. EASY backfilling around the blocked head.
        head = self._queue[0][1]
        shadow_time, extra_nodes = self._head_reservation(head)
        index = 1
        while index < len(self._queue):
            _, job, body, done = self._queue[index]
            fits_now = job.n_nodes <= len(self._free)
            finishes_before_shadow = (
                self.env.now + job.walltime <= shadow_time
            )
            within_extra = job.n_nodes <= extra_nodes
            if fits_now and (finishes_before_shadow or within_extra):
                entry = self._queue.pop(index)
                self._start(*entry)
                if within_extra and not finishes_before_shadow:
                    extra_nodes -= job.n_nodes
                # Free-node count changed; the head still blocks (by
                # construction job.n_nodes < head's need or head would
                # have started), so continue scanning from `index`.
            else:
                index += 1

    def _head_reservation(self, head: JobRequest) -> tuple[float, int]:
        """(shadow time, spare nodes at that time) for the blocked head.

        Assumes running jobs release their nodes at their walltime
        deadlines (the classic EASY estimate).
        """
        free = len(self._free)
        releases = sorted(
            (alloc.deadline, len(alloc.nodes))
            for alloc in self._running.values()
        )
        for deadline, released in releases:
            free += released
            if free >= head.n_nodes:
                return deadline, free - head.n_nodes
        # Unreachable while invariants hold (head fits the machine).
        return float("inf"), 0  # pragma: no cover

    def _start(self, order: int, job: JobRequest, body: JobBody, done: Event) -> None:
        nodes = tuple(self._free[: job.n_nodes])
        del self._free[: job.n_nodes]
        allocation = JobAllocation(
            job=job, nodes=nodes, start_time=self.env.now
        )
        self._running[job.name] = allocation
        self.env.process(self._run(allocation, body, done))

    def _run(self, allocation: JobAllocation, body: JobBody, done: Event):
        job = allocation.job
        body_process = self.env.process(body(allocation))
        state = JobState.COMPLETED

        def killer():
            try:
                yield self.env.timeout(job.walltime)
            except Interrupt:
                return  # body finished first; stand down
            if body_process.is_alive:
                body_process.interrupt("walltime exceeded")

        watchdog = self.env.process(killer())
        try:
            yield body_process
        except Interrupt:
            state = JobState.TIMEOUT
        except Exception:
            # The body's own failure propagates after cleanup.
            self._finish(allocation, done, JobState.COMPLETED, failed=True)
            raise
        if watchdog.is_alive:
            watchdog.interrupt("job done")
        if state == JobState.COMPLETED and self.env.now > allocation.deadline:
            state = JobState.TIMEOUT
        self._finish(allocation, done, state)

    def _finish(
        self,
        allocation: JobAllocation,
        done: Event,
        state: JobState,
        failed: bool = False,
    ) -> None:
        job = allocation.job
        del self._running[job.name]
        self._free.extend(allocation.nodes)
        result = JobResult(
            job=job,
            nodes=allocation.nodes,
            start_time=allocation.start_time,
            end_time=self.env.now,
            state=state,
        )
        self.results.append(result)
        if not failed:
            done.succeed(result)
        self._schedule()
