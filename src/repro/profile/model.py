"""Profile data model: the critical path and its makespan attribution.

A :class:`Profile` is the post-hoc answer to *why the makespan is what
it is*: an ordered chain of :class:`Segment`\\ s that partitions
``[0, makespan]`` exactly (the realized critical path), the per-resource
attribution derived from it, and a per-task :class:`TaskBreakdown` of
where every task's wall time went.

The **attribution invariant** is a library-level contract, not a test:
constructing a :class:`Profile` whose attribution does not sum to the
makespan within relative 1e-9 raises :class:`ProfileError`.  Consumers
(``repro.api.Result.profile()``, the ``repro-profile`` CLI, the sweep
exporters) can therefore rely on ``sum(attribution.values()) ==
makespan`` unconditionally.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Optional

#: Schema tag written into every ``profile.json``.
PROFILE_SCHEMA = "repro.profile/1"

#: Relative tolerance of the attribution == makespan invariant.
ATTRIBUTION_RTOL = 1e-9


class ProfileError(Exception):
    """A profile violated its structural invariants."""


@dataclass(frozen=True)
class Segment:
    """One interval of the critical path, charged to one resource.

    ``resource`` is a stable attribution key: ``compute``,
    ``read:<service>``, ``write:<service>``, ``stage-in``, ``stage-out``,
    ``wait:<cause>``, or ``idle`` (trace tail not covered by any task).
    """

    start: float
    end: float
    resource: str
    task: str = ""
    detail: str = ""

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "start": self.start,
            "end": self.end,
            "resource": self.resource,
            "task": self.task,
            "detail": self.detail,
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "Segment":
        return cls(
            start=doc["start"],
            end=doc["end"],
            resource=doc["resource"],
            task=doc.get("task", ""),
            detail=doc.get("detail", ""),
        )


@dataclass
class TaskBreakdown:
    """Where one task's wall time went (independent of the critical path).

    ``phases`` holds active-phase seconds keyed by resource
    (``compute``, ``read:<service>``, ...); ``waits`` holds blocked
    seconds keyed by wait cause (``dependency``, ``cores``, ...).
    """

    task: str
    group: str = ""
    host: str = ""
    ready: float = 0.0
    start: float = 0.0
    end: float = 0.0
    phases: dict[str, float] = field(default_factory=dict)
    waits: dict[str, float] = field(default_factory=dict)

    @property
    def span(self) -> float:
        return self.end - self.start

    def to_dict(self) -> dict[str, Any]:
        return {
            "task": self.task,
            "group": self.group,
            "host": self.host,
            "ready": self.ready,
            "start": self.start,
            "end": self.end,
            "phases": dict(sorted(self.phases.items())),
            "waits": dict(sorted(self.waits.items())),
        }

    @classmethod
    def from_dict(cls, doc: dict[str, Any]) -> "TaskBreakdown":
        return cls(
            task=doc["task"],
            group=doc.get("group", ""),
            host=doc.get("host", ""),
            ready=doc.get("ready", 0.0),
            start=doc.get("start", 0.0),
            end=doc.get("end", 0.0),
            phases=dict(doc.get("phases", {})),
            waits=dict(doc.get("waits", {})),
        )


def resource_class(resource: str) -> str:
    """Collapse an attribution key to a coarse resource *class*.

    Used by the diff/explain layer to phrase flips the way the paper
    does ("PFS-staging-bound" vs "compute-bound"): every PFS-touching
    I/O or staging key maps to ``pfs``, BB-touching keys to ``bb``,
    ``compute`` stays ``compute``, waits map to ``wait``.
    """
    if resource == "compute":
        return "compute"
    if resource.startswith("wait:"):
        return "wait"
    if resource in ("stage-in", "stage-out") or "pfs" in resource:
        return "pfs"
    if resource.startswith(("read:", "write:")):
        return "bb"
    return resource


class Profile:
    """A validated critical-path profile of one execution.

    Construct via :func:`repro.profile.build_profile` (from a trace) or
    :meth:`from_doc` (from a ``profile.json`` document); both enforce
    the attribution invariant.
    """

    def __init__(
        self,
        workflow: str,
        makespan: float,
        critical_path: list[Segment],
        tasks: Optional[list[TaskBreakdown]] = None,
        waits: Optional[list[dict[str, Any]]] = None,
    ) -> None:
        self.workflow = workflow
        self.makespan = makespan
        self.critical_path = sorted(critical_path, key=lambda s: s.start)
        self.tasks = tasks or []
        self.waits = waits or []
        self.attribution: dict[str, float] = {}
        for segment in self.critical_path:
            self.attribution[segment.resource] = (
                self.attribution.get(segment.resource, 0.0) + segment.duration
            )
        self._validate()

    # ------------------------------------------------------------------
    # Invariants
    # ------------------------------------------------------------------
    def _validate(self) -> None:
        tol = ATTRIBUTION_RTOL * max(1.0, abs(self.makespan))
        previous_end = 0.0
        for segment in self.critical_path:
            if segment.duration < -tol:
                raise ProfileError(
                    f"segment {segment.resource!r} has negative duration "
                    f"({segment.start} -> {segment.end})"
                )
            if abs(segment.start - previous_end) > tol:
                raise ProfileError(
                    f"critical path is not contiguous: segment "
                    f"{segment.resource!r} starts at {segment.start}, "
                    f"previous ended at {previous_end}"
                )
            previous_end = segment.end
        if abs(previous_end - self.makespan) > tol:
            raise ProfileError(
                f"critical path ends at {previous_end}, not at the "
                f"makespan {self.makespan}"
            )
        total = sum(self.attribution.values())
        if abs(total - self.makespan) > tol:
            raise ProfileError(
                f"attribution sums to {total}, makespan is {self.makespan} "
                f"(delta {total - self.makespan:.3e} exceeds rel {ATTRIBUTION_RTOL})"
            )

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def shares(self) -> dict[str, float]:
        """Attribution as fractions of the makespan."""
        if self.makespan <= 0:
            return {k: 0.0 for k in self.attribution}
        return {k: v / self.makespan for k, v in self.attribution.items()}

    @property
    def dominant_resource(self) -> str:
        """The attribution key with the largest critical-path share."""
        if not self.attribution:
            return ""
        return max(self.attribution.items(), key=lambda kv: (kv[1], kv[0]))[0]

    @property
    def class_attribution(self) -> dict[str, float]:
        """Attribution collapsed by :func:`resource_class`."""
        out: dict[str, float] = {}
        for resource, seconds in self.attribution.items():
            cls = resource_class(resource)
            out[cls] = out.get(cls, 0.0) + seconds
        return out

    @property
    def dominant_class(self) -> str:
        """The coarse resource class dominating the critical path."""
        classes = self.class_attribution
        if not classes:
            return ""
        return max(classes.items(), key=lambda kv: (kv[1], kv[0]))[0]

    def breakdown_for(self, task: str) -> TaskBreakdown:
        for breakdown in self.tasks:
            if breakdown.task == task:
                return breakdown
        raise KeyError(f"no breakdown for task {task!r}")

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_doc(self) -> dict[str, Any]:
        return {
            "schema": PROFILE_SCHEMA,
            "workflow": self.workflow,
            "makespan": self.makespan,
            "attribution": dict(sorted(self.attribution.items())),
            "critical_path": [s.to_dict() for s in self.critical_path],
            "tasks": [t.to_dict() for t in sorted(self.tasks, key=lambda t: t.task)],
            "waits": list(self.waits),
        }

    @classmethod
    def from_doc(cls, doc: dict[str, Any]) -> "Profile":
        if doc.get("schema") != PROFILE_SCHEMA:
            raise ProfileError(
                f"unsupported profile schema {doc.get('schema')!r} "
                f"(expected {PROFILE_SCHEMA!r})"
            )
        profile = cls(
            workflow=doc.get("workflow", ""),
            makespan=doc["makespan"],
            critical_path=[Segment.from_dict(s) for s in doc.get("critical_path", ())],
            tasks=[TaskBreakdown.from_dict(t) for t in doc.get("tasks", ())],
            waits=list(doc.get("waits", ())),
        )
        recorded = doc.get("attribution")
        if recorded is not None:
            tol = ATTRIBUTION_RTOL * max(1.0, abs(profile.makespan))
            for resource, seconds in recorded.items():
                if abs(profile.attribution.get(resource, 0.0) - seconds) > tol:
                    raise ProfileError(
                        f"recorded attribution for {resource!r} ({seconds}) "
                        f"disagrees with the critical path "
                        f"({profile.attribution.get(resource, 0.0)})"
                    )
        return profile

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<Profile {self.workflow!r}: makespan {self.makespan:.3f}s, "
            f"dominant {self.dominant_resource!r}>"
        )


def write_profile(profile: Profile, path: "str | Path") -> Path:
    """Write ``profile`` as a ``profile.json`` document."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(profile.to_doc(), indent=2) + "\n")
    return path


def read_profile(path: "str | Path") -> Profile:
    """Load (and re-validate) a ``profile.json`` document."""
    return Profile.from_doc(json.loads(Path(path).read_text()))
