"""Folded-stacks export (Brendan Gregg's flamegraph.pl input format).

Each critical-path segment becomes one stack sample line::

    <workflow>;<resource>;<task> <microseconds>

Collapsing is done here (identical stacks merged, values summed), so
the output feeds ``flamegraph.pl`` — or any folded-stacks viewer such
as speedscope — directly.  The root frame is the workflow, the second
frame the attributed resource, the leaf the task: the flame graph's
second level *is* the makespan attribution.
"""

from __future__ import annotations

from pathlib import Path

from repro.profile.model import Profile


def _frame(text: str) -> str:
    """A string as a safe folded-stacks frame (no ';' or whitespace)."""
    cleaned = text.replace(";", ",").replace(" ", "_")
    return cleaned or "(unnamed)"


def folded_stacks(profile: Profile) -> str:
    """The profile's critical path as folded-stacks text."""
    collapsed: dict[str, float] = {}
    root = _frame(profile.workflow or "workflow")
    for segment in profile.critical_path:
        stack = f"{root};{_frame(segment.resource)}"
        if segment.task:
            stack += f";{_frame(segment.task)}"
        collapsed[stack] = collapsed.get(stack, 0.0) + segment.duration
    lines = [
        # flamegraph.pl wants integer sample counts: use microseconds.
        f"{stack} {max(1, round(value * 1e6))}"
        for stack, value in sorted(collapsed.items())
        if value > 0
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_flamegraph(profile: Profile, path: "str | Path") -> Path:
    """Write the folded-stacks file (conventionally ``profile.folded``)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(folded_stacks(profile))
    return path
