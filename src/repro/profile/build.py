"""Critical-path extraction and makespan attribution.

The profiler walks the *realized* execution backwards from the makespan
to t = 0, at every step asking "what was the binding activity in this
interval?":

* inside a task's active span, the binding activity is the phase
  covering the interval — write, compute, read, or staging — with I/O
  phases attributed to the storage service of the *binding* (last to
  finish) file operation;
* when a task queued between its ready instant and its start, the
  binding activity is whatever was *occupying the contended resource*:
  the walk jumps to the same-host task whose completion released the
  cores/memory at the start instant, so queueing time is attributed to
  the occupant's own compute/I/O (a resource-aware critical path).
  When no releasing task can be identified the gap is charged as
  ``wait:<cause>`` segments — subdivided by the observer's recorded
  :class:`~repro.obs.waits.WaitInterval`\\ s when available,
  ``wait:unattributed`` otherwise;
* at the ready instant the walk jumps to the parent task that finished
  last (the dependency that released the task), and recurses.

Per-task queueing time is never lost: it always appears in the task's
:class:`~repro.profile.model.TaskBreakdown` wait decomposition, whether
or not the critical path routes around it.

Because every step appends a segment that ends exactly where the
previous one started, the resulting chain partitions ``[0, makespan]``
and the per-resource attribution sums to the makespan *by construction*
(re-verified by :class:`~repro.profile.model.Profile` within 1e-9).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.profile.model import Profile, ProfileError, Segment, TaskBreakdown
from repro.traces.events import ExecutionTrace, TaskRecord

#: Resource key for ready->start time not covered by any recorded wait.
UNATTRIBUTED = "wait:unattributed"


def _wait_fields(wait: Any) -> tuple[str, str, float, float, str]:
    """(task, cause, start, end, detail) from a WaitInterval or dict."""
    if isinstance(wait, dict):
        return (
            wait["task"],
            str(wait["cause"]),
            wait["start"],
            wait["end"],
            wait.get("detail", ""),
        )
    return (wait.task, str(wait.cause.value), wait.start, wait.end, wait.detail)


def _phase_intervals(
    record: TaskRecord, trace: ExecutionTrace
) -> list[tuple[float, float, str, str]]:
    """The task's active span as (start, end, resource, detail) pieces.

    Pieces are contiguous and ascending; zero-length phases are dropped.
    """
    staging = _staging_kind(record, trace)
    if staging is not None:
        if record.end > record.start:
            return [(record.start, record.end, staging, "")]
        return []

    pieces: list[tuple[float, float, str, str]] = []
    if record.read_end > record.read_start:
        resource, detail = _binding_io(record, trace, "read")
        pieces.append((record.read_start, record.read_end, resource, detail))
    if record.compute_end > record.read_end:
        pieces.append((record.read_end, record.compute_end, "compute", record.host))
    if record.write_end > record.compute_end:
        resource, detail = _binding_io(record, trace, "write")
        pieces.append((record.compute_end, record.write_end, resource, detail))
    # The record's start/end may extend past the phase stamps (e.g. a
    # task with no I/O and no compute); cover the remainder as compute.
    if pieces:
        first_start, last_end = pieces[0][0], pieces[-1][1]
    else:
        first_start = last_end = record.start
    if first_start > record.start:
        pieces.insert(0, (record.start, first_start, "compute", record.host))
    if record.end > last_end:
        pieces.append((last_end, record.end, "compute", record.host))
    return pieces


def _staging_kind(record: TaskRecord, trace: ExecutionTrace) -> Optional[str]:
    """``stage-in``/``stage-out`` for staging tasks, None otherwise."""
    if record.group == "stage_in":
        return "stage-in"
    if record.group == "stage_out":
        return "stage-out"
    for event in trace.events:
        if event.task != record.name:
            continue
        if event.kind.startswith("stage_copy"):
            return "stage-in"
        if event.kind.startswith("stage_out"):
            return "stage-out"
    return None


def _binding_io(
    record: TaskRecord, trace: ExecutionTrace, kind: str
) -> tuple[str, str]:
    """Attribute an I/O phase to the service of its last-finishing op."""
    binding = None
    for op in trace.io_operations:
        if op.task != record.name or op.kind != kind:
            continue
        if binding is None or (op.end, op.file) > (binding.end, binding.file):
            binding = op
    if binding is None:
        return kind, ""
    return f"{kind}:{binding.service}", binding.file


def _subdivide_wait_gap(
    task: str,
    ready: float,
    start: float,
    waits: list[tuple[str, str, float, float, str]],
) -> list[Segment]:
    """Partition [ready, start] into wait segments, walked backwards."""
    relevant = sorted(
        (
            (cause, max(w_start, ready), min(w_end, start), detail)
            for (w_task, cause, w_start, w_end, detail) in waits
            if w_task == task and cause != "dependency"
            and min(w_end, start) > max(w_start, ready)
        ),
        key=lambda w: (w[2], w[1]),
        reverse=True,
    )
    segments: list[Segment] = []
    cursor = start
    for cause, w_start, w_end, detail in relevant:
        w_end = min(w_end, cursor)
        w_start = min(w_start, w_end)
        if w_end < cursor:
            segments.append(Segment(w_end, cursor, UNATTRIBUTED, task=task))
        if w_end > w_start:
            segments.append(
                Segment(w_start, w_end, f"wait:{cause}", task=task, detail=detail)
            )
        cursor = w_start
        if cursor <= ready:
            break
    if cursor > ready:
        segments.append(Segment(ready, cursor, UNATTRIBUTED, task=task))
    return segments


def _ready_times(trace: ExecutionTrace) -> dict[str, float]:
    ready: dict[str, float] = {}
    for event in trace.events:
        if event.kind == "task_ready" and event.task not in ready:
            ready[event.task] = event.time
    return ready


def _task_breakdowns(
    trace: ExecutionTrace,
    ready_times: dict[str, float],
    waits: list[tuple[str, str, float, float, str]],
) -> list[TaskBreakdown]:
    by_task: dict[str, dict[str, float]] = {}
    for w_task, cause, w_start, w_end, _ in waits:
        causes = by_task.setdefault(w_task, {})
        causes[cause] = causes.get(cause, 0.0) + (w_end - w_start)
    breakdowns = []
    for record in sorted(trace.records.values(), key=lambda r: (r.start, r.name)):
        phases: dict[str, float] = {}
        for p_start, p_end, resource, _ in _phase_intervals(record, trace):
            phases[resource] = phases.get(resource, 0.0) + (p_end - p_start)
        breakdowns.append(
            TaskBreakdown(
                task=record.name,
                group=record.group,
                host=record.host,
                ready=ready_times.get(record.name, record.start),
                start=record.start,
                end=record.end,
                phases=phases,
                waits=by_task.get(record.name, {}),
            )
        )
    return breakdowns


def build_profile(
    trace: ExecutionTrace,
    waits: Optional[Iterable[Any]] = None,
    observer: Optional[Any] = None,
) -> Profile:
    """Build a critical-path profile from an execution trace.

    ``waits`` refines ready->start gaps into per-cause resource waits;
    pass an observer's ``.waits`` list (or serialized dicts from a
    ``profile.json``).  ``observer`` is a convenience that reads
    ``observer.waits`` for you.  Both are optional: a plain trace file
    profiles fine, with resource waits reported as ``wait:unattributed``.
    """
    if waits is None and observer is not None:
        waits = observer.waits
    wait_rows = [_wait_fields(w) for w in (waits or [])]
    makespan = trace.makespan
    tol = 1e-9 * max(1.0, abs(makespan))
    ready_times = _ready_times(trace)

    records = list(trace.records.values())
    if not records or makespan <= 0:
        path = [Segment(0.0, makespan, "idle")] if makespan > 0 else []
        return Profile(trace.workflow_name, makespan, path)

    segments: list[Segment] = []
    current: Optional[TaskRecord] = max(records, key=lambda r: (r.end, r.name))
    cursor = makespan
    if current.end < cursor - tol:
        # Trace events past the last task completion (never produced by
        # the engine, but a hand-edited trace should still profile).
        segments.append(Segment(current.end, cursor, "idle"))
        cursor = current.end
    visited: set[str] = set()

    while cursor > tol:
        if current is None or current.name in visited:
            segments.append(Segment(0.0, cursor, "idle"))
            cursor = 0.0
            break
        visited.add(current.name)

        for p_start, p_end, resource, detail in reversed(
            _phase_intervals(current, trace)
        ):
            p_end = min(p_end, cursor)
            p_start = min(p_start, p_end)
            if p_end - p_start > 0:
                segments.append(
                    Segment(p_start, p_end, resource, task=current.name, detail=detail)
                )
                cursor = p_start

        cursor = min(cursor, current.start)
        if cursor <= tol:
            cursor = 0.0
            break
        ready = min(ready_times.get(current.name, current.start), cursor)

        if cursor - ready > tol:
            # The task queued for host resources: the binding activity
            # is the same-host task whose completion released them.
            releaser = _binding_predecessor(
                records, cursor, tol, visited, host=current.host
            )
            if releaser is not None:
                current = releaser
                continue
            # No identifiable occupant (trimmed trace, external load):
            # charge the queueing itself, per recorded cause.
            segments.extend(
                _subdivide_wait_gap(current.name, ready, cursor, wait_rows)
            )
            cursor = ready
            if cursor <= tol:
                cursor = 0.0
                break

        predecessor = _binding_predecessor(records, cursor, tol, visited)
        if predecessor is None:
            # The task was released at ``cursor`` by something that left
            # no record (e.g. a trimmed trace): the remaining prefix is
            # dependency wait on an unknown producer.
            segments.append(
                Segment(0.0, cursor, "wait:dependency", task=current.name)
            )
            cursor = 0.0
            break
        current = predecessor

    profile = Profile(
        trace.workflow_name,
        makespan,
        segments,
        tasks=_task_breakdowns(trace, ready_times, wait_rows),
        waits=[
            {
                "task": w_task,
                "cause": cause,
                "start": w_start,
                "end": w_end,
                "detail": detail,
            }
            for (w_task, cause, w_start, w_end, detail) in wait_rows
        ],
    )
    return profile


def _binding_predecessor(
    records: list[TaskRecord],
    cursor: float,
    tol: float,
    visited: set[str],
    host: Optional[str] = None,
) -> Optional[TaskRecord]:
    """The task whose completion at ``cursor`` released the walk's task.

    A task becomes ready (or gets its cores/memory) the instant another
    task completes, so the binding predecessor is a record ending
    exactly at ``cursor`` — restricted to ``host`` when resolving a
    resource release (cores and RAM are per-host).  Among ties, prefer
    one that actually ran (start < end) — a zero-duration record cannot
    explain any elapsed time — then the latest starter.
    """
    candidates = [
        r
        for r in records
        if r.name not in visited
        and abs(r.end - cursor) <= tol
        and (host is None or r.host == host)
    ]
    if not candidates:
        return None
    running = [r for r in candidates if r.start < r.end - tol]
    pool = running or candidates
    return max(pool, key=lambda r: (r.start, r.name))
