"""``python -m repro.profile`` — same interface as ``repro-profile``."""

from repro.profile.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
