"""``repro-profile``: inspect and diff critical-path profiles.

One argument prints a run's makespan attribution; two arguments diff
them and explain which resource's critical-path share moved::

    repro-profile telemetry/run_a/              # summary table
    repro-profile run_a/ run_b/                 # diff + explanation
    repro-profile trace.json --flamegraph p.folded

An argument may be a telemetry directory containing ``profile.json``
(as written by ``export_run``/``repro-simulate --profile``), a
``profile.json`` file, or a raw execution-trace JSON — traces are
profiled on the fly (resource waits then show as ``wait:unattributed``
because the trace alone does not record wait causes).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.profile.build import build_profile
from repro.profile.diff import diff_profiles
from repro.profile.flamegraph import write_flamegraph
from repro.profile.model import Profile, ProfileError, read_profile


def load_profile(path: "str | Path") -> Profile:
    """Resolve a CLI argument to a validated :class:`Profile`."""
    path = Path(path)
    if path.is_dir():
        candidate = path / "profile.json"
        if not candidate.is_file():
            raise ProfileError(f"{path}: no profile.json in directory")
        return read_profile(candidate)
    if not path.is_file():
        raise ProfileError(f"{path}: no such file or directory")
    doc = json.loads(path.read_text())
    if doc.get("schema", "").startswith("repro.profile/"):
        return Profile.from_doc(doc)
    if "events" in doc or "tasks" in doc:
        from repro.traces.events import ExecutionTrace

        return build_profile(ExecutionTrace.from_json(doc))
    raise ProfileError(f"{path}: neither a profile.json nor an execution trace")


def _print_summary(profile: Profile, top: int) -> None:
    print(f"workflow:  {profile.workflow or '(unnamed)'}")
    print(f"makespan:  {profile.makespan:.3f} s")
    print(f"dominant:  {profile.dominant_resource} ({profile.dominant_class}-bound)")
    print(f"segments:  {len(profile.critical_path)}")
    print()
    print(f"{'resource':<28} {'seconds':>12} {'share':>8}")
    ranked = sorted(
        profile.attribution.items(), key=lambda kv: (-kv[1], kv[0])
    )
    for resource, seconds in ranked[:top]:
        share = profile.shares.get(resource, 0.0)
        print(f"{resource:<28} {seconds:>12.3f} {100 * share:>7.1f}%")
    if len(ranked) > top:
        rest = sum(seconds for _, seconds in ranked[top:])
        print(f"{'(other)':<28} {rest:>12.3f}")


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-profile",
        description="Inspect or diff critical-path profiles "
        "(profile.json, telemetry directories, or raw traces).",
    )
    parser.add_argument("before", help="profile/telemetry dir/trace to inspect")
    parser.add_argument(
        "after",
        nargs="?",
        help="second run: print the diff and its explanation instead",
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    parser.add_argument(
        "--flamegraph",
        metavar="PATH",
        help="also write folded stacks for the (first) run to PATH",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=12,
        metavar="N",
        help="rows of the attribution table to print (default 12)",
    )
    args = parser.parse_args(argv)

    try:
        before = load_profile(args.before)
        after = load_profile(args.after) if args.after else None
    except (ProfileError, json.JSONDecodeError, OSError) as error:
        print(f"repro-profile: {error}", file=sys.stderr)
        return 1

    if args.flamegraph:
        write_flamegraph(before, args.flamegraph)

    if after is None:
        if args.json:
            print(json.dumps(before.to_doc(), indent=2))
        else:
            _print_summary(before, args.top)
        return 0

    diff = diff_profiles(before, after)
    if args.json:
        print(json.dumps(diff.to_doc(), indent=2))
    else:
        print(diff.explain())
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
