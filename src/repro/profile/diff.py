"""Profile diffing: which resource's critical-path share moved, and why.

The diff layer answers the paper's causal questions mechanically:
fig13's 1000Genomes runs plateau at ~80% staged because the critical
path *flips* from PFS-bound to compute-bound — once staging-in removes
the PFS reads from the critical path, adding more BB capacity cannot
help.  ``diff_profiles(before, after)`` detects exactly that flip and
:meth:`ProfileDiff.explain` phrases it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.profile.model import Profile, resource_class


@dataclass
class ProfileDiff:
    """The structured comparison of two profiles ("before" vs "after")."""

    before: Profile
    after: Profile
    #: resource -> (share_before, share_after); union of both keys.
    shares: dict[str, tuple[float, float]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        keys = set(self.before.shares) | set(self.after.shares)
        self.shares = {
            key: (
                self.before.shares.get(key, 0.0),
                self.after.shares.get(key, 0.0),
            )
            for key in sorted(keys)
        }

    @property
    def makespan_delta(self) -> float:
        return self.after.makespan - self.before.makespan

    @property
    def dominant_flip(self) -> bool:
        """Did the dominant critical-path resource change?"""
        return self.before.dominant_resource != self.after.dominant_resource

    @property
    def class_flip(self) -> bool:
        """Did the dominant *resource class* (pfs/bb/compute/wait) change?"""
        return self.before.dominant_class != self.after.dominant_class

    @property
    def biggest_mover(self) -> str:
        """The resource whose critical-path share changed the most."""
        if not self.shares:
            return ""
        return max(
            self.shares.items(),
            key=lambda kv: (abs(kv[1][1] - kv[1][0]), kv[0]),
        )[0]

    def explain(self) -> str:
        """A short human-readable causal summary of the diff."""
        b, a = self.before, self.after
        lines = []
        if b.makespan > 0:
            pct = 100.0 * self.makespan_delta / b.makespan
            lines.append(
                f"makespan {b.makespan:.2f}s -> {a.makespan:.2f}s ({pct:+.1f}%)"
            )
        else:
            lines.append(f"makespan {b.makespan:.2f}s -> {a.makespan:.2f}s")
        if self.dominant_flip:
            lines.append(
                "critical path flipped: "
                f"{b.dominant_resource} "
                f"({100 * b.shares.get(b.dominant_resource, 0.0):.1f}% of makespan) "
                f"-> {a.dominant_resource} "
                f"({100 * a.shares.get(a.dominant_resource, 0.0):.1f}%)"
            )
            if self.class_flip:
                lines.append(
                    f"the run went from {b.dominant_class}-bound to "
                    f"{a.dominant_class}-bound"
                )
        else:
            dom = b.dominant_resource
            lines.append(
                f"critical path still dominated by {dom} "
                f"({100 * b.shares.get(dom, 0.0):.1f}% -> "
                f"{100 * a.shares.get(dom, 0.0):.1f}% of makespan)"
            )
        mover = self.biggest_mover
        if mover:
            before_share, after_share = self.shares[mover]
            lines.append(
                f"biggest mover: {mover} "
                f"({100 * before_share:.1f}% -> {100 * after_share:.1f}%)"
            )
        return "\n".join(lines)

    def to_doc(self) -> dict[str, Any]:
        return {
            "makespan_before": self.before.makespan,
            "makespan_after": self.after.makespan,
            "makespan_delta": self.makespan_delta,
            "dominant_before": self.before.dominant_resource,
            "dominant_after": self.after.dominant_resource,
            "dominant_flip": self.dominant_flip,
            "class_before": self.before.dominant_class,
            "class_after": self.after.dominant_class,
            "class_flip": self.class_flip,
            "biggest_mover": self.biggest_mover,
            "shares": {
                key: {"before": before, "after": after}
                for key, (before, after) in self.shares.items()
            },
        }


def diff_profiles(before: Profile, after: Profile) -> ProfileDiff:
    """Compare two profiles; see :class:`ProfileDiff`."""
    return ProfileDiff(before, after)


__all__ = ["ProfileDiff", "diff_profiles", "resource_class"]
