"""Critical-path profiling: makespan attribution and diff/explain.

``repro.obs`` records *what* happened; this package answers *why the
makespan is what it is*.  It consumes an execution trace (plus,
optionally, an observer's wait intervals) and produces:

* a per-task **blocked-time decomposition** — compute, per-service
  read/write, stage-in/out, waiting-on-dependency / cores / memory /
  BB-capacity;
* the **critical path** of the realized execution, as a contiguous
  chain of resource-attributed segments partitioning ``[0, makespan]``
  (so the attribution provably sums to the makespan — enforced within
  relative 1e-9 by :class:`Profile` itself);
* a **diff/explain** mode reporting which resource's critical-path
  share moved between two runs (e.g. fig13's flip from PFS-bound to
  compute-bound at the staging plateau).

Quick start::

    from repro.profile import build_profile, diff_profiles

    profile = build_profile(result.trace, observer=obs)
    print(profile.attribution)              # resource -> seconds
    print(diff_profiles(p60, p100).explain())

See ``docs/PROFILE.md`` for the model, and ``repro-profile --help``
for the CLI.
"""

from repro.profile.build import UNATTRIBUTED, build_profile
from repro.profile.diff import ProfileDiff, diff_profiles
from repro.profile.flamegraph import folded_stacks, write_flamegraph
from repro.profile.model import (
    ATTRIBUTION_RTOL,
    PROFILE_SCHEMA,
    Profile,
    ProfileError,
    Segment,
    TaskBreakdown,
    read_profile,
    resource_class,
    write_profile,
)

__all__ = [
    "ATTRIBUTION_RTOL",
    "PROFILE_SCHEMA",
    "Profile",
    "ProfileDiff",
    "ProfileError",
    "Segment",
    "TaskBreakdown",
    "UNATTRIBUTED",
    "build_profile",
    "diff_profiles",
    "folded_stacks",
    "read_profile",
    "resource_class",
    "write_flamegraph",
    "write_profile",
]
