"""High-level scenario builders — the library's main entry points.

Each function assembles a platform, storage services, compute service,
workflow, and engine for one of the paper's experimental configurations
and runs it to completion:

* :func:`run_swarp` — the SWarp characterization scenarios of
  Section III (Figures 4–9) and their simulated counterparts
  (Figures 10–11);
* :func:`run_genomes` — the 1000Genomes case study of Section IV-C
  (Figures 13–14).

``emulated=False`` (default) runs the paper's simple model: Table I
bandwidths, perfect speedup, no metadata costs.  ``emulated=True`` runs
the high-fidelity emulator standing in for the real Cori/Summit runs
(see :mod:`repro.emulation`).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Optional

import numpy as np

from repro import des
from repro.compute import ComputeService
from repro.obs import Observer
from repro.emulation.calibration import (
    EmulationEffects,
    SWARP_TRUTH,
    TierEffects,
    effects_for,
    tier_latencies,
)
from repro.emulation.compute import EmulatedComputeService
from repro.emulation.trials import interference_factor
from repro.platform import Platform, PlatformSpec
from repro.platform.presets import (
    BB_DISK,
    bb_node_names,
    compute_node_names,
    cori_spec,
    local_bb_host,
    summit_spec,
)
from repro.storage import (
    BBMode,
    OnNodeBurstBuffer,
    ParallelFileSystem,
    SharedBurstBuffer,
    StorageService,
)
from repro.traces.events import ExecutionTrace
from repro.wms import EngineConfig, FractionPlacement, WorkflowEngine
from repro.workflow.genomes import make_1000genomes
from repro.workflow.model import Workflow
from repro.workflow.swarp import make_swarp

SYSTEMS = ("cori", "summit")


@dataclass
class ScenarioResult:
    """Everything a harness needs from one simulated execution.

    ``engine``/``workflow`` are ``None`` for scenarios that drive the
    allocators directly instead of executing a workflow DAG (the
    contended multi-job BB scenario).
    """

    trace: ExecutionTrace
    platform: Platform
    engine: Optional[WorkflowEngine]
    workflow: Optional[Workflow]

    @property
    def makespan(self) -> float:
        return self.trace.makespan

    def mean_duration(self, group: str) -> float:
        return self.trace.group_mean_duration(group)

    @property
    def pipeline_makespan(self) -> float:
        """Makespan of the compute pipelines, excluding stage-in.

        Figures 5, 10, and 11 report task/pipeline times with staging
        done beforehand; this is the matching quantity.
        """
        records = [
            r
            for r in self.trace.records.values()
            if r.group not in ("stage_in",)
        ]
        if not records:
            return 0.0
        start = min(r.start for r in records)
        end = max(r.end for r in records)
        return end - start


def _tune_uplinks(
    spec: PlatformSpec,
    suffixes: tuple[str, ...],
    penalty: float,
    bandwidth_scale: float = 1.0,
) -> PlatformSpec:
    """Apply a concurrency penalty and/or bandwidth scaling to BB uplinks.

    ``bandwidth_scale`` carries the per-trial interference into the
    links that actually bind under contention (per-service stream caps
    rarely do when many flows share an uplink).
    """
    if penalty <= 0 and bandwidth_scale == 1.0:
        return spec
    links = tuple(
        replace(
            l,
            concurrency_penalty=max(l.concurrency_penalty, penalty),
            bandwidth=l.bandwidth * bandwidth_scale,
        )
        if l.name.endswith(suffixes)
        else l
        for l in spec.links
    )
    return replace(spec, links=links)


def _noisy_tier(tier: TierEffects, rng: Optional[np.random.Generator]) -> TierEffects:
    """Apply one trial's interference to a tier's knobs."""
    if rng is None:
        return tier
    factor = interference_factor(rng, tier.interference_sigma)
    return replace(
        tier,
        read_latency=tier.read_latency * factor,
        write_latency=tier.write_latency * factor,
        stream_cap=tier.stream_cap / factor,
        metadata_service_time=tier.metadata_service_time * factor,
    )


def _override_pfs_disk(spec: PlatformSpec, bandwidth: Optional[float]) -> PlatformSpec:
    """Replace the PFS disk bandwidth (emulated effective PFS speed)."""
    if bandwidth is None:
        return spec
    hosts = tuple(
        replace(
            h,
            disks=tuple(
                replace(d, read_bandwidth=bandwidth, write_bandwidth=bandwidth)
                for d in h.disks
            ),
        )
        if h.name == "pfs"
        else h
        for h in spec.hosts
    )
    return replace(spec, hosts=hosts)


def _validate_fraction(name: str, value: float) -> None:
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")


# ----------------------------------------------------------------------
# SWarp
# ----------------------------------------------------------------------
def run_swarp(
    system: str = "cori",
    bb_mode: BBMode = BBMode.PRIVATE,
    input_fraction: float = 1.0,
    intermediates_in_bb: bool = True,
    outputs_in_bb: bool = False,
    n_pipelines: int = 1,
    cores_per_task: int = 32,
    include_stage_in: bool = True,
    emulated: bool = False,
    seed: Optional[int] = None,
    n_bb_nodes: int = 2,
    resample_flops: Optional[float] = None,
    combine_flops: Optional[float] = None,
    effects: Optional[EmulationEffects] = None,
    observer: Optional[Observer] = None,
    network_allocator: Optional[str] = None,
) -> ScenarioResult:
    """Run one SWarp configuration on a single compute node.

    Parameters mirror the paper's experimental knobs: the staged input
    fraction (Figures 4/5/10), the intermediate-file tier (Figure 5's
    BB-vs-PFS panels), cores per task (Figure 6), and concurrent
    pipelines (Figures 7/8/11).  ``bb_mode`` selects Cori's private or
    striped allocation; on Summit it is ignored (on-node BB).
    ``network_allocator`` names the bandwidth-sharing discipline
    (``None`` keeps the default max-min model).
    """
    if system not in SYSTEMS:
        raise ValueError(f"system must be one of {SYSTEMS}, got {system!r}")
    _validate_fraction("input_fraction", input_fraction)

    env = des.Environment()
    if observer is not None:
        observer.attach(env)
    if not emulated:
        effects = None
    elif effects is None:
        effects = effects_for(system)
    rng = np.random.default_rng(seed) if (emulated and seed is not None) else None

    # --- platform ------------------------------------------------------
    if system == "cori":
        spec = cori_spec(n_compute=1, n_bb_nodes=n_bb_nodes)
        suffixes = ("-bbnet",)
        bb_sigma = (
            effects.bb_private.interference_sigma
            if effects and bb_mode == BBMode.PRIVATE
            else effects.bb_striped.interference_sigma
            if effects
            else 0.0
        )
    else:
        spec = summit_spec(n_compute=1)
        suffixes = ("-pcie",)
        bb_sigma = effects.bb_onnode.interference_sigma if effects else 0.0
    if effects:
        uplink_scale = (
            1.0 / interference_factor(rng, bb_sigma) if rng is not None else 1.0
        )
        spec = _tune_uplinks(
            spec,
            suffixes,
            effects.bb_uplink_concurrency_penalty,
            bandwidth_scale=uplink_scale,
        )
        spec = _override_pfs_disk(spec, effects.pfs_disk_bandwidth)
    platform = Platform(env, spec, allocator=network_allocator)

    # --- storage services ----------------------------------------------
    if effects:
        pfs_tier = _noisy_tier(effects.pfs, rng)
        pfs = ParallelFileSystem(
            platform,
            latencies=tier_latencies(pfs_tier),
            max_stream_rate=pfs_tier.stream_cap,
            metadata_service_time=pfs_tier.metadata_service_time,
        )
    else:
        pfs = ParallelFileSystem(platform)

    stage_extra_latency = 0.0
    if system == "cori":
        if effects:
            tier = (
                effects.bb_private
                if bb_mode == BBMode.PRIVATE
                else effects.bb_striped
            )
            tier = _noisy_tier(tier, rng)
            per_stripe = effects.per_stripe_latency
            if (
                bb_mode == BBMode.STRIPED
                and effects.striped_anomaly_low
                <= input_fraction
                < effects.striped_anomaly_high
            ):
                # The reproducible Figure 4 anomaly: staging into a
                # striped allocation degrades in this fraction band.
                stage_extra_latency = (
                    tier.write_latency + tier.metadata_service_time + per_stripe
                ) * (effects.striped_anomaly_factor - 1.0)
            bb = SharedBurstBuffer(
                platform,
                bb_node_names(n_bb_nodes),
                bb_mode,
                owner_host="cn0" if bb_mode == BBMode.PRIVATE else None,
                latencies=tier_latencies(tier),
                per_stripe_latency=per_stripe,
                max_stream_rate=tier.stream_cap,
                metadata_service_time=tier.metadata_service_time,
            )
        else:
            bb = SharedBurstBuffer(
                platform,
                bb_node_names(n_bb_nodes),
                bb_mode,
                owner_host="cn0" if bb_mode == BBMode.PRIVATE else None,
            )
    else:
        if effects:
            tier = _noisy_tier(effects.bb_onnode, rng)
            bb = OnNodeBurstBuffer(
                platform,
                local_bb_host("cn0"),
                latencies=tier_latencies(tier),
                max_stream_rate=tier.stream_cap,
            )
        else:
            bb = OnNodeBurstBuffer(platform, local_bb_host("cn0"))

    # --- compute ---------------------------------------------------------
    if effects:
        compute: ComputeService = EmulatedComputeService(
            platform, ["cn0"], effects=effects, truth=SWARP_TRUTH
        )
    else:
        compute = ComputeService(platform, ["cn0"])

    # --- workflow + engine ----------------------------------------------
    workflow = make_swarp(
        n_pipelines=n_pipelines,
        cores_per_task=cores_per_task,
        include_stage_in=include_stage_in,
    )
    if resample_flops is not None or combine_flops is not None:
        workflow = _override_swarp_flops(workflow, resample_flops, combine_flops)

    placement = FractionPlacement(
        input_fraction=input_fraction,
        intermediate_fraction=1.0 if intermediates_in_bb else 0.0,
        output_fraction=1.0 if outputs_in_bb else 0.0,
    )
    engine = WorkflowEngine(
        platform,
        workflow,
        compute,
        pfs,
        bb_for_host=lambda host: bb,
        placement=placement,
        host_assignment=lambda task: "cn0",
        config=EngineConfig(
            stage_extra_latency=stage_extra_latency,
            stage_in_external=not emulated,
        ),
    )
    trace = engine.run()
    return ScenarioResult(trace=trace, platform=platform, engine=engine, workflow=workflow)


def _override_swarp_flops(
    workflow: Workflow,
    resample_flops: Optional[float],
    combine_flops: Optional[float],
) -> Workflow:
    """Rebuild a SWarp workflow with calibrated task flops (Eq. 4 output)."""
    from dataclasses import replace as dc_replace

    tasks = []
    for task in workflow:
        if task.group == "resample" and resample_flops is not None:
            tasks.append(dc_replace(task, flops=resample_flops))
        elif task.group == "combine" and combine_flops is not None:
            tasks.append(dc_replace(task, flops=combine_flops))
        else:
            tasks.append(task)
    return Workflow(workflow.name, tasks)


# ----------------------------------------------------------------------
# 1000Genomes
# ----------------------------------------------------------------------
def run_genomes(
    system: str = "cori",
    input_fraction: float = 1.0,
    n_chromosomes: int = 22,
    n_compute: int = 8,
    cores_per_task: int = 1,
    emulated: bool = False,
    seed: Optional[int] = None,
    n_bb_nodes: int = 1,
    effects: Optional[EmulationEffects] = None,
    observer: Optional[Observer] = None,
    network_allocator: Optional[str] = None,
) -> ScenarioResult:
    """Run the 1000Genomes case study (Section IV-C).

    On Cori the BB is a *single* dedicated node in striped mode (the
    paper conjectures more BB nodes would lift the plateau it observes
    at ~80% staged input); on Summit each node uses its local NVMe.
    Inputs are prestaged (the paper's case study does not charge
    staging time).
    """
    if system not in SYSTEMS:
        raise ValueError(f"system must be one of {SYSTEMS}, got {system!r}")
    _validate_fraction("input_fraction", input_fraction)
    if n_compute <= 0:
        raise ValueError("n_compute must be positive")
    if n_bb_nodes <= 0:
        raise ValueError("n_bb_nodes must be positive")

    env = des.Environment()
    if observer is not None:
        observer.attach(env)
    if not emulated:
        effects = None
    elif effects is None:
        effects = effects_for(system)
    rng = np.random.default_rng(seed) if (emulated and seed is not None) else None

    if system == "cori":
        spec = cori_spec(n_compute=n_compute, n_bb_nodes=n_bb_nodes)
    else:
        spec = summit_spec(n_compute=n_compute)
    if effects:
        suffix = ("-bbnet",) if system == "cori" else ("-pcie",)
        sigma = (
            effects.bb_striped.interference_sigma
            if system == "cori"
            else effects.bb_onnode.interference_sigma
        )
        uplink_scale = (
            1.0 / interference_factor(rng, sigma) if rng is not None else 1.0
        )
        spec = _tune_uplinks(
            spec,
            suffix,
            effects.bb_uplink_concurrency_penalty,
            bandwidth_scale=uplink_scale,
        )
        spec = _override_pfs_disk(spec, effects.pfs_disk_bandwidth)
    platform = Platform(env, spec, allocator=network_allocator)

    if effects:
        pfs_tier = _noisy_tier(effects.pfs, rng)
        pfs = ParallelFileSystem(
            platform,
            latencies=tier_latencies(pfs_tier),
            max_stream_rate=pfs_tier.stream_cap,
            metadata_service_time=pfs_tier.metadata_service_time,
        )
    else:
        pfs = ParallelFileSystem(platform)

    hosts = compute_node_names(n_compute)
    bb_services: dict[str, StorageService] = {}

    if system == "cori":
        if effects:
            tier = _noisy_tier(effects.bb_striped, rng)
            shared = SharedBurstBuffer(
                platform,
                bb_node_names(n_bb_nodes),
                BBMode.STRIPED,
                latencies=tier_latencies(tier),
                per_stripe_latency=effects.per_stripe_latency,
                max_stream_rate=tier.stream_cap,
                metadata_service_time=tier.metadata_service_time,
            )
        else:
            shared = SharedBurstBuffer(
                platform, bb_node_names(n_bb_nodes), BBMode.STRIPED
            )
        bb_for_host: Callable[[str], StorageService] = lambda host: shared
    else:
        def bb_for_host(host: str) -> StorageService:
            if host not in bb_services:
                if effects:
                    tier = _noisy_tier(effects.bb_onnode, rng)
                    bb_services[host] = OnNodeBurstBuffer(
                        platform,
                        local_bb_host(host),
                        latencies=tier_latencies(tier),
                        max_stream_rate=tier.stream_cap,
                    )
                else:
                    bb_services[host] = OnNodeBurstBuffer(
                        platform, local_bb_host(host)
                    )
            return bb_services[host]

    if effects:
        compute: ComputeService = EmulatedComputeService(
            platform, hosts, effects=effects, truth={}
        )
    else:
        compute = ComputeService(platform, hosts)

    workflow = make_1000genomes(
        n_chromosomes=n_chromosomes, cores_per_task=cores_per_task
    )
    placement = FractionPlacement(
        input_fraction=input_fraction,
        intermediate_fraction=1.0,
        output_fraction=0.0,
    )
    engine = WorkflowEngine(
        platform,
        workflow,
        compute,
        pfs,
        bb_for_host=bb_for_host,
        placement=placement,
        config=EngineConfig(prestage_inputs=True),
    )
    trace = engine.run()
    return ScenarioResult(trace=trace, platform=platform, engine=engine, workflow=workflow)


# ----------------------------------------------------------------------
# Contended multi-job burst buffer (queue-policy comparison scenario)
# ----------------------------------------------------------------------
#: Deterministic per-job patterns (index i cycles through these): a
#: "whale" allocation every fourth job keeps the granule pool contended
#: while the small jobs behind it are exactly the backfill opportunity
#: the non-FIFO policies exploit.  No randomness — the determinism
#: contract (SIM001) holds for every policy.
_CONTENDED_GRANULES = (6, 4, 2, 2)
_CONTENDED_DURATIONS = (60.0, 20.0, 8.0, 8.0)
_CONTENDED_CORES = (16, 8, 4, 4)

#: Granularity giving 4 granules per 6.4 TB Cori BB node.
CONTENDED_GRANULARITY = 1.6e12


@dataclass(frozen=True)
class ContendedJob:
    """One job of the contended scenario's deterministic arrival list."""

    name: str
    arrival: float
    host: str
    cores: int
    granules: int
    duration: float


def contended_jobs(
    n_jobs: int = 8, n_compute: int = 2
) -> list[ContendedJob]:
    """The deterministic job list of the contended BB scenario.

    Jobs alternate over the compute hosts; sizes/durations follow the
    fixed cycles above, so per-task work totals are identical under
    every queue policy by construction.
    """
    if n_jobs <= 0:
        raise ValueError("n_jobs must be positive")
    jobs = []
    for i in range(n_jobs):
        jobs.append(
            ContendedJob(
                name=f"job{i}",
                arrival=float(i),
                host=f"cn{i % n_compute}",
                cores=_CONTENDED_CORES[i % len(_CONTENDED_CORES)],
                granules=_CONTENDED_GRANULES[i % len(_CONTENDED_GRANULES)],
                duration=_CONTENDED_DURATIONS[i % len(_CONTENDED_DURATIONS)],
            )
        )
    return jobs


def run_contended(
    n_jobs: int = 8,
    queue_policy: str = "fifo",
    n_compute: int = 2,
    n_bb_nodes: int = 2,
    granularity: float = CONTENDED_GRANULARITY,
    observer: Optional[Observer] = None,
) -> ScenarioResult:
    """Run the contended multi-job shared-BB scenario.

    A scenario family the source paper never runs: many jobs compete
    for one DataWarp granule pool (and for cores), so the queueing
    discipline — ``queue_policy``, a :mod:`repro.wms.policies` registry
    name — decides who waits for what.  Under ``fifo`` a queued whale
    allocation blocks every later job (head-of-line blocking); the
    backfill policies let small jobs jump ahead using their walltime
    estimates; ``plan`` routes each job through the
    :class:`~repro.wms.PlanCoordinator`, co-reserving cores + granules
    as one joint reservation (never holding one while queueing for the
    other).

    Every job appears in the returned trace as one ``job``-group task
    record (arrival logged as ``task_ready``), so
    :func:`repro.profile.build_profile` attributes each policy's
    makespan — including ``wait:bb_capacity`` / ``wait:cores`` — and
    per-policy profiles can be diffed.
    """
    from repro.storage.provisioning import BBProvisioner
    from repro.traces.events import TaskRecord
    from repro.wms.policies import PlanCoordinator, resolve_policy

    resolve_policy(queue_policy)  # fail fast on unknown names
    env = des.Environment()
    if observer is not None:
        observer.attach(env)
    spec = cori_spec(n_compute=n_compute, n_bb_nodes=n_bb_nodes)
    platform = Platform(env, spec)
    hosts = compute_node_names(n_compute)
    plan_based = queue_policy == "plan"
    # Under "plan" every request goes through the coordinator, so the
    # allocator-level queues stay empty and their policy is irrelevant.
    allocator_policy = "fifo" if plan_based else queue_policy
    compute = ComputeService(platform, hosts, queue_policy=allocator_policy)
    provisioner = BBProvisioner(
        platform, granularity=granularity, policy=allocator_policy
    )
    coordinator = PlanCoordinator(compute, provisioner) if plan_based else None

    trace = ExecutionTrace("contended-bb")
    jobs = contended_jobs(n_jobs=n_jobs, n_compute=n_compute)

    def run_job(env, job: ContendedJob):
        yield env.timeout(job.arrival)
        trace.log(env.now, "task_ready", job.name)
        size = job.granules * granularity
        if coordinator is not None:
            reservation = yield coordinator.request(
                job.host, job.cores, size,
                job=job.name, estimate=job.duration,
            )
            start = env.now
            yield env.timeout(job.duration)
            reservation.release()
        else:
            # BB allocation first, cores second — the hold-and-wait
            # pattern plan-based scheduling exists to avoid.
            lease = yield provisioner.request(
                size, job=job.name, estimate=job.duration
            )
            allocation = yield compute.acquire_cores(
                job.host, job.cores, task=job.name, estimate=job.duration
            )
            start = env.now
            yield env.timeout(job.duration)
            allocation.release()
            lease.release()
        end = env.now
        trace.log(end, "task_end", job.name)
        trace.add_record(
            TaskRecord(
                name=job.name,
                group="job",
                host=job.host,
                cores=job.cores,
                start=start,
                read_start=start,
                read_end=start,
                compute_end=end,
                write_end=end,
                end=end,
            )
        )

    for job in jobs:
        env.process(run_job(env, job))
    env.run()
    return ScenarioResult(
        trace=trace, platform=platform, engine=None, workflow=None
    )
