"""The one-call public API: :func:`simulate` a workflow on a platform.

Everything the library can do is reachable through its layered modules,
but the common case — "here is a platform, here is a workflow, run it"
— should not require knowing which of them to assemble.  This module is
that front door::

    import repro

    result = repro.simulate("platform.json", "workflow.json")
    print(result.makespan)

``platform`` and ``workflow`` accept either in-memory objects
(:class:`~repro.platform.PlatformSpec`, :class:`~repro.workflow.Workflow`)
or paths to JSON descriptions (platform JSON / WfCommons trace), exactly
like :class:`~repro.simulator.Simulator` — which does the actual work.
"""

from __future__ import annotations

import warnings
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.config import Config
from repro.obs import Observer
from repro.platform import PlatformSpec
from repro.simulator import Simulator, SimulatorConfig
from repro.traces.events import ExecutionTrace
from repro.workflow.model import Workflow


class Result:
    """Outcome of one :func:`simulate` call.

    Thin, read-only view over the run's artifacts: the execution
    ``trace`` (per-task records), the ``makespan``, and — when the run
    was observed — the collected ``telemetry``.
    """

    def __init__(
        self,
        trace: ExecutionTrace,
        config: SimulatorConfig,
        observer: Optional[Observer],
        _simulator: Simulator,
    ) -> None:
        self.trace = trace
        self.config = config
        self.observer = observer
        self._simulator = _simulator
        self._profile = None

    @property
    def makespan(self) -> float:
        """End-to-end simulated execution time in seconds."""
        return self.trace.makespan

    def profile(self):
        """The run's critical-path :class:`~repro.profile.Profile`.

        Built lazily from the trace (refined with the observer's wait
        intervals when the run was observed) and cached.  The profile's
        attribution is guaranteed — by :class:`~repro.profile.Profile`'s
        own invariant — to sum to :attr:`makespan` within relative 1e-9,
        so the library's two answers to "how long did this run take?"
        can never drift apart.
        """
        if self._profile is None:
            from repro.profile import build_profile

            self._profile = build_profile(self.trace, observer=self.observer)
        return self._profile

    @property
    def critical_path(self):
        """The realized critical path (list of attributed segments)."""
        return self.profile().critical_path

    @property
    def telemetry(self):
        """The run's :class:`~repro.obs.probes.MetricRegistry`.

        ``None`` unless the run was given an observer.
        """
        if self.observer is None:
            return None
        return self.observer.registry

    @property
    def events(self):
        """The run's structured event log (``repro.obs.log/1`` records).

        ``None`` unless the run was given an observer.
        """
        if self.observer is None:
            return None
        return self.observer.events

    def export_telemetry(self, directory: "str | Path") -> Path:
        """Write manifest + Perfetto trace + metric CSVs to ``directory``.

        Requires the run to have been observed.
        """
        return self._simulator.export_telemetry(directory, trace=self.trace)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        observed = "observed" if self.observer is not None else "unobserved"
        return (
            f"<Result {self.trace.workflow_name!r}: "
            f"{len(self.trace.records)} tasks, "
            f"makespan {self.makespan:.3f}s, {observed}>"
        )


def simulate(
    platform: "PlatformSpec | str | Path",
    workflow: "Workflow | str | Path",
    *,
    config: "Config | SimulatorConfig | Mapping[str, object] | str | Path | None" = None,
    observer: "Observer | bool | None" = None,
    monitors: bool = False,
    live_dir: "str | Path | None" = None,
    allocator: Optional[str] = None,
    policy: Optional[str] = None,
) -> Result:
    """Simulate ``workflow`` on ``platform`` and return a :class:`Result`.

    Parameters
    ----------
    platform:
        A :class:`~repro.platform.PlatformSpec` or a path to a platform
        JSON description.
    workflow:
        A :class:`~repro.workflow.Workflow` or a path to a WfCommons
        JSON trace.
    config:
        Anything :meth:`repro.Config.from_any` accepts: a
        :class:`~repro.config.Config`, a
        :class:`~repro.simulator.SimulatorConfig`, a mapping of field
        names (``bb_mode``, ``network_allocator``, ``monitors``, ...)
        for quick literal configs, or a path to a JSON file of one.
    observer:
        An :class:`~repro.obs.Observer` to collect telemetry into;
        ``True`` creates one collecting the config's metric groups.
        Implied by the config's observability switches (``observe``,
        ``monitors``, ``live_dir``, ...).
    monitors:
        ``True`` runs the standard online invariant monitors (BB
        occupancy, link capacity, clock monotonicity, lease balance); a
        violated invariant raises
        :class:`~repro.obs.InvariantViolation` mid-run.  Only applies
        when this call creates the observer — a pre-built
        :class:`Observer` carries its own monitor list.  Equivalent to
        ``Config.monitors``.
    live_dir:
        Stream live telemetry (``repro.obs.live/1``) into this
        directory while the run executes; tail it with
        ``repro-obs watch``.  The stream is closed when the run ends.
        Equivalent to ``Config.live_dir``.
    allocator:
        Deprecated — set ``Config.network_allocator`` instead.
    policy:
        Deprecated — set ``Config.queue_policy`` instead.
    """
    cfg = Config.from_any(config)
    overridden = False
    if allocator is not None:
        warnings.warn(
            "simulate(allocator=...) is deprecated; set "
            "Config.network_allocator instead",
            DeprecationWarning,
            stacklevel=2,
        )
        cfg = cfg.replace(network_allocator=allocator)
        overridden = True
    if policy is not None:
        warnings.warn(
            "simulate(policy=...) is deprecated; set Config.queue_policy "
            "instead",
            DeprecationWarning,
            stacklevel=2,
        )
        cfg = cfg.replace(queue_policy=policy)
        overridden = True
    if monitors:
        cfg = cfg.replace(monitors=True)
    if live_dir is not None:
        cfg = cfg.replace(live_dir=str(live_dir))
    if observer in (None, False) and cfg.wants_observer():
        observer = True
    if observer is True:
        observer = cfg.make_observer() or Observer(monitors=cfg.monitors)
    elif observer is False:
        observer = None
    if (
        cfg.live_dir is not None
        and observer is not None
        and observer.bus is None
    ):
        from repro.obs import LiveBus

        observer.attach_bus(LiveBus(cfg.live_dir))
    # Preserve object identity for callers that pass a SimulatorConfig
    # (Result.config is their exact instance unless a deprecated
    # keyword rewrote a model knob).
    if isinstance(config, SimulatorConfig) and not overridden:
        sim_config = config
    else:
        sim_config = cfg.to_simulator_config()
    simulator = Simulator(
        platform, workflow, config=sim_config, observer=observer
    )
    trace = simulator.run()
    if observer is not None and observer.bus is not None:
        observer.bus.close()
    return Result(trace, simulator.config, observer, simulator)
