"""Timestamped event traces (the simulator's primary output).

The paper: "the simulator simulates the execution of the workflow and
outputs a time-stamped event trace.  The date of the last event, which
corresponds to the last task completion, gives the overall makespan."
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One timestamped event."""

    time: float
    kind: str          # e.g. "task_start", "read_end", "stage_copy"
    task: str = ""
    detail: str = ""

    def to_dict(self) -> dict[str, Any]:
        return {
            "time": self.time,
            "kind": self.kind,
            "task": self.task,
            "detail": self.detail,
        }


@dataclass(frozen=True)
class IOOperation:
    """One file-level I/O operation (a Darshan-style log line)."""

    task: str
    file: str
    service: str      # storage service name
    kind: str         # "read" | "write" | "stage"
    size: float       # bytes
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def bandwidth(self) -> Optional[float]:
        """Achieved bandwidth, or None for instantaneous operations."""
        if self.duration <= 0:
            return None
        return self.size / self.duration

    def to_dict(self) -> dict[str, Any]:
        return {
            "task": self.task,
            "file": self.file,
            "service": self.service,
            "kind": self.kind,
            "size": self.size,
            "start": self.start,
            "end": self.end,
        }


@dataclass
class TaskRecord:
    """Aggregated timing of one executed task."""

    name: str
    group: str
    host: str
    cores: int
    start: float = 0.0
    read_start: float = 0.0
    read_end: float = 0.0
    compute_end: float = 0.0
    write_end: float = 0.0
    end: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def read_time(self) -> float:
        return self.read_end - self.read_start

    @property
    def compute_time(self) -> float:
        return self.compute_end - self.read_end

    @property
    def write_time(self) -> float:
        return self.write_end - self.compute_end

    @property
    def io_time(self) -> float:
        return self.read_time + self.write_time

    @property
    def io_fraction(self) -> float:
        """Observed λ_io of this execution (Eq. 1's input)."""
        return self.io_time / self.duration if self.duration > 0 else 0.0


class ExecutionTrace:
    """Event log plus per-task records for one workflow execution."""

    def __init__(self, workflow_name: str = "") -> None:
        self.workflow_name = workflow_name
        self.events: list[TraceEvent] = []
        self.records: dict[str, TaskRecord] = {}
        self.io_operations: list[IOOperation] = []

    def log(self, time: float, kind: str, task: str = "", detail: str = "") -> None:
        self.events.append(TraceEvent(time, kind, task, detail))

    def log_io(self, operation: IOOperation) -> None:
        self.io_operations.append(operation)

    def add_record(self, record: TaskRecord) -> None:
        self.records[record.name] = record

    # ------------------------------------------------------------------
    # I/O operation queries
    # ------------------------------------------------------------------
    def io_for_task(self, task: str) -> list[IOOperation]:
        return [op for op in self.io_operations if op.task == task]

    def io_for_service(self, service: str) -> list[IOOperation]:
        return [op for op in self.io_operations if op.service == service]

    def service_bytes(self) -> dict[str, float]:
        """Total bytes moved through each storage service."""
        out: dict[str, float] = {}
        for op in self.io_operations:
            out[op.service] = out.get(op.service, 0.0) + op.size
        return out

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Date of the last event (last task completion).

        Falls back to the latest task-record end when the event log is
        sparse (e.g. a trace re-loaded from a records-only export), so
        a trace with finished tasks never reports a 0.0 makespan.
        """
        from_events = max((e.time for e in self.events), default=0.0)
        from_records = max((r.end for r in self.records.values()), default=0.0)
        return max(from_events, from_records)

    def task_record(self, name: str) -> TaskRecord:
        try:
            return self.records[name]
        except KeyError:
            raise KeyError(f"no record for task {name!r}") from None

    def records_in_group(self, group: str) -> list[TaskRecord]:
        return sorted(
            (r for r in self.records.values() if r.group == group),
            key=lambda r: r.name,
        )

    def group_mean_duration(self, group: str) -> float:
        records = self.records_in_group(group)
        if not records:
            raise KeyError(f"no tasks in group {group!r}")
        return sum(r.duration for r in records) / len(records)

    def events_of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self, path: "str | Path | None" = None) -> str:
        doc = {
            "workflow": self.workflow_name,
            "makespan": self.makespan,
            "events": [e.to_dict() for e in self.events],
            "tasks": [
                {
                    "name": r.name,
                    "group": r.group,
                    "host": r.host,
                    "cores": r.cores,
                    "start": r.start,
                    "end": r.end,
                    # Raw phase timestamps (lossless round trip) ...
                    "read_start": r.read_start,
                    "read_end": r.read_end,
                    "compute_end": r.compute_end,
                    "write_end": r.write_end,
                    # ... plus the derived durations older consumers use.
                    "read_time": r.read_time,
                    "compute_time": r.compute_time,
                    "write_time": r.write_time,
                }
                for r in sorted(self.records.values(), key=lambda r: r.start)
            ],
            "io_operations": [op.to_dict() for op in self.io_operations],
        }
        text = json.dumps(doc, indent=2)
        if path is not None:
            Path(path).write_text(text)
        return text

    @classmethod
    def from_json(cls, source: "str | dict[str, Any]") -> "ExecutionTrace":
        """Re-load a trace exported with :meth:`to_json`.

        ``source`` is the JSON text (or the already-parsed document).
        Events, task records, and I/O operations all round-trip; task
        documents written before raw phase timestamps were exported are
        reconstructed from the derived durations (phases are contiguous
        from ``start``, which is how the engine records them).
        """
        doc = json.loads(source) if isinstance(source, str) else source
        trace = cls(doc.get("workflow", ""))
        for e in doc.get("events", ()):
            trace.log(e["time"], e["kind"], e.get("task", ""), e.get("detail", ""))
        for t in doc.get("tasks", ()):
            start = t["start"]
            if "read_end" in t:
                read_start = t.get("read_start", start)
                read_end = t["read_end"]
                compute_end = t["compute_end"]
                write_end = t["write_end"]
            else:
                read_start = start
                read_end = read_start + t.get("read_time", 0.0)
                compute_end = read_end + t.get("compute_time", 0.0)
                write_end = compute_end + t.get("write_time", 0.0)
            trace.add_record(
                TaskRecord(
                    name=t["name"],
                    group=t.get("group", ""),
                    host=t.get("host", ""),
                    cores=t.get("cores", 1),
                    start=start,
                    read_start=read_start,
                    read_end=read_end,
                    compute_end=compute_end,
                    write_end=write_end,
                    end=t["end"],
                )
            )
        for op in doc.get("io_operations", ()):
            trace.log_io(
                IOOperation(
                    task=op["task"],
                    file=op["file"],
                    service=op["service"],
                    kind=op["kind"],
                    size=op["size"],
                    start=op["start"],
                    end=op["end"],
                )
            )
        return trace

    @classmethod
    def from_json_file(cls, path: "str | Path") -> "ExecutionTrace":
        """Re-load a trace from a file written by :meth:`to_json`."""
        return cls.from_json(Path(path).read_text())

    def __len__(self) -> int:
        return len(self.events)
