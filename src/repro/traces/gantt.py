"""ASCII Gantt rendering of execution traces.

A terminal-friendly view of who ran when — useful when debugging
placement policies or contention effects without leaving the shell.
"""

from __future__ import annotations

from repro.platform.units import format_size
from repro.traces.events import ExecutionTrace

_PHASES = (
    ("read", "r"),
    ("compute", "#"),
    ("write", "w"),
)


def render_gantt(
    trace: ExecutionTrace,
    width: int = 72,
    max_tasks: int = 40,
) -> str:
    """Render the trace as an ASCII Gantt chart.

    Each task is one row; ``r``/``#``/``w`` mark its read, compute, and
    write phases on a time axis scaled to ``width`` characters.  Rows
    are ordered by start time; output is truncated at ``max_tasks``
    rows (with a trailing note) to stay terminal-sized.
    """
    if width < 10:
        raise ValueError("width must be at least 10")
    records = sorted(trace.records.values(), key=lambda r: (r.start, r.name))
    if not records:
        return "(empty trace)"
    makespan = max(r.end for r in records)
    if makespan <= 0:
        return "(zero-length trace)"

    def column(t: float) -> int:
        return min(width - 1, int(t / makespan * width))

    name_width = min(24, max(len(r.name) for r in records))
    lines = [
        f"{'task'.ljust(name_width)} |{'time →'.ljust(width)}| 0..{makespan:.2f}s"
    ]
    for record in records[:max_tasks]:
        row = [" "] * width
        spans = [
            (record.read_start, record.read_end, "r"),
            (record.read_end, record.compute_end, "#"),
            (record.compute_end, record.write_end, "w"),
        ]
        for begin, end, char in spans:
            if end <= begin:
                continue
            for i in range(column(begin), max(column(begin) + 1, column(end))):
                row[i] = char
        name = record.name[:name_width].ljust(name_width)
        lines.append(f"{name} |{''.join(row)}|")
    if len(records) > max_tasks:
        lines.append(f"... ({len(records) - max_tasks} more tasks)")
    lines.append("legend: r=read  #=compute  w=write")
    if trace.io_operations:
        per_service = ", ".join(
            f"{service}: {format_size(total)}"
            for service, total in sorted(trace.service_bytes().items())
        )
        lines.append(
            f"io: {format_size(sum(op.size for op in trace.io_operations))} "
            f"in {len(trace.io_operations)} operations ({per_service})"
        )
    return "\n".join(lines)
