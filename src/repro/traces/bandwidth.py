"""Bandwidth accounting from completed flows (paper Figure 9's metric)."""

from __future__ import annotations

from typing import Optional

from repro.network.flownet import FlowNetwork


def achieved_bandwidths(
    network: FlowNetwork, label_prefix: Optional[str] = None
) -> list[float]:
    """Mean end-to-end bandwidth of each completed flow, bytes/s.

    ``label_prefix`` filters flows by label (e.g. ``"bb-private:"`` to
    select only burst-buffer operations).  Zero-duration and zero-byte
    flows are skipped.
    """
    out = []
    for flow in network.completed:
        if label_prefix is not None and not flow.label.startswith(label_prefix):
            continue
        bw = flow.achieved_bandwidth
        if bw is not None and flow.size > 0:
            out.append(bw)
    return out


def mean_achieved_bandwidth(
    network: FlowNetwork, label_prefix: Optional[str] = None
) -> float:
    """Average achieved bandwidth over matching completed flows.

    This is the quantity Figure 9 reports per BB configuration; it sits
    well below the peak bandwidth whenever latency or contention bites.
    """
    values = achieved_bandwidths(network, label_prefix)
    if not values:
        raise ValueError("no completed flows match")
    return sum(values) / len(values)
