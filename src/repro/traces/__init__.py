"""Execution traces: timestamped events and derived statistics."""

from repro.traces.events import ExecutionTrace, IOOperation, TaskRecord, TraceEvent
from repro.traces.bandwidth import achieved_bandwidths, mean_achieved_bandwidth
from repro.traces.gantt import render_gantt

__all__ = [
    "ExecutionTrace",
    "IOOperation",
    "TaskRecord",
    "TraceEvent",
    "achieved_bandwidths",
    "mean_achieved_bandwidth",
    "render_gantt",
]
