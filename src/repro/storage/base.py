"""Storage service interface and common machinery."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.des import Event
from repro.platform.runtime import Platform
from repro.workflow.model import File


class StorageError(Exception):
    """Base class for storage service errors."""


class InsufficientStorage(StorageError):
    """A write would exceed the service's capacity."""


class FileNotOnService(StorageError):
    """A read targeted a file the service does not hold."""


class AccessDeniedError(StorageError):
    """The service's access policy forbids the operation.

    Raised e.g. when a host other than the owner reads from a
    private-mode shared burst buffer allocation.
    """


@dataclass
class ServiceLatencies:
    """Per-operation latencies, in seconds.

    The paper's simple model runs with all-zero latencies; the emulation
    layer sets them to model metadata costs (file open/close, DataWarp
    namespace operations) that dominate small-file performance.
    """

    read: float = 0.0
    write: float = 0.0

    def __post_init__(self) -> None:
        if self.read < 0 or self.write < 0:
            raise ValueError("latencies must be non-negative")


class StorageService(abc.ABC):
    """A named storage layer files can be written to and read from.

    Concrete services translate reads/writes into flows on the
    platform's network (disk channels + routes) and keep a content
    table with capacity accounting.
    """

    def __init__(
        self,
        name: str,
        platform: Platform,
        capacity: float = float("inf"),
        latencies: Optional[ServiceLatencies] = None,
        metadata_service_time: float = 0.0,
        metadata_parallelism: int = 1,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if metadata_service_time < 0:
            raise ValueError("metadata_service_time must be non-negative")
        if metadata_parallelism <= 0:
            raise ValueError("metadata_parallelism must be positive")
        self.name = name
        self.platform = platform
        self.env = platform.env
        self.capacity = capacity
        self.latencies = latencies or ServiceLatencies()
        self._contents: dict[str, File] = {}
        #: Serialized metadata server: every read/write holds one slot
        #: for ``metadata_service_time`` seconds before its transfer
        #: starts.  Unlike per-flow latency (which concurrent operations
        #: amortize), a busy metadata server *queues* operations — this
        #: is what makes many-small-file patterns catastrophic on
        #: striped DataWarp allocations (paper Figure 5).
        self.metadata_service_time = metadata_service_time
        self._metadata: Optional[object] = None
        if metadata_service_time > 0:
            from repro.des import Resource

            self._metadata = Resource(self.env, capacity=metadata_parallelism)

    # ------------------------------------------------------------------
    # Content table
    # ------------------------------------------------------------------
    @property
    def used(self) -> float:
        return sum(f.size for f in self._contents.values())

    @property
    def free_space(self) -> float:
        return self.capacity - self.used

    def contains(self, file: File) -> bool:
        return file.name in self._contents

    def files(self) -> list[File]:
        return sorted(self._contents.values(), key=lambda f: f.name)

    def add_file(self, file: File) -> None:
        """Register ``file`` as present without simulating a transfer.

        Used to model pre-populated storage (e.g. workflow inputs that
        already live on the PFS before the execution starts).
        """
        if self.contains(file):
            return
        self._reserve(file)
        self._contents[file.name] = file
        self._notify_occupancy()
        self._log_content_event("file_added", file)

    def delete(self, file: File) -> None:
        """Remove ``file``, freeing its space (no-op if absent)."""
        if self._contents.pop(file.name, None) is not None:
            self._notify_occupancy()
            self._log_content_event("file_deleted", file)

    def _log_content_event(self, event: str, file: File) -> None:
        obs = self.env.obs
        if obs is not None:
            obs.log_event(
                "storage", event,
                service=self.name, file=file.name, size=file.size,
                used=self.used,
            )

    def _notify_occupancy(self) -> None:
        """Publish the occupancy sample after a content-table change."""
        obs = self.env.obs
        if obs is not None:
            obs.on_storage_occupancy(self.name, self.used, self.capacity)

    def _notify_op(self, kind: str, nbytes: float) -> None:
        """Publish one issued operation (``read``/``write``/``stage``)."""
        obs = self.env.obs
        if obs is not None:
            obs.on_storage_op(self.name, kind, nbytes)

    def _reserve(self, file: File) -> None:
        if file.size > self.free_space:
            obs = self.env.obs
            if obs is not None:
                obs.log_event(
                    "storage", "insufficient_storage",
                    service=self.name, file=file.name, need=file.size,
                    free=self.free_space,
                )
            raise InsufficientStorage(
                f"{self.name}: cannot store {file.name!r} "
                f"({file.size:.3e} B > {self.free_space:.3e} B free)"
            )

    # ------------------------------------------------------------------
    # I/O operations
    # ------------------------------------------------------------------
    def write(self, file: File, src_host: str) -> Event:
        """Write ``file`` from ``src_host``'s RAM onto this service.

        Capacity is reserved immediately; the returned event fires when
        the last byte lands, at which point the file becomes readable.
        """
        if not self.contains(file):
            self._reserve(file)
            self._contents[file.name] = file
            self._notify_occupancy()
        self._notify_op("write", file.size)
        return self._gated(lambda: self._write_flow(file, src_host))

    def read(self, file: File, dest_host: str) -> Event:
        """Read ``file`` from this service into ``dest_host``'s RAM."""
        if not self.contains(file):
            raise FileNotOnService(f"{self.name}: no file {file.name!r}")
        self._notify_op("read", file.size)
        return self._gated(lambda: self._read_flow(file, dest_host))

    def _gated(self, start_transfer) -> Event:
        """Run a transfer behind the metadata server, if one exists."""
        if self._metadata is None:
            return start_transfer()
        done = self.env.event()

        def run():
            request = self._metadata.request()
            yield request
            yield self.env.timeout(self.metadata_service_time)
            self._metadata.release(request)
            result = yield start_transfer()
            done.succeed(result)

        self.env.process(run())
        return done

    @abc.abstractmethod
    def _write_flow(self, file: File, src_host: str) -> Event:
        """Start the write transfer(s); return the completion event."""

    @abc.abstractmethod
    def _read_flow(self, file: File, dest_host: str) -> Event:
        """Start the read transfer(s); return the completion event."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<{type(self).__name__} {self.name!r}: "
            f"{len(self._contents)} files, {self.used:.3e}/{self.capacity:.3e} B>"
        )
