"""Burst buffer services: shared (Cori) and on-node (Summit)."""

from __future__ import annotations

import enum
from typing import Optional, Sequence

from repro.des import Event
from repro.platform.presets import BB_DISK
from repro.platform.runtime import Platform
from repro.storage.base import (
    AccessDeniedError,
    ServiceLatencies,
    StorageService,
)
from repro.workflow.model import File


class BBMode(str, enum.Enum):
    """Cray DataWarp allocation modes for shared burst buffers.

    PRIVATE pins each compute node's files to one BB node and restricts
    access to the creating node (better metadata handling); STRIPED
    spreads every file in chunks over all BB nodes and allows any node
    to access it (optimized for N:1 shared-file patterns).
    """

    PRIVATE = "private"
    STRIPED = "striped"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class SharedBurstBuffer(StorageService):
    """Remote-shared burst buffer on dedicated nodes (Cori, Figure 1a).

    Parameters
    ----------
    platform:
        Runtime platform exposing the BB nodes as hosts.
    bb_hosts:
        The dedicated BB node host names.
    mode:
        DataWarp allocation mode.
    owner_host:
        In PRIVATE mode, the compute node owning this allocation (reads
        and writes from any other host raise :class:`AccessDeniedError`).
    per_stripe_latency:
        STRIPED-mode metadata cost per chunk (emulation knob; the simple
        model leaves it at zero).
    max_stream_rate:
        Per-flow POSIX stream cap (emulation knob).
    capacity:
        Optional capacity clamp in bytes (a provisioned DataWarp
        allocation enforces its *granted* size, not the device sum).
        Applied at construction so capacity gauges and the occupancy
        monitor see the clamped value from the first sample; the
        effective capacity is ``min(device sum, capacity)``.
    """

    def __init__(
        self,
        platform: Platform,
        bb_hosts: Sequence[str],
        mode: BBMode = BBMode.PRIVATE,
        owner_host: Optional[str] = None,
        disk: str = BB_DISK,
        name: Optional[str] = None,
        latencies: Optional[ServiceLatencies] = None,
        per_stripe_latency: float = 0.0,
        max_stream_rate: float = float("inf"),
        metadata_service_time: float = 0.0,
        capacity: Optional[float] = None,
    ) -> None:
        if not bb_hosts:
            raise ValueError("at least one BB host is required")
        if mode == BBMode.PRIVATE and owner_host is None:
            raise ValueError("PRIVATE mode requires an owner_host")
        if per_stripe_latency < 0:
            raise ValueError("per_stripe_latency must be non-negative")

        device_capacity = sum(
            platform.host(h).disk(disk).capacity for h in bb_hosts
        )
        capacity = (
            device_capacity
            if capacity is None
            else min(device_capacity, capacity)
        )
        super().__init__(
            name or f"bb-{mode.value}",
            platform,
            capacity,
            latencies,
            metadata_service_time=metadata_service_time,
        )
        self.bb_hosts = list(bb_hosts)
        self.mode = mode
        self.owner_host = owner_host
        self.disk = disk
        self.per_stripe_latency = per_stripe_latency
        self.max_stream_rate = max_stream_rate
        # PRIVATE mode: deterministic assignment of this namespace to one
        # BB node (DataWarp pins a private allocation's files together).
        self._private_node = self.bb_hosts[
            (hash(owner_host) if owner_host else 0) % len(self.bb_hosts)
        ]

    # ------------------------------------------------------------------
    def _check_access(self, host: str) -> None:
        if self.mode == BBMode.PRIVATE and host != self.owner_host:
            raise AccessDeniedError(
                f"{self.name}: private allocation owned by "
                f"{self.owner_host!r}; access from {host!r} denied"
            )

    def _write_flow(self, file: File, src_host: str) -> Event:
        self._check_access(src_host)
        if self.mode == BBMode.PRIVATE:
            return self.platform.write_to_disk(
                file.size,
                self._private_node,
                self.disk,
                src_host=src_host,
                extra_latency=self.latencies.write,
                max_rate=self.max_stream_rate,
                label=f"{self.name}:write:{file.name}",
            )
        return self._striped_transfer(file, src_host, write=True)

    def _read_flow(self, file: File, dest_host: str) -> Event:
        self._check_access(dest_host)
        if self.mode == BBMode.PRIVATE:
            return self.platform.read_from_disk(
                file.size,
                self._private_node,
                self.disk,
                dest_host=dest_host,
                extra_latency=self.latencies.read,
                max_rate=self.max_stream_rate,
                label=f"{self.name}:read:{file.name}",
            )
        return self._striped_transfer(file, dest_host, write=False)

    def _striped_transfer(self, file: File, host: str, write: bool) -> Event:
        """One chunk per BB node, all in parallel; done when all land.

        Each chunk pays the per-stripe metadata latency — this is what
        makes striped mode disastrous for many-small-files patterns
        (paper Figure 5b/5e) while still fine for large files.
        """
        n = len(self.bb_hosts)
        chunk = file.size / n
        op_latency = self.latencies.write if write else self.latencies.read
        done = self.env.event()

        def run():
            transfers = []
            for bb in self.bb_hosts:
                if write:
                    ev = self.platform.write_to_disk(
                        chunk,
                        bb,
                        self.disk,
                        src_host=host,
                        extra_latency=op_latency + self.per_stripe_latency,
                        max_rate=self.max_stream_rate,
                        label=f"{self.name}:stripe:{file.name}@{bb}",
                    )
                else:
                    ev = self.platform.read_from_disk(
                        chunk,
                        bb,
                        self.disk,
                        dest_host=host,
                        extra_latency=op_latency + self.per_stripe_latency,
                        max_rate=self.max_stream_rate,
                        label=f"{self.name}:stripe:{file.name}@{bb}",
                    )
                transfers.append(ev)
            yield self.env.all_of(transfers)
            done.succeed(file)

        self.env.process(run())
        return done


class OnNodeBurstBuffer(StorageService):
    """Node-local NVMe burst buffer (Summit, Figure 1b).

    One service instance per compute node.  Local access rides the PCIe
    route; remote access (another node reading this buffer) rides the
    compute fabric plus the remote PCIe — possible but slower, matching
    the paper's observation that sharing files across on-node BBs "is
    not trivial" yet data movement between local BBs is affordable.
    """

    def __init__(
        self,
        platform: Platform,
        bb_host: str,
        disk: str = BB_DISK,
        name: Optional[str] = None,
        latencies: Optional[ServiceLatencies] = None,
        max_stream_rate: float = float("inf"),
    ) -> None:
        capacity = platform.host(bb_host).disk(disk).capacity
        super().__init__(name or f"bb-local:{bb_host}", platform, capacity, latencies)
        self.bb_host = bb_host
        self.disk = disk
        self.max_stream_rate = max_stream_rate

    def _write_flow(self, file: File, src_host: str) -> Event:
        return self.platform.write_to_disk(
            file.size,
            self.bb_host,
            self.disk,
            src_host=src_host,
            extra_latency=self.latencies.write,
            max_rate=self.max_stream_rate,
            label=f"{self.name}:write:{file.name}",
        )

    def _read_flow(self, file: File, dest_host: str) -> Event:
        return self.platform.read_from_disk(
            file.size,
            self.bb_host,
            self.disk,
            dest_host=dest_host,
            extra_latency=self.latencies.read,
            max_rate=self.max_stream_rate,
            label=f"{self.name}:read:{file.name}",
        )
