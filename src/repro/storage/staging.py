"""Data staging between storage services (disk-to-disk copies)."""

from __future__ import annotations

from typing import Optional

from repro.des import Event
from repro.storage.base import FileNotOnService, StorageService
from repro.storage.burst_buffer import OnNodeBurstBuffer, SharedBurstBuffer
from repro.storage.pfs import ParallelFileSystem
from repro.storage.registry import FileRegistry
from repro.workflow.model import File


def _service_endpoint(service: StorageService, peer_host: Optional[str]) -> tuple[str, str]:
    """The (host, disk) a disk-to-disk flow should target on ``service``.

    For striped shared BBs the first BB node stands in for the whole
    allocation (the staging chunking is handled by the per-chunk path of
    normal reads/writes; for stage-in the paper's stage-in task is
    sequential anyway).
    """
    if isinstance(service, ParallelFileSystem):
        return service.host, service.disk
    if isinstance(service, OnNodeBurstBuffer):
        return service.bb_host, service.disk
    if isinstance(service, SharedBurstBuffer):
        if service.mode.value == "private":
            return service._private_node, service.disk
        return service.bb_hosts[0], service.disk
    raise TypeError(f"unsupported service type {type(service).__name__}")


def stage_file(
    file: File,
    source: StorageService,
    target: StorageService,
    registry: Optional[FileRegistry] = None,
    extra_latency: float = 0.0,
) -> Event:
    """Copy ``file`` from ``source`` to ``target`` (disk-to-disk).

    The flow traverses the source's read channel, the network route
    between the two services' hosts, and the target's write channel.
    On completion the file is registered on the target (and in the
    registry, if given).  Capacity on the target is reserved up front.
    """
    if not source.contains(file):
        raise FileNotOnService(f"{source.name}: no file {file.name!r}")
    if source is target or target.contains(file):
        # Already in place: complete immediately (zero-cost no-op).
        done = source.env.event()
        done.succeed(file)
        if registry is not None:
            registry.register(file, target)
        return done

    target.add_file(file)
    source._notify_op("stage", file.size)
    target._notify_op("stage", file.size)

    src = _service_endpoint(source, None)
    dst = _service_endpoint(target, None)
    # Stage-in copies pay the services' per-op latencies and the target's
    # metadata cost (stage-in is sequential, so queueing == plain delay).
    latency = (
        extra_latency
        + source.latencies.read
        + target.latencies.write
        + source.metadata_service_time
        + target.metadata_service_time
    )
    transfer = source.platform.transfer_between_disks(
        file.size,
        src,
        dst,
        extra_latency=latency,
        label=f"stage:{file.name}:{source.name}->{target.name}",
    )
    if registry is not None:
        done = source.env.event()

        def finish():
            yield transfer
            registry.register(file, target)
            done.succeed(file)

        source.env.process(finish())
        return done
    return transfer
