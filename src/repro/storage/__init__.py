"""Storage services: parallel file system and burst buffers.

Three services model the paper's storage layers:

* :class:`ParallelFileSystem` — the global Lustre-like PFS every node can
  reach (100 MB/s calibrated disk bandwidth in Table I);
* :class:`SharedBurstBuffer` — Cori-style dedicated BB nodes, with the
  two Cray DataWarp allocation modes: ``PRIVATE`` (per-compute-node
  namespace, files pinned to one BB node) and ``STRIPED`` (files striped
  in chunks across all BB nodes);
* :class:`OnNodeBurstBuffer` — Summit-style node-local NVMe.

All services share the :class:`StorageService` interface: ``write`` a
file from a host's RAM, ``read`` it back to a host, with capacity
accounting and optional per-operation latencies (used by the emulation
layer to model metadata costs the paper's simple model omits).
"""

from repro.storage.base import (
    AccessDeniedError,
    FileNotOnService,
    InsufficientStorage,
    StorageService,
)
from repro.storage.pfs import ParallelFileSystem
from repro.storage.burst_buffer import (
    BBMode,
    OnNodeBurstBuffer,
    SharedBurstBuffer,
)
from repro.storage.registry import FileRegistry
from repro.storage.staging import stage_file
from repro.storage.provisioning import (
    BBAllocation,
    burst_buffer_for_allocation,
    provision_allocation,
)

__all__ = [
    "BBAllocation",
    "burst_buffer_for_allocation",
    "provision_allocation",
    "AccessDeniedError",
    "BBMode",
    "FileNotOnService",
    "FileRegistry",
    "InsufficientStorage",
    "OnNodeBurstBuffer",
    "ParallelFileSystem",
    "SharedBurstBuffer",
    "StorageService",
    "stage_file",
]
