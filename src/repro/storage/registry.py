"""File registry: which services hold which files."""

from __future__ import annotations

from typing import Iterable, Optional

from repro.storage.base import FileNotOnService, StorageService
from repro.workflow.model import File


class FileRegistry:
    """Location catalogue mapping file names to the services holding them.

    The workflow engine consults the registry to decide where to read a
    task's inputs from and records new locations as outputs are written
    (the analogue of WRENCH's FileRegistryService).
    """

    def __init__(self) -> None:
        self._locations: dict[str, list[StorageService]] = {}

    def register(self, file: File, service: StorageService) -> None:
        """Record that ``service`` holds ``file``."""
        services = self._locations.setdefault(file.name, [])
        if service not in services:
            services.append(service)

    def unregister(self, file: File, service: StorageService) -> None:
        services = self._locations.get(file.name, [])
        if service in services:
            services.remove(service)
            if not services:
                del self._locations[file.name]

    def locations(self, file: File) -> list[StorageService]:
        """All services holding ``file`` (possibly empty)."""
        return list(self._locations.get(file.name, []))

    def lookup(
        self,
        file: File,
        prefer: Optional[Iterable[StorageService]] = None,
        reader_host: Optional[str] = None,
    ) -> StorageService:
        """Pick a service to read ``file`` from.

        Preference order: services in ``prefer`` (first match wins), then
        the most recently registered location — a copy staged into a
        fast tier after the original shadows it, cache-style.
        ``reader_host`` filters out services the reader cannot access
        (private BB allocations owned by another node).

        Raises :class:`FileNotOnService` if no accessible copy exists.
        """
        candidates = self.locations(file)
        if reader_host is not None:
            candidates = [
                s for s in candidates if _accessible(s, reader_host)
            ]
        if not candidates:
            raise FileNotOnService(
                f"no accessible copy of {file.name!r}"
                + (f" for host {reader_host!r}" if reader_host else "")
            )
        if prefer is not None:
            for preferred in prefer:
                if preferred in candidates:
                    return preferred
        return candidates[-1]

    def has(self, file: File) -> bool:
        return bool(self._locations.get(file.name))

    def __len__(self) -> int:
        return len(self._locations)


def _accessible(service: StorageService, host: str) -> bool:
    owner = getattr(service, "owner_host", None)
    mode = getattr(service, "mode", None)
    if owner is not None and getattr(mode, "value", None) == "private":
        return host == owner
    return True
