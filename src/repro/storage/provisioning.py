"""Burst-buffer allocation provisioning (DataWarp-style).

On Cori, a job requests a BB *allocation size*; DataWarp rounds it up
to its allocation granularity and spreads the allocation over as many
BB nodes as granules — "as there are far more compute nodes than I/O
and BB nodes, a given BB allocation is usually spread over multiple BB
nodes" (paper Section III-D).  This module models that sizing step:
from a requested capacity to the set of BB nodes backing it, which is
exactly the striping width a :class:`SharedBurstBuffer` then uses.

BB nodes are discovered through each host's declared
:class:`~repro.platform.HostRole` (``shared_bb``); legacy platforms
that only follow the ``bb*`` name convention still work, with a
``DeprecationWarning``.
"""

from __future__ import annotations

import math
import warnings
from collections import deque
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.des import Environment, Event
from repro.obs.waits import WaitCause
from repro.platform.presets import BB_DISK
from repro.platform.runtime import Platform
from repro.platform.spec import HostRole
from repro.platform.units import GiB
from repro.storage.base import InsufficientStorage
from repro.storage.burst_buffer import BBMode, SharedBurstBuffer

#: Cray DataWarp's default allocation granularity on Cori-era systems.
DEFAULT_GRANULARITY = 20 * GiB


def discover_bb_hosts(platform: Platform) -> list[str]:
    """The platform's shared-BB nodes, by declared role.

    Hosts declaring ``role=shared_bb`` are authoritative.  When none
    do, the legacy ``bb*`` name convention is used as a fallback with a
    ``DeprecationWarning`` — platform descriptions should declare roles
    explicitly (PR 4's :func:`~repro.platform.infer_host_roles`).
    """
    declared = sorted(
        h.name for h in platform.spec.hosts if h.role is HostRole.SHARED_BB
    )
    if declared:
        return declared
    legacy = sorted(h for h in platform.hosts if h.startswith("bb"))
    if legacy:
        warnings.warn(  # lint: ignore[SIM080] — deprecation must reach callers with no observer attached
            "no host declares role=shared_bb; falling back to the legacy "
            f"'bb*' name convention (matched: {', '.join(legacy)}) — "
            "declare explicit host roles instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return legacy


@dataclass(frozen=True)
class BBAllocation:
    """A provisioned burst-buffer allocation."""

    requested: float          # bytes asked for
    granted: float            # bytes granted (rounded up to granules)
    granularity: float
    bb_hosts: tuple[str, ...]  # the nodes backing the allocation

    @property
    def granules(self) -> int:
        return round(self.granted / self.granularity)

    @property
    def stripe_width(self) -> int:
        """Number of distinct BB nodes the allocation spans."""
        return len(self.bb_hosts)


def provision_allocation(
    platform: Platform,
    size: float,
    granularity: float = DEFAULT_GRANULARITY,
    bb_hosts: Optional[Sequence[str]] = None,
    disk: str = BB_DISK,
) -> BBAllocation:
    """Provision a BB allocation of at least ``size`` bytes.

    Granules are distributed round-robin over the available BB nodes
    (so a small allocation touches few nodes and a large one stripes
    wide — DataWarp's behaviour), subject to per-node capacity.

    Raises :class:`InsufficientStorage` when the platform's BB nodes
    cannot hold the granted size.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    if granularity <= 0:
        raise ValueError("granularity must be positive")

    if bb_hosts is None:
        bb_hosts = discover_bb_hosts(platform)
    if not bb_hosts:
        raise ValueError("platform has no BB nodes to provision from")

    granules = math.ceil(size / granularity)
    granted = granules * granularity

    # Per-node granule capacity.
    per_node_capacity = {
        h: int(platform.host(h).disk(disk).capacity // granularity)
        for h in bb_hosts
    }
    if granules > sum(per_node_capacity.values()):
        raise InsufficientStorage(
            f"allocation of {granted:.3e} B ({granules} granules) exceeds "
            f"the BB pool capacity"
        )

    # Round-robin granules over nodes, respecting per-node limits.
    assigned: dict[str, int] = {h: 0 for h in bb_hosts}
    remaining = granules
    while remaining > 0:
        progressed = False
        for h in bb_hosts:
            if remaining == 0:
                break
            if assigned[h] < per_node_capacity[h]:
                assigned[h] += 1
                remaining -= 1
                progressed = True
        if not progressed:  # pragma: no cover - guarded by the sum check
            raise InsufficientStorage("BB pool exhausted during assignment")

    used_hosts = tuple(h for h in bb_hosts if assigned[h] > 0)
    return BBAllocation(
        requested=float(size),
        granted=float(granted),
        granularity=float(granularity),
        bb_hosts=used_hosts,
    )


@dataclass
class BBLease:
    """A granted (and releasable) provisioned allocation.

    The payload of the event returned by :meth:`BBProvisioner.request`.
    Release it when the job's stage-out completes so queued requests can
    be granted.
    """

    provisioner: "BBProvisioner"
    allocation: BBAllocation
    per_host_granules: dict[str, int]
    released: bool = False
    #: Key into the provisioner's running-grant table (backfill policies
    #: project release times from it); ``None`` for hand-built objects.
    grant_id: Optional[int] = None

    def release(self) -> None:
        if not self.released:
            self.released = True
            self.provisioner._release(self)

    def __enter__(self) -> "BBLease":
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class BBProvisioner:
    """DES-aware DataWarp allocation queue over a finite granule pool.

    :func:`provision_allocation` sizes a single allocation against an
    *empty* pool; real DataWarp jobs queue when the pool is exhausted
    and are granted as earlier allocations are torn down.  This class
    models that lifecycle: :meth:`request` returns a DES event that
    fires with a :class:`BBLease` once enough granules are free, in the
    order the configured queue policy dictates — strict FIFO by default
    (no backfilling, matching the core allocator's conservative
    queueing), with backfill and plan policies available through the
    :mod:`repro.wms.policies` registry.

    A request that cannot be granted immediately is a *decision site*
    for the profiler: it opens a ``BB_CAPACITY`` wait interval for the
    requesting job (``env.obs`` hooks; zero-cost when disabled).
    """

    def __init__(
        self,
        platform: Platform,
        granularity: float = DEFAULT_GRANULARITY,
        bb_hosts: Optional[Sequence[str]] = None,
        disk: str = BB_DISK,
        policy: "str | object | None" = None,
    ) -> None:
        # Lazy: repro.wms.policies at module level would cycle through
        # repro.wms.__init__ -> engine -> storage imports.
        from repro.wms.policies import resolve_policy

        if granularity <= 0:
            raise ValueError("granularity must be positive")
        self.platform = platform
        self.env: Environment = platform.env
        self.granularity = float(granularity)
        if bb_hosts is None:
            bb_hosts = discover_bb_hosts(platform)
        if not bb_hosts:
            raise ValueError("platform has no BB nodes to provision from")
        self.bb_hosts = list(bb_hosts)
        self.policy = resolve_policy(policy)
        self._free: dict[str, int] = {
            h: int(platform.host(h).disk(disk).capacity // granularity)
            for h in self.bb_hosts
        }
        self.total_granules = sum(self._free.values())
        self._queue: "deque" = deque()
        #: grant_id -> RunningGrant, for backfill release projections.
        self._running: dict[int, object] = {}
        self._next_grant_id = 0

    @property
    def free_granules(self) -> int:
        return sum(self._free.values())

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(
        self, size: float, job: str = "", estimate: Optional[float] = None
    ) -> Event:
        """Request an allocation of at least ``size`` bytes.

        The returned event fires with a :class:`BBLease`.  Requests
        larger than the whole pool can never be satisfied and raise
        :class:`InsufficientStorage` immediately.  ``job`` names the
        requester in wait-cause telemetry only; ``estimate`` is a
        walltime hint for the backfill policies (ignored by ``fifo``).
        """
        from repro.wms.policies import UNKNOWN, QueuedRequest

        if size <= 0:
            raise ValueError("size must be positive")
        granules = math.ceil(size / self.granularity)
        if granules > self.total_granules:
            raise InsufficientStorage(
                f"allocation of {granules} granules exceeds the BB pool "
                f"({self.total_granules} granules)"
            )
        event = self.env.event()
        self._queue.append(
            QueuedRequest(
                amount=granules,
                event=event,
                tag=job,
                estimate=UNKNOWN if estimate is None else float(estimate),
            )
        )
        self._grant()
        if not event.triggered:
            # Decision site: the pool could not satisfy the request in
            # this instant, so the job queues behind running allocations.
            obs = self.env.obs
            if obs is not None:
                obs.on_task_blocked(job, WaitCause.BB_CAPACITY, detail="bb-pool")
                obs.on_bb_lease(
                    "queued", granules, self.free_granules,
                    self.total_granules, job,
                )
        return event

    def claim(
        self, size: float, job: str = "", estimate: Optional[float] = None
    ) -> Optional[BBLease]:
        """Grant an allocation immediately, or not at all.

        The plan coordinator's primitive: succeeds only when enough
        granules are free *and* no request is queued (claims must never
        overtake the policy's queue).  Emits the same ``granted`` lease
        telemetry as the queued path, keeping the lease-balance monitor
        ledger exact.  Returns ``None`` when the claim cannot be
        granted in this instant.
        """
        if size <= 0:
            raise ValueError("size must be positive")
        granules = math.ceil(size / self.granularity)
        if self._queue or granules > self.free_granules:
            return None
        lease = self._carve(granules, job, estimate)
        obs = self.env.obs
        if obs is not None:
            obs.on_bb_lease(
                "granted", granules, self.free_granules,
                self.total_granules, job,
            )
        return lease

    def _release(self, lease: BBLease) -> None:
        for host, granules in lease.per_host_granules.items():
            self._free[host] += granules
        if self.free_granules > self.total_granules:
            # A real raise, not an assert: this ledger invariant (double
            # release) must survive ``python -O``.
            raise InsufficientStorage(
                f"release leaves {self.free_granules} granules free in a "
                f"{self.total_granules}-granule pool (double release?)"
            )
        if lease.grant_id is not None:
            self._running.pop(lease.grant_id, None)
        obs = self.env.obs
        if obs is not None:
            obs.on_bb_lease(
                "released", lease.allocation.granules, self.free_granules,
                self.total_granules, "",
            )
        self._grant()

    def _grant(self) -> None:
        """Grant whatever the queue policy selects in this instant."""
        if not self._queue:
            return
        picks = self.policy.select(
            self._queue, self.free_granules, self.env.now,
            list(self._running.values()),
        )
        if not picks:
            return
        chosen = [self._queue[i] for i in picks]
        for index in sorted(picks, reverse=True):
            del self._queue[index]
        for request in chosen:
            obs = self.env.obs
            if obs is not None:
                obs.on_task_unblocked(request.tag, WaitCause.BB_CAPACITY)
            request.event.succeed(
                self._carve(request.amount, request.tag, request.estimate)
            )
            if obs is not None:
                obs.on_bb_lease(
                    "granted", request.amount, self.free_granules,
                    self.total_granules, request.tag,
                )

    def _carve(
        self, granules: int, job: str, estimate: "Optional[float]" = None
    ) -> BBLease:
        """Assign ``granules`` round-robin over nodes with free space."""
        from repro.wms.policies import UNKNOWN, RunningGrant

        assigned: dict[str, int] = {h: 0 for h in self.bb_hosts}
        remaining = granules
        while remaining > 0:
            progressed = False
            for h in self.bb_hosts:
                if remaining == 0:
                    break
                if self._free[h] - assigned[h] > 0:
                    assigned[h] += 1
                    remaining -= 1
                    progressed = True
            if not progressed:  # pragma: no cover - guarded by _grant
                raise InsufficientStorage("BB pool exhausted during assignment")
        per_host = {h: n for h, n in assigned.items() if n > 0}
        for h, n in per_host.items():
            self._free[h] -= n
        granted = granules * self.granularity
        allocation = BBAllocation(
            requested=granted,
            granted=granted,
            granularity=self.granularity,
            bb_hosts=tuple(h for h in self.bb_hosts if h in per_host),
        )
        estimate = (
            UNKNOWN if estimate is None or estimate == UNKNOWN
            else float(estimate)
        )
        grant_id = self._next_grant_id
        self._next_grant_id += 1
        deadline = self.env.now + estimate if estimate != UNKNOWN else UNKNOWN
        self._running[grant_id] = RunningGrant(granules, deadline)
        return BBLease(self, allocation, per_host, grant_id=grant_id)


def burst_buffer_for_allocation(
    platform: Platform,
    allocation: BBAllocation,
    mode: BBMode = BBMode.STRIPED,
    owner_host: Optional[str] = None,
    **kwargs,
) -> SharedBurstBuffer:
    """Build the storage service backed by a provisioned allocation.

    The service's capacity is clamped to the *granted* size (DataWarp
    enforces the allocation, not the device capacity), and striping
    spans exactly the allocation's nodes.  The clamp is applied at
    construction, so capacity gauges and the occupancy monitor see the
    allocation's capacity from the very first sample.
    """
    return SharedBurstBuffer(
        platform,
        list(allocation.bb_hosts),
        mode,
        owner_host=owner_host,
        capacity=allocation.granted,
        **kwargs,
    )
