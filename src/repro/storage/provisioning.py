"""Burst-buffer allocation provisioning (DataWarp-style).

On Cori, a job requests a BB *allocation size*; DataWarp rounds it up
to its allocation granularity and spreads the allocation over as many
BB nodes as granules — "as there are far more compute nodes than I/O
and BB nodes, a given BB allocation is usually spread over multiple BB
nodes" (paper Section III-D).  This module models that sizing step:
from a requested capacity to the set of BB nodes backing it, which is
exactly the striping width a :class:`SharedBurstBuffer` then uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.platform.presets import BB_DISK
from repro.platform.runtime import Platform
from repro.platform.units import GiB
from repro.storage.base import InsufficientStorage
from repro.storage.burst_buffer import BBMode, SharedBurstBuffer

#: Cray DataWarp's default allocation granularity on Cori-era systems.
DEFAULT_GRANULARITY = 20 * GiB


@dataclass(frozen=True)
class BBAllocation:
    """A provisioned burst-buffer allocation."""

    requested: float          # bytes asked for
    granted: float            # bytes granted (rounded up to granules)
    granularity: float
    bb_hosts: tuple[str, ...]  # the nodes backing the allocation

    @property
    def granules(self) -> int:
        return round(self.granted / self.granularity)

    @property
    def stripe_width(self) -> int:
        """Number of distinct BB nodes the allocation spans."""
        return len(self.bb_hosts)


def provision_allocation(
    platform: Platform,
    size: float,
    granularity: float = DEFAULT_GRANULARITY,
    bb_hosts: Optional[Sequence[str]] = None,
    disk: str = BB_DISK,
) -> BBAllocation:
    """Provision a BB allocation of at least ``size`` bytes.

    Granules are distributed round-robin over the available BB nodes
    (so a small allocation touches few nodes and a large one stripes
    wide — DataWarp's behaviour), subject to per-node capacity.

    Raises :class:`InsufficientStorage` when the platform's BB nodes
    cannot hold the granted size.
    """
    if size <= 0:
        raise ValueError("size must be positive")
    if granularity <= 0:
        raise ValueError("granularity must be positive")

    if bb_hosts is None:
        bb_hosts = sorted(
            h for h in platform.hosts if h.startswith("bb")
        )
    if not bb_hosts:
        raise ValueError("platform has no BB nodes to provision from")

    granules = math.ceil(size / granularity)
    granted = granules * granularity

    # Per-node granule capacity.
    per_node_capacity = {
        h: int(platform.host(h).disk(disk).capacity // granularity)
        for h in bb_hosts
    }
    if granules > sum(per_node_capacity.values()):
        raise InsufficientStorage(
            f"allocation of {granted:.3e} B ({granules} granules) exceeds "
            f"the BB pool capacity"
        )

    # Round-robin granules over nodes, respecting per-node limits.
    assigned: dict[str, int] = {h: 0 for h in bb_hosts}
    remaining = granules
    while remaining > 0:
        progressed = False
        for h in bb_hosts:
            if remaining == 0:
                break
            if assigned[h] < per_node_capacity[h]:
                assigned[h] += 1
                remaining -= 1
                progressed = True
        if not progressed:  # pragma: no cover - guarded by the sum check
            raise InsufficientStorage("BB pool exhausted during assignment")

    used_hosts = tuple(h for h in bb_hosts if assigned[h] > 0)
    return BBAllocation(
        requested=float(size),
        granted=float(granted),
        granularity=float(granularity),
        bb_hosts=used_hosts,
    )


def burst_buffer_for_allocation(
    platform: Platform,
    allocation: BBAllocation,
    mode: BBMode = BBMode.STRIPED,
    owner_host: Optional[str] = None,
    **kwargs,
) -> SharedBurstBuffer:
    """Build the storage service backed by a provisioned allocation.

    The service's capacity is clamped to the *granted* size (DataWarp
    enforces the allocation, not the device capacity), and striping
    spans exactly the allocation's nodes.
    """
    service = SharedBurstBuffer(
        platform,
        list(allocation.bb_hosts),
        mode,
        owner_host=owner_host,
        **kwargs,
    )
    service.capacity = min(service.capacity, allocation.granted)
    return service
