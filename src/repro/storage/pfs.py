"""The global parallel file system service."""

from __future__ import annotations

from typing import Optional

from repro.des import Event
from repro.platform.runtime import Platform
from repro.storage.base import ServiceLatencies, StorageService
from repro.workflow.model import File


class ParallelFileSystem(StorageService):
    """A Lustre-like PFS: one logical disk reachable from every host.

    All reads share the PFS disk's read channel (and likewise for
    writes), so the calibrated 100 MB/s disk bandwidth of Table I is a
    *global* bottleneck — exactly the property that makes burst buffers
    attractive.
    """

    def __init__(
        self,
        platform: Platform,
        host: str = "pfs",
        disk: str = "lustre",
        name: str = "pfs",
        capacity: float = float("inf"),
        latencies: Optional[ServiceLatencies] = None,
        max_stream_rate: float = float("inf"),
        metadata_service_time: float = 0.0,
    ) -> None:
        # The PFS disk spec bounds capacity if the caller does not.
        disk_spec = platform.host(host).disk(disk)
        if capacity == float("inf"):
            capacity = disk_spec.capacity
        super().__init__(
            name,
            platform,
            capacity,
            latencies,
            metadata_service_time=metadata_service_time,
        )
        self.host = host
        self.disk = disk
        #: Per-flow rate cap (POSIX single-stream inefficiency knob used
        #: by the emulation layer; infinite = ideal streaming).
        self.max_stream_rate = max_stream_rate

    def _write_flow(self, file: File, src_host: str) -> Event:
        return self.platform.write_to_disk(
            file.size,
            self.host,
            self.disk,
            src_host=src_host,
            extra_latency=self.latencies.write,
            max_rate=self.max_stream_rate,
            label=f"{self.name}:write:{file.name}",
        )

    def _read_flow(self, file: File, dest_host: str) -> Event:
        return self.platform.read_from_disk(
            file.size,
            self.host,
            self.disk,
            dest_host=dest_host,
            extra_latency=self.latencies.read,
            max_rate=self.max_stream_rate,
            label=f"{self.name}:read:{file.name}",
        )
