"""Micro benchmarks: solver throughput on synthetic flow graphs.

The workload mimics what a burst-buffer simulation actually generates: a
platform of many node-local link clusters (disk read/write channels,
PCIe uplinks) where most flows stay within one cluster and a minority
cross a shared backbone.  That makes the flow/link graph component-rich
— exactly the structure the incremental solver exploits — while the
occasional backbone flow keeps components merging and splitting.

One deterministic admit/drain sequence (a sliding window of active
flows) is replayed three times:

* **oracle** — on every event, rebuild the active flow list and call
  :func:`~repro.network.fairshare.max_min_fair_rates` on the whole
  graph (what :class:`~repro.network.FlowNetwork`'s default path does);
* **incremental** — feed the same events to
  :class:`repro.perf.IncrementalMaxMin` and solve only dirty components;
* **vectorized** — the same events through
  :class:`repro.perf.VectorizedMaxMin` (group-granular dirty components
  plus the dense water-filling kernel).

All replays must agree on every flow's rate at the end, so the speedups
are measured on proven-equivalent work.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass

# lint: ignore-file[SIM060] - the micro bench *measures* the raw oracle
# against the incremental engine; calling it directly is the benchmark.
from repro.network.fairshare import max_min_fair_rates
from repro.perf import IncrementalMaxMin, VectorizedMaxMin, static_capacity

#: Relative tolerance for oracle/incremental rate agreement.  Rates are
#: bit-identical per component; summing order across components differs,
#: so cross-checks allow float associativity slack.
_REL_TOL = 1e-9


@dataclass(frozen=True)
class MicroWorkload:
    """A deterministic admit/drain event sequence over a link topology."""

    name: str
    window: int                      # target number of concurrent flows
    capacities: dict[str, float]     # link name -> capacity
    #: ("admit", fid, links, cap) and ("drain", fid) events, in order.
    events: tuple[tuple, ...]


@dataclass
class MicroResult:
    """One micro benchmark's measurements."""

    name: str
    flows: int                       # concurrent-flow window
    events: int                      # admit/drain events replayed
    oracle_wall_s: float
    incremental_wall_s: float
    vectorized_wall_s: float
    solver_calls: int                # incremental component solves
    links_touched: int               # total links across those solves
    full_solves: int                 # solves that spanned the whole graph

    @property
    def speedup(self) -> float:
        if self.incremental_wall_s <= 0:  # pragma: no cover - clock quirk
            return float("inf")
        return self.oracle_wall_s / self.incremental_wall_s

    @property
    def vectorized_speedup(self) -> float:
        if self.vectorized_wall_s <= 0:  # pragma: no cover - clock quirk
            return float("inf")
        return self.oracle_wall_s / self.vectorized_wall_s

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": "micro",
            "flows": self.flows,
            "events": self.events,
            "wall_s": self.incremental_wall_s,
            "oracle_wall_s": self.oracle_wall_s,
            "vectorized_wall_s": self.vectorized_wall_s,
            "speedup": self.speedup,
            "vectorized_speedup": self.vectorized_speedup,
            "solver_calls": self.solver_calls,
            "links_touched": self.links_touched,
            "full_solves": self.full_solves,
        }


def make_workload(
    window: int,
    n_events: "int | None" = None,
    seed: int = 7,
    cross_fraction: float = 0.05,
    name: "str | None" = None,
) -> MicroWorkload:
    """Build the synthetic cluster topology and its event sequence.

    ``window`` flows stay concurrently active (one admit drains the
    oldest once the window is full); clusters number ``window // 8`` (at
    least 2) with an up/down link pair each, plus one shared backbone
    link that ``cross_fraction`` of flows traverse.
    """
    if window < 2:
        raise ValueError("window must be at least 2")
    rng = random.Random(seed)
    n_events = 4 * window if n_events is None else n_events
    n_clusters = max(2, window // 8)

    capacities: dict[str, float] = {"core": 1000.0}
    for c in range(n_clusters):
        capacities[f"c{c}:up"] = 100.0 + c
        capacities[f"c{c}:down"] = 80.0 + c

    events: list[tuple] = []
    live: list[int] = []
    for fid in range(n_events):
        cluster = rng.randrange(n_clusters)
        links = [f"c{cluster}:up", f"c{cluster}:down"]
        if rng.random() < cross_fraction:
            links.append("core")
        cap = rng.choice([float("inf"), 50.0, 25.0])
        events.append(("admit", fid, tuple(links), cap))
        live.append(fid)
        if len(live) > window:
            # Drain a random victim: keeps component churn realistic
            # (FIFO would always empty whole clusters in admit order).
            victim = live.pop(rng.randrange(len(live)))
            events.append(("drain", victim))
    return MicroWorkload(
        name=name or f"micro-{window}",
        window=window,
        capacities=capacities,
        events=tuple(events),
    )


def _replay_oracle(workload: MicroWorkload) -> dict[int, float]:
    """Whole-graph oracle on every event (the default-path cost model)."""
    flow_links: dict[int, tuple] = {}
    flow_caps: dict[int, float] = {}
    rates: dict[int, float] = {}
    for event in workload.events:
        if event[0] == "admit":
            _, fid, links, cap = event
            flow_links[fid] = links
            flow_caps[fid] = cap
        else:
            del flow_links[event[1]]
            del flow_caps[event[1]]
        if not flow_links:
            rates = {}
            continue
        fids = list(flow_links)
        used = {link for fid in fids for link in flow_links[fid]}
        capacities = {link: workload.capacities[link] for link in used}
        solved = max_min_fair_rates(
            [flow_links[fid] for fid in fids],
            capacities,
            [flow_caps[fid] for fid in fids],
        )
        rates = dict(zip(fids, solved))
    return rates


def _replay_incremental(
    workload: MicroWorkload, engine: "IncrementalMaxMin | VectorizedMaxMin"
) -> dict[int, float]:
    """The same events through a stateful engine (incremental or
    vectorized — the two share the admit/drain/solve surface)."""
    for event in workload.events:
        if event[0] == "admit":
            _, fid, links, cap = event
            engine.admit(fid, links, cap)
        else:
            engine.drain(event[1])
        engine.solve()
    return engine.rates


def _check_agreement(
    oracle: dict[int, float], incremental: dict[int, float], name: str
) -> None:
    if oracle.keys() != incremental.keys():  # pragma: no cover - defensive
        raise AssertionError(f"{name}: solvers disagree on active flows")
    for fid, expected in oracle.items():
        got = incremental[fid]
        if abs(got - expected) > _REL_TOL * max(abs(expected), 1.0):
            raise AssertionError(
                f"{name}: flow {fid} rate {got!r} != oracle {expected!r}"
            )


def run_micro(workload: MicroWorkload, repeats: int = 3) -> MicroResult:
    """Benchmark one workload; best-of-``repeats`` wall times.

    The first replay of each solver doubles as the correctness check
    (oracle, incremental, and vectorized must agree on every rate), so
    ``repeats=1`` costs exactly one replay per solver — that keeps the
    1000-flow bench affordable, where a single oracle replay is tens of
    seconds.
    """
    holder: dict = {}

    def oracle_once() -> None:
        holder["oracle"] = _replay_oracle(workload)

    def incremental_once() -> None:
        engine = IncrementalMaxMin(static_capacity(workload.capacities))
        holder["rates"] = _replay_incremental(workload, engine)
        holder["stats"] = engine.stats

    def vectorized_once() -> None:
        engine = VectorizedMaxMin(static_capacity(workload.capacities))
        holder["vectorized"] = _replay_incremental(workload, engine)

    oracle_wall = min(_timed(oracle_once) for _ in range(repeats))
    incremental_wall = min(_timed(incremental_once) for _ in range(repeats))
    vectorized_wall = min(_timed(vectorized_once) for _ in range(repeats))
    _check_agreement(holder["oracle"], holder["rates"], workload.name)
    _check_agreement(
        holder["oracle"], holder["vectorized"], f"{workload.name} (vectorized)"
    )
    stats = holder["stats"]
    return MicroResult(
        name=workload.name,
        flows=workload.window,
        events=len(workload.events),
        oracle_wall_s=oracle_wall,
        incremental_wall_s=incremental_wall,
        vectorized_wall_s=vectorized_wall,
        solver_calls=stats.solver_calls,
        links_touched=stats.links_touched,
        full_solves=stats.full_solves,
    )


def _timed(fn) -> float:
    start = time.perf_counter()  # lint: ignore[SIM001] — harness wall time
    fn()
    return time.perf_counter() - start  # lint: ignore[SIM001]


def micro_benchmarks(smoke: bool = False) -> list[MicroResult]:
    """The standard micro suite: 10 / 100 / 1000 concurrent flows.

    The 1000-flow bench caps its admit count (window + 500 steady-state
    admits) and runs one replay per solver: each oracle event there is a
    ~30 ms global solve, so a full-length replay would take minutes and
    measure nothing the shorter one doesn't.
    """
    if smoke:
        plan = [(10, None, 1), (100, None, 1)]
    else:
        plan = [(10, None, 3), (100, None, 3), (1000, 1500, 1)]
    return [
        run_micro(make_workload(window, n_events=n_admits), repeats=repeats)
        for window, n_admits, repeats in plan
    ]
