"""BENCH report files: writing, calibration, and regression gating.

A report is one JSON document (schema ``repro.bench/1``)::

    {
      "schema": "repro.bench/1",
      "created": "2026-08-06T12:00:00+00:00",
      "mode": "full" | "smoke",
      "calibration_s": 0.41,
      "entries": [ {<micro/macro result>}, ... ]
    }

``calibration_s`` is the wall time of a fixed, deterministic solver
workload measured on the same machine as the benchmarks.  Regression
checks compare *calibrated* wall times (``wall_s / calibration_s``), so
a committed baseline from one machine still gates CI runners of a
different speed; only genuine slowdowns relative to the machine's own
solver throughput fail the build.
"""

from __future__ import annotations

import datetime
import json
from pathlib import Path
from typing import Optional

from repro.bench.micro import make_workload, run_micro

BENCH_SCHEMA = "repro.bench/1"

#: Fixed workload whose wall time defines one "machine unit".
_CALIBRATION_WINDOW = 64
_CALIBRATION_SEED = 1234


def calibrate() -> float:
    """Measure this machine's speed factor (seconds per calibration run)."""
    workload = make_workload(
        _CALIBRATION_WINDOW, seed=_CALIBRATION_SEED, name="calibration"
    )
    result = run_micro(workload, repeats=3)
    # The oracle replay dominates and is pure solver arithmetic — a good
    # proxy for how fast this machine runs the simulator's inner loops.
    return result.oracle_wall_s


def write_report(
    entries: list[dict],
    calibration_s: float,
    mode: str,
    path: "str | Path | None" = None,
    directory: "str | Path" = "benchmarks",
) -> Path:
    """Write a BENCH report; default name ``BENCH_<date>.json``."""
    if path is None:
        date = datetime.date.today().isoformat()  # lint: ignore[SIM001] — report file name
        path = Path(directory) / f"BENCH_{date}.json"
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    now = datetime.datetime.now(datetime.timezone.utc)  # lint: ignore[SIM001] — report provenance stamp
    report = {
        "schema": BENCH_SCHEMA,
        "created": now.isoformat(timespec="seconds"),
        "mode": mode,
        "calibration_s": calibration_s,
        "entries": entries,
    }
    path.write_text(json.dumps(report, indent=2) + "\n")
    return path


def load_report(path: "str | Path") -> dict:
    report = json.loads(Path(path).read_text())
    if report.get("schema") != BENCH_SCHEMA:
        raise ValueError(
            f"{path}: not a {BENCH_SCHEMA} report "
            f"(schema={report.get('schema')!r})"
        )
    return report


def check_against(
    current: dict, baseline: dict, tolerance: float = 0.25
) -> list[dict]:
    """Compare two reports' macro wall times; return regression records.

    An entry regresses when its calibrated wall time exceeds the
    baseline's by more than ``tolerance`` (relative).  Entries are
    matched by ``(name, allocator)``; entries missing from the baseline
    are informational only (new benchmarks can't regress).

    Each returned record is machine-readable::

        {"name": ..., "allocator": ..., "metric": "wall_s",
         "measured_units": ..., "baseline_units": ...,
         "ratio": measured/baseline, "tolerance": ...}

    so callers can both render it (:func:`format_regression`) and emit
    it as JSON for harnesses.
    """
    failures: list[dict] = []
    base_cal = baseline["calibration_s"]
    cur_cal = current["calibration_s"]
    if base_cal <= 0 or cur_cal <= 0:
        raise ValueError("calibration_s must be positive in both reports")
    baseline_by_key = {
        (e["name"], e.get("allocator")): e
        for e in baseline["entries"]
        if e["kind"] == "macro"
    }
    for entry in current["entries"]:
        if entry["kind"] != "macro":
            continue
        base = baseline_by_key.get((entry["name"], entry.get("allocator")))
        if base is None:
            continue
        current_units = entry["wall_s"] / cur_cal
        base_units = base["wall_s"] / base_cal
        if current_units > base_units * (1.0 + tolerance):
            failures.append(
                {
                    "name": entry["name"],
                    "allocator": entry.get("allocator"),
                    "metric": "wall_s",
                    "measured_units": current_units,
                    "baseline_units": base_units,
                    "ratio": current_units / base_units,
                    "tolerance": tolerance,
                }
            )
    return failures


def format_regression(failure: dict) -> str:
    """One human-readable line for a :func:`check_against` record."""
    return (
        f"{failure['name']} [{failure['allocator']}]: wall_s "
        f"{failure['measured_units']:.2f} machine units vs baseline "
        f"{failure['baseline_units']:.2f} "
        f"({failure['ratio']:.2f}x, tolerance {failure['tolerance']:.0%})"
    )
