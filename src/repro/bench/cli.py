"""``repro-bench`` / ``python -m repro.bench`` — run the benchmark suite."""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional, Sequence

from repro.bench.macro import macro_benchmarks
from repro.bench.micro import micro_benchmarks
from repro.bench.report import (
    calibrate,
    check_against,
    format_regression,
    load_report,
    write_report,
)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Benchmark the fair-share solver (micro) and full "
        "simulations (macro), A/B-ing the max-min, incremental, and "
        "vectorized allocators.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="reduced sizes for CI: micro 10/100 flows, one small macro "
        "scenario",
    )
    parser.add_argument(
        "-o",
        "--output",
        help="report path (default benchmarks/BENCH_<date>.json)",
    )
    parser.add_argument(
        "--check-against",
        metavar="BASELINE",
        help="compare calibrated macro wall times against this committed "
        "BENCH report; exit 1 on regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed relative macro wall-time regression (default 0.25)",
    )
    args = parser.parse_args(argv)
    mode = "smoke" if args.smoke else "full"

    print(f"repro-bench ({mode} mode)")
    calibration_s = calibrate()
    print(f"calibration: {calibration_s * 1e3:.1f} ms / machine unit")

    entries: list[dict] = []
    print("-- micro: solver throughput --")
    for result in micro_benchmarks(smoke=args.smoke):
        entries.append(result.as_dict())
        print(
            f"  {result.name:12s} {result.events:5d} events  "
            f"oracle {result.oracle_wall_s * 1e3:8.1f} ms  "
            f"incremental {result.incremental_wall_s * 1e3:8.1f} ms "
            f"({result.speedup:5.1f}x)  "
            f"vectorized {result.vectorized_wall_s * 1e3:8.1f} ms "
            f"({result.vectorized_speedup:5.1f}x)"
        )

    print("-- macro: end-to-end simulations --")
    for result in macro_benchmarks(smoke=args.smoke):
        entries.append(result.as_dict())
        print(
            f"  {result.name:12s} [{result.allocator:11s}] "
            f"{result.wall_s:7.2f} s  {result.events:8d} events  "
            f"{result.solver_calls:7d} solves  "
            f"makespan {result.makespan:.3f} s"
        )

    path = write_report(entries, calibration_s, mode, path=args.output)
    print(f"report written to {path}")

    if args.check_against:
        current = load_report(path)
        baseline = load_report(args.check_against)
        failures = check_against(current, baseline, tolerance=args.tolerance)
        if failures:
            print("PERFORMANCE REGRESSION:", file=sys.stderr)
            for failure in failures:
                print(f"  {format_regression(failure)}", file=sys.stderr)
            # One machine-readable line for harnesses (CI annotations,
            # dashboards) — everything above is for humans.
            print(
                json.dumps(
                    {
                        "bench_regressions": failures,
                        "baseline": str(args.check_against),
                        "tolerance": args.tolerance,
                    },
                    sort_keys=True,
                )
            )
            return 1
        print(f"no macro regression vs {args.check_against}")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
