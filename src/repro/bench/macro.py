"""Macro benchmarks: end-to-end simulation wall time on paper workloads.

Two scenarios, each run with the default ``max-min`` allocator and again
with ``incremental`` and ``vectorized``:

* ``fig13-point`` — one Figure 13 sweep point (1000Genomes on Cori,
  half the inputs staged into the burst buffer, reduced chromosome
  count) — the unit of work every sweep repeats dozens of times;
* ``genomes-full`` — the full 22-chromosome 1000Genomes case study.

The grouped runs must produce identical makespans (the incremental and
vectorized paths are optimizations, not model changes); each reports wall time plus
the observer's kernel/solver counters so regressions can be attributed
(did we do more events, more solves, or just slower solves?).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.obs import Observer
from repro.scenarios import run_genomes


@dataclass
class MacroResult:
    """One macro benchmark run (one scenario × one allocator)."""

    name: str
    allocator: str
    wall_s: float
    makespan: float
    events: int                      # DES kernel events processed
    solver_calls: int
    links_touched: int

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": "macro",
            "allocator": self.allocator,
            "wall_s": self.wall_s,
            "makespan": self.makespan,
            "events": self.events,
            "solver_calls": self.solver_calls,
            "links_touched": self.links_touched,
        }


#: Macro scenario table: name -> run_genomes keyword arguments.
_SCENARIOS_FULL = {
    "fig13-point": dict(
        system="cori", input_fraction=0.5, n_chromosomes=6, n_compute=4
    ),
    "genomes-full": dict(
        system="cori", input_fraction=0.6, n_chromosomes=22, n_compute=8
    ),
}

_SCENARIOS_SMOKE = {
    "fig13-point": dict(
        system="cori", input_fraction=0.5, n_chromosomes=2, n_compute=2
    ),
}


def run_macro(name: str, allocator: str, **kwargs) -> MacroResult:
    """Run one scenario under ``allocator`` with full instrumentation."""
    observer = Observer(metrics=["network", "des"])
    start = time.perf_counter()  # lint: ignore[SIM001] — harness wall time
    result = run_genomes(
        observer=observer, network_allocator=allocator, **kwargs
    )
    wall = time.perf_counter() - start  # lint: ignore[SIM001]
    registry = observer.registry
    return MacroResult(
        name=name,
        allocator=allocator,
        wall_s=wall,
        makespan=result.makespan,
        events=int(registry.counter("des.events_processed").value),
        solver_calls=int(registry.counter("network.solver_calls").value),
        links_touched=int(registry.counter("network.links_touched").value),
    )


#: The allocators every macro scenario is benchmarked under.
MACRO_ALLOCATORS = ("max-min", "incremental", "vectorized")


def macro_benchmarks(smoke: bool = False) -> list[MacroResult]:
    """Run every macro scenario under all allocators (A/B/C groups).

    Raises if any allocator disagrees with ``max-min`` on makespan —
    wall time is only comparable between semantically identical runs.
    """
    scenarios = _SCENARIOS_SMOKE if smoke else _SCENARIOS_FULL
    results: list[MacroResult] = []
    for name, kwargs in scenarios.items():
        group = [
            run_macro(name, allocator, **kwargs)
            for allocator in MACRO_ALLOCATORS
        ]
        for other in group[1:]:
            if other.makespan != group[0].makespan:
                raise AssertionError(
                    f"{name}: {other.allocator} makespan "
                    f"{other.makespan!r} != max-min makespan "
                    f"{group[0].makespan!r}"
                )
        results.extend(group)
    return results
