"""repro.bench: the performance benchmark harness (``repro-bench``).

Measures the two things the incremental fair-share work optimizes:

* **micro** — raw solver throughput on synthetic, component-rich flow
  graphs (10 / 100 / 1000 concurrent flows), replaying one admit/drain
  event sequence through the global progressive-filling oracle,
  through :class:`repro.perf.IncrementalMaxMin`, and through
  :class:`repro.perf.VectorizedMaxMin`, asserting they agree and
  reporting both speedups;
* **macro** — end-to-end simulation wall time on the paper's workloads
  (a Figure 13 point and the full 1000Genomes run), A/B-ing the
  ``max-min``, ``incremental``, and ``vectorized`` allocators with
  identical makespans.

Results are written as ``BENCH_<date>.json`` (schema ``repro.bench/1``)
with ``{wall_s, events, solver_calls, links_touched}`` per entry plus a
``calibration_s`` machine-speed factor, so a committed baseline can gate
CI: ``repro-bench --smoke --check-against <baseline>`` fails on a >25 %
calibrated macro wall-time regression.  See ``docs/PERF.md``.
"""

from repro.bench.micro import MicroResult, micro_benchmarks, run_micro
from repro.bench.macro import (
    MACRO_ALLOCATORS,
    MacroResult,
    macro_benchmarks,
    run_macro,
)
from repro.bench.report import (
    BENCH_SCHEMA,
    calibrate,
    check_against,
    format_regression,
    write_report,
)

__all__ = [
    "BENCH_SCHEMA",
    "MACRO_ALLOCATORS",
    "MacroResult",
    "MicroResult",
    "calibrate",
    "check_against",
    "format_regression",
    "macro_benchmarks",
    "micro_benchmarks",
    "run_macro",
    "run_micro",
    "write_report",
]
