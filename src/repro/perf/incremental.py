"""Incremental max-min fair sharing via dirty-component recomputation.

Max-min fairness has no coupling across connected components of the
bipartite flow/link graph: progressive filling raises all flows
uniformly, but a flow's final level is decided only by links it can
reach through shared links.  The engine here maintains that graph
incrementally; each :meth:`IncrementalMaxMin.admit` / ``drain`` marks
the touched links dirty, and :meth:`IncrementalMaxMin.solve` recomputes
only the components reachable from dirty state — calling the *unchanged*
global solver on each component, so per-component results are
bit-identical to the oracle by construction.  When a dirty component
spans the whole graph this degenerates into exactly the global solve.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping, Optional, Sequence

from repro.network.fairshare import max_min_fair_rates

#: Capacity of a link given how many flows currently use it.  The user
#: count matters because :class:`~repro.network.Link` applies an optional
#: concurrency penalty to its aggregate bandwidth.
CapacityFn = Callable[[Hashable, int], float]


def static_capacity(capacities: Mapping[Hashable, float]) -> CapacityFn:
    """A :data:`CapacityFn` over a fixed capacity table (no penalty)."""

    def capacity(link: Hashable, n_users: int) -> float:
        return capacities[link]

    return capacity


@dataclass
class SolverStats:
    """Work counters for one engine (reset with :meth:`reset`).

    ``solver_calls`` counts oracle invocations (one per recomputed
    component), ``links_touched``/``flows_solved`` the total subproblem
    sizes, and ``full_solves`` how often a component spanned the whole
    graph (the fallback case where incrementality buys nothing).
    """

    solver_calls: int = 0
    links_touched: int = 0
    flows_solved: int = 0
    full_solves: int = 0

    def reset(self) -> None:
        self.solver_calls = 0
        self.links_touched = 0
        self.flows_solved = 0
        self.full_solves = 0


class IncrementalMaxMin:
    """Stateful per-component max-min solver.

    Parameters
    ----------
    capacity_fn:
        ``(link_id, n_users) -> capacity``; defaults to requiring a
        capacity table via :func:`static_capacity` at construction of
        the caller's choosing.
    oracle:
        The per-component solver.  Defaults to (and is in production
        always) :func:`~repro.network.fairshare.max_min_fair_rates`,
        kept byte-for-byte untouched as the reference implementation.
    """

    def __init__(
        self,
        capacity_fn: CapacityFn,
        oracle: Callable[..., list[float]] = max_min_fair_rates,
    ) -> None:
        self._capacity_fn = capacity_fn
        self._oracle = oracle
        self._flow_links: dict[Hashable, frozenset] = {}
        self._flow_caps: dict[Hashable, float] = {}
        self._link_flows: dict[Hashable, set] = {}
        self._rates: dict[Hashable, float] = {}
        #: Links whose flow set changed since the last solve.
        self._dirty_links: set = set()
        #: Flows needing a (re)solve that no dirty link reaches — newly
        #: admitted linkless flows (their own one-flow component).
        self._dirty_flows: set = set()
        self.stats = SolverStats()

    # ------------------------------------------------------------------
    # Graph maintenance
    # ------------------------------------------------------------------
    def __contains__(self, fid: Hashable) -> bool:
        return fid in self._flow_links

    def __len__(self) -> int:
        return len(self._flow_links)

    def admit(
        self, fid: Hashable, links: Iterable[Hashable], cap: float = float("inf")
    ) -> None:
        """Add a flow; its links (or the flow itself) become dirty."""
        if fid in self._flow_links:
            raise ValueError(f"flow {fid!r} is already admitted")
        link_set = frozenset(links)
        if not link_set and cap == float("inf"):
            raise ValueError(
                f"flow {fid!r} has no links and no cap (infinite rate)"
            )
        self._flow_links[fid] = link_set
        self._flow_caps[fid] = cap
        self._rates[fid] = 0.0
        for link in link_set:
            self._link_flows.setdefault(link, set()).add(fid)
            self._dirty_links.add(link)
        if not link_set:
            self._dirty_flows.add(fid)

    def drain(self, fid: Hashable) -> None:
        """Remove a flow; the links it vacated become dirty."""
        try:
            links = self._flow_links.pop(fid)
        except KeyError:
            raise KeyError(f"flow {fid!r} is not admitted") from None
        del self._flow_caps[fid]
        del self._rates[fid]
        self._dirty_flows.discard(fid)
        for link in links:
            users = self._link_flows[link]
            users.discard(fid)
            if not users:
                del self._link_flows[link]
            self._dirty_links.add(link)

    def rate(self, fid: Hashable) -> float:
        return self._rates[fid]

    @property
    def rates(self) -> dict[Hashable, float]:
        """Current rate of every admitted flow (a copy)."""
        return dict(self._rates)

    @property
    def dirty(self) -> bool:
        return bool(self._dirty_links or self._dirty_flows)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self) -> dict[Hashable, float]:
        """Recompute every component reachable from dirty state.

        Returns ``{fid: rate}`` for exactly the flows whose allocation
        was recomputed (their new rates; unchanged components are not
        revisited and keep their cached values bit-for-bit).
        """
        if not self.dirty:
            return {}
        changed: dict[Hashable, float] = {}
        visited_flows: set = set()
        # Seed flows: everything on a dirty link, plus dirty linkless
        # flows.  A dirty link with no remaining users constrains nobody.
        seeds: list = []
        for link in self._dirty_links:
            seeds.extend(self._link_flows.get(link, ()))
        seeds.extend(self._dirty_flows)
        self._dirty_links.clear()
        self._dirty_flows.clear()

        for seed in seeds:
            if seed in visited_flows:
                continue
            component = self._component_of(seed)
            visited_flows |= component
            changed.update(self._solve_component(component))
        return changed

    def _component_of(self, seed: Hashable) -> set:
        """Flow ids of the connected component containing ``seed``."""
        component = {seed}
        frontier = [seed]
        seen_links: set = set()
        while frontier:
            fid = frontier.pop()
            for link in self._flow_links[fid]:
                if link in seen_links:
                    continue
                seen_links.add(link)
                for other in self._link_flows[link]:
                    if other not in component:
                        component.add(other)
                        frontier.append(other)
        return component

    def _solve_component(self, component: set) -> dict[Hashable, float]:
        """Run the oracle on one component; update and return its rates."""
        # Stable flow order: admission order (dict preservation) so the
        # oracle sees a deterministic subproblem regardless of set
        # iteration order.
        fids = [fid for fid in self._flow_links if fid in component]
        flow_links = [self._flow_links[fid] for fid in fids]
        caps = [self._flow_caps[fid] for fid in fids]
        links = set().union(*flow_links) if flow_links else set()
        capacities = {
            link: self._capacity_fn(link, len(self._link_flows[link]))
            for link in links
        }
        rates = self._oracle(flow_links, capacities, caps)
        self.stats.solver_calls += 1
        self.stats.links_touched += len(capacities)
        self.stats.flows_solved += len(fids)
        if len(fids) == len(self._flow_links):
            self.stats.full_solves += 1
        out = {}
        for fid, rate in zip(fids, rates):
            self._rates[fid] = rate
            out[fid] = rate
        return out


def incremental_max_min_rates(
    flow_links: Sequence[Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    flow_caps: "Sequence[float] | None" = None,
) -> list[float]:
    """Per-component max-min rates (RateAllocator protocol).

    The stateless view of :class:`IncrementalMaxMin`: decompose the
    flow/link graph into connected components and run the global oracle
    on each.  Semantically identical to
    :func:`~repro.network.fairshare.max_min_fair_rates` (bit-identical
    whenever the graph is connected); the point of registering it is
    that :class:`~repro.network.FlowNetwork` recognizes this function
    and switches onto the stateful incremental hot path.
    """
    n = len(flow_links)
    if flow_caps is None:
        flow_caps = [float("inf")] * n
    if len(flow_caps) != n:
        raise ValueError("flow_caps length must match flow_links length")
    for link, cap in capacities.items():
        if cap <= 0:
            raise ValueError(f"link {link!r} has non-positive capacity {cap}")
    for i, links in enumerate(flow_links):
        for link in links:
            if link not in capacities:
                raise ValueError(f"flow {i} references unknown link {link!r}")

    engine = IncrementalMaxMin(static_capacity(capacities))
    for i in range(n):
        engine.admit(i, flow_links[i], flow_caps[i])
    engine.solve()
    return [engine.rate(i) for i in range(n)]
