"""Performance engine: the incremental max-min fair-share solver.

The global progressive-filling solver
(:func:`repro.network.fairshare.max_min_fair_rates`) re-solves *every*
active flow and link on every admit/drain — fine for ten flows, ruinous
for the 903-task 1000Genomes sweeps.  This package exploits the fact
that max-min fairness decomposes exactly over connected components of
the bipartite flow/link graph: an admit or drain can only change rates
inside the component(s) it touches, so everything else keeps its cached
allocation bit-for-bit.

* :class:`IncrementalMaxMin` — the stateful engine: per-link flow sets,
  a dirty-set of links touched since the last solve, component closure
  by BFS, and a per-component call into the unchanged global oracle.
* :func:`incremental_max_min_rates` — the stateless
  :class:`~repro.network.allocators.RateAllocator` view of the same
  algorithm, registered as ``"incremental"``; selecting it by name turns
  on :class:`~repro.network.FlowNetwork`'s incremental hot path.
* :class:`VectorizedMaxMin` / :func:`vectorized_max_min_rates` — the
  dense water-filling kernel (numpy argmin over per-link saturation
  levels, identical-constraint flow grouping), registered as
  ``"vectorized"``; selecting it by name additionally puts
  :class:`~repro.network.FlowNetwork` on the slot-array hot path
  (:class:`FlowSlots`).  See :mod:`repro.perf.vectorized`.

Semantics: rates are *bit-identical* to running the oracle on each
connected component, and identical to the whole-graph oracle whenever
the graph is one component (always, up to float associativity in the
ulps when several independent components exist — see
``docs/PERF.md``).  The differential suite in ``tests/perf/`` enforces
both properties on randomized graphs.
"""

from repro.network.allocators import register_allocator
from repro.perf.incremental import (
    IncrementalMaxMin,
    SolverStats,
    incremental_max_min_rates,
    static_capacity,
)

from repro.perf.vectorized import (
    HAVE_NUMPY,
    FlowSlots,
    VectorizedMaxMin,
    vectorized_max_min_rates,
)

register_allocator("incremental", incremental_max_min_rates)
register_allocator("vectorized", vectorized_max_min_rates)

__all__ = [
    "HAVE_NUMPY",
    "FlowSlots",
    "IncrementalMaxMin",
    "SolverStats",
    "VectorizedMaxMin",
    "incremental_max_min_rates",
    "static_capacity",
    "vectorized_max_min_rates",
]
