"""Vectorized max-min fair sharing: dense link-state water-filling.

The oracle (:func:`~repro.network.fairshare.max_min_fair_rates`) walks
every link and every active flow once per progressive-filling round —
``O(rounds x (links + flows))`` Python-interpreter work per solve.  This
module replaces that inner loop with dense per-link state:

* **Saturation levels instead of repeated subtraction.**  While the set
  of unfrozen flows is constant, every unfrozen flow's rate equals one
  shared *level*, and each link's remaining capacity is linear in that
  level.  The level at which link ``l`` saturates is therefore a single
  number ``SAT[l] = level + remaining[l] / users[l]`` that only changes
  when ``users[l]`` changes.  A whole round collapses to ``argmin`` over
  the dense ``SAT`` vector (numpy on large components, a plain scan on
  tiny ones) plus amortized O(edges) bookkeeping for the flows frozen by
  the saturating link.
* **Identical-constraint flow groups.**  Flows with the same link set
  and the same rate cap are exchangeable under max-min fairness: they
  carry identical rates through every round.  The kernel solves one
  *group* per distinct ``(links, cap)`` class with a user-count weight,
  then broadcasts the group rate to its member flows.  Simulation
  workloads are full of such classes (N parallel stage-ins over one
  route), so this shrinks both the dense vectors and the freeze work.
* **Oracle-compatible freezing.**  The oracle freezes a link when its
  remaining capacity falls below ``_REL_TOL x capacity``, i.e. slightly
  *early*.  The kernel mirrors that with a per-link freeze threshold
  ``FREEZE_AT[l] = SAT[l] - _REL_TOL x capacity[l] / users[l]``, so
  freeze sets — and hence the resulting rate vectors — track the oracle
  to float-roundoff (well inside the 1e-9 differential tolerance; see
  ``docs/PERF.md`` for the exact argument).

Two entry points:

* :func:`vectorized_max_min_rates` — stateless
  :class:`~repro.network.allocators.RateAllocator`, registered as
  ``"vectorized"``.
* :class:`VectorizedMaxMin` — the stateful engine with the same
  admit/drain/solve surface as
  :class:`~repro.perf.incremental.IncrementalMaxMin`, but with
  group-level bookkeeping so dirty-component BFS and per-solve setup
  scale with the number of constraint classes, not flows.

:class:`FlowSlots` holds the slot-allocated dense per-flow arrays
(remaining bytes, rate, finish time) that
:class:`~repro.network.FlowNetwork` uses on its vectorized path to
advance and sweep all in-flight transfers without per-event allocation.

Everything degrades gracefully without numpy: the module imports, the
kernel falls back to scalar scans, and only :class:`FlowSlots` (used
solely by the flownet vectorized path) requires the real thing.
"""
# lint: hot-path - solve() runs on every flow admit/drain

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping, Sequence

from repro.network.fairshare import _REL_TOL
from repro.perf.incremental import CapacityFn, SolverStats

try:  # pragma: no cover - exercised implicitly by every import
    import numpy as _np
except ImportError:  # pragma: no cover - CI images always ship numpy
    _np = None

HAVE_NUMPY = _np is not None

_INF = float("inf")

#: Below this many links a Python scan beats ``np.argmin`` (call
#: overhead dominates on tiny vectors).  Results are identical either
#: way: both pick the first minimum in link-index order.
_NP_MIN_LINKS = 16


# ----------------------------------------------------------------------
# The kernel
# ----------------------------------------------------------------------
def _waterfill_groups(
    group_links: Sequence[Sequence[int]],
    group_caps: Sequence[float],
    weights: Sequence[int],
    link_caps: Sequence[float],
) -> list[float]:
    """Water-fill one component of identical-constraint flow groups.

    ``group_links`` holds local (dense) link indices; ``weights`` the
    member-flow count of each group.  Returns the per-group rate — every
    member flow of a group carries exactly that rate.
    """
    n_links = len(link_caps)
    n_groups = len(group_links)

    # Dense per-link state.  ``rem``/``base`` implement lazy
    # materialization: ``rem[l]`` is the remaining capacity at level
    # ``base[l]``; between user-count changes it decays linearly with
    # slope ``usr[l]``, which SAT/FREEZE_AT already encode.
    usr = [0.0] * n_links
    link_groups: list[list[int]] = [[] for _ in range(n_links)]
    for g, links in enumerate(group_links):
        w = weights[g]
        for l in links:
            usr[l] += w
            link_groups[l].append(g)
    rem = [float(c) for c in link_caps]
    base = [0.0] * n_links
    sat = [0.0] * n_links
    frz = [0.0] * n_links
    for l in range(n_links):
        u = usr[l]
        if u > 0.0:
            share = rem[l] / u
            sat[l] = share
            frz[l] = share - _REL_TOL * link_caps[l] / u
        else:
            sat[l] = _INF
            frz[l] = _INF

    use_np = HAVE_NUMPY and n_links >= _NP_MIN_LINKS
    if use_np:
        sat_np = _np.array(sat)
        frz_np = _np.array(frz)

    rates = [0.0] * n_groups
    frozen = [False] * n_groups
    active = n_groups
    level = 0.0

    # Finite flow caps, sorted ascending; the pointer sweeps forward as
    # the level rises (full cap bounds the increment, cap*(1-REL) is the
    # freeze threshold — exactly the oracle's pair of tests).
    cap_order = sorted(
        (group_caps[g], g) for g in range(n_groups) if group_caps[g] < _INF
    )
    cap_ptr = 0

    def freeze(g: int, rate: float) -> None:
        nonlocal active
        rates[g] = rate
        frozen[g] = True
        active -= 1
        w = weights[g]
        for l in group_links[g]:
            u = usr[l]
            rem[l] -= (level - base[l]) * u
            base[l] = level
            u -= w
            usr[l] = u
            if u > 0.0:
                s = level + rem[l] / u
                f = s - _REL_TOL * link_caps[l] / u
            else:
                s = _INF
                f = _INF
            sat[l] = s
            frz[l] = f
            if use_np:
                sat_np[l] = s
                frz_np[l] = f

    while active:
        while cap_ptr < len(cap_order) and frozen[cap_order[cap_ptr][1]]:
            cap_ptr += 1
        next_cap = cap_order[cap_ptr][0] if cap_ptr < len(cap_order) else _INF

        if use_np:
            min_sat = sat[sat_np.argmin()]
        else:
            min_sat = _INF
            for s in sat:
                if s < min_sat:
                    min_sat = s

        new_level = min_sat if min_sat <= next_cap else next_cap
        if new_level == _INF:  # pragma: no cover - guarded by validation
            break
        if new_level > level:
            level = new_level

        # Cap freezes: every unfrozen group whose threshold the level
        # reached (the oracle's ``rate >= cap * (1 - REL)`` test).
        while cap_ptr < len(cap_order):
            cap, g = cap_order[cap_ptr]
            if frozen[g]:
                cap_ptr += 1
                continue
            if cap * (1.0 - _REL_TOL) <= level:
                freeze(g, level)
                cap_ptr += 1
            else:
                break

        # Link freezes: every link whose freeze threshold the level
        # crossed (the oracle's ``remaining <= REL * capacity`` test);
        # the argmin link always qualifies, so each round freezes at
        # least one group and the loop terminates in <= n_groups rounds.
        if use_np:
            hits = (frz_np <= level).nonzero()[0].tolist()
        else:
            hits = [l for l in range(n_links) if frz[l] <= level]  # lint: ignore[SIM061] - scalar fallback for tiny components
        for l in hits:
            for g in link_groups[l]:
                if not frozen[g]:
                    freeze(g, level)

    return rates


def _validate_and_group(
    flow_links: Sequence[Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    flow_caps: Sequence[float],
):
    """Oracle-identical validation, then the dense group/link encoding."""
    n = len(flow_links)
    if len(flow_caps) != n:
        raise ValueError("flow_caps length must match flow_links length")
    for link, cap in capacities.items():
        if cap <= 0:
            raise ValueError(f"link {link!r} has non-positive capacity {cap}")
    flow_sets = []
    for i, links in enumerate(flow_links):
        s = frozenset(links)
        for link in s:
            if link not in capacities:
                raise ValueError(f"flow {i} references unknown link {link!r}")
        flow_sets.append(s)
    for i, s in enumerate(flow_sets):
        if not s and flow_caps[i] == _INF:
            raise ValueError(f"flow {i} has no links and no cap (infinite rate)")

    lid: dict = {}
    link_caps: list[float] = []
    group_index: dict = {}
    group_links: list[list[int]] = []
    group_caps: list[float] = []
    weights: list[int] = []
    flow_group = [0] * n
    for i, s in enumerate(flow_sets):
        key = (s, flow_caps[i])
        g = group_index.get(key)
        if g is None:
            locs = []  # lint: ignore[SIM061] - one-shot kernel setup, not the round loop
            for link in sorted(s, key=repr):
                j = lid.get(link)
                if j is None:
                    j = lid[link] = len(link_caps)
                    link_caps.append(capacities[link])
                locs.append(j)
            g = len(group_links)
            group_index[key] = g
            group_links.append(locs)
            group_caps.append(flow_caps[i])
            weights.append(0)
        weights[g] += 1
        flow_group[i] = g
    return group_links, group_caps, weights, link_caps, flow_group


def vectorized_max_min_rates(
    flow_links: Sequence[Sequence[Hashable]],
    capacities: Mapping[Hashable, float],
    flow_caps: "Sequence[float] | None" = None,
) -> list[float]:
    """Max-min fair rates via the dense water-filling kernel.

    The :class:`~repro.network.allocators.RateAllocator` registered as
    ``"vectorized"``: same inputs, outputs, and validation errors as
    :func:`~repro.network.fairshare.max_min_fair_rates`, with rates
    agreeing to well inside 1e-9 relative (the differential suite in
    ``tests/perf/test_vectorized.py`` enforces this property).  Selecting
    it by name switches :class:`~repro.network.FlowNetwork` onto the
    slot-array hot path backed by :class:`VectorizedMaxMin`.
    """
    n = len(flow_links)
    if flow_caps is None:
        flow_caps = [_INF] * n
    group_links, group_caps, weights, link_caps, flow_group = (
        _validate_and_group(flow_links, capacities, flow_caps)
    )
    rates = _waterfill_groups(group_links, group_caps, weights, link_caps)
    return [rates[flow_group[i]] for i in range(n)]


# ----------------------------------------------------------------------
# The stateful engine
# ----------------------------------------------------------------------
class _Group:
    """One identical-constraint flow class: a link set plus a rate cap."""

    __slots__ = ("key", "links", "cap", "members")

    def __init__(self, key, links: tuple, cap: float) -> None:
        self.key = key
        self.links = links
        self.cap = cap
        self.members: set = set()


class VectorizedMaxMin:
    """Dirty-component max-min engine over identical-constraint groups.

    Same public surface as
    :class:`~repro.perf.incremental.IncrementalMaxMin` (``admit`` /
    ``drain`` / ``solve`` / ``rate`` / ``rates`` / ``dirty`` /
    ``stats``), but the flow/link graph is maintained at *group*
    granularity and each dirty component is solved by the dense
    water-filling kernel instead of the pure-Python oracle.  Stats
    semantics match the incremental engine (``flows_solved`` counts
    member flows, not groups, so benchmark reports stay comparable).
    """

    def __init__(self, capacity_fn: CapacityFn) -> None:
        self._capacity_fn = capacity_fn
        self._fid_group: dict[Hashable, int] = {}
        self._groups: dict[int, _Group] = {}
        self._group_index: dict = {}
        self._link_groups: dict[Hashable, set[int]] = {}
        self._link_users: dict[Hashable, int] = {}
        self._rates: dict[int, float] = {}
        self._next_gid = 0
        self._dirty_links: set = set()
        self._dirty_groups: set = set()
        self.stats = SolverStats()

    # ------------------------------------------------------------------
    # Graph maintenance
    # ------------------------------------------------------------------
    def __contains__(self, fid: Hashable) -> bool:
        return fid in self._fid_group

    def __len__(self) -> int:
        return len(self._fid_group)

    def admit(
        self, fid: Hashable, links: Iterable[Hashable], cap: float = _INF
    ) -> None:
        """Add a flow; its constraint class (or links) become dirty."""
        if fid in self._fid_group:
            raise ValueError(f"flow {fid!r} is already admitted")
        link_tuple = tuple(dict.fromkeys(links))
        if not link_tuple and cap == _INF:
            raise ValueError(
                f"flow {fid!r} has no links and no cap (infinite rate)"
            )
        key = (frozenset(link_tuple), cap)
        gid = self._group_index.get(key)
        if gid is None:
            gid = self._next_gid
            self._next_gid += 1
            group = _Group(key, link_tuple, cap)
            self._groups[gid] = group
            self._group_index[key] = gid
            self._rates[gid] = 0.0
            for link in link_tuple:
                self._link_groups.setdefault(link, set()).add(gid)  # lint: ignore[SIM061] - only on first admit of a new group
        else:
            group = self._groups[gid]
        group.members.add(fid)
        self._fid_group[fid] = gid
        for link in group.links:
            self._link_users[link] = self._link_users.get(link, 0) + 1
            self._dirty_links.add(link)
        if not group.links:
            self._dirty_groups.add(gid)

    def drain(self, fid: Hashable) -> None:
        """Remove a flow; the links it vacated become dirty."""
        try:
            gid = self._fid_group.pop(fid)
        except KeyError:
            raise KeyError(f"flow {fid!r} is not admitted") from None
        group = self._groups[gid]
        group.members.discard(fid)
        for link in group.links:
            users = self._link_users[link] - 1
            if users:
                self._link_users[link] = users
            else:
                del self._link_users[link]
            self._dirty_links.add(link)
        if not group.members:
            del self._groups[gid]
            del self._group_index[group.key]
            del self._rates[gid]
            self._dirty_groups.discard(gid)
            for link in group.links:
                peers = self._link_groups[link]
                peers.discard(gid)
                if not peers:
                    del self._link_groups[link]
        elif not group.links:
            self._dirty_groups.add(gid)

    def rate(self, fid: Hashable) -> float:
        return self._rates[self._fid_group[fid]]

    @property
    def rates(self) -> dict[Hashable, float]:
        """Current rate of every admitted flow (a copy)."""
        return {
            fid: self._rates[gid] for fid, gid in self._fid_group.items()
        }

    @property
    def dirty(self) -> bool:
        return bool(self._dirty_links or self._dirty_groups)

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(self) -> dict[Hashable, float]:
        """Recompute every component reachable from dirty state.

        Returns ``{fid: rate}`` for the flows whose component was
        recomputed; untouched components keep their cached rates.
        """
        if not self.dirty:
            return {}
        changed: dict[Hashable, float] = {}
        visited: set[int] = set()
        seeds: list[int] = []
        for link in self._dirty_links:
            seeds.extend(self._link_groups.get(link, ()))
        seeds.extend(g for g in self._dirty_groups if g in self._groups)
        self._dirty_links.clear()
        self._dirty_groups.clear()
        for seed in seeds:
            if seed in visited:
                continue
            component = self._component_of(seed)
            visited |= component
            self._solve_component(component, changed)
        return changed

    def _component_of(self, seed: int) -> set[int]:
        """Group ids of the connected component containing ``seed``."""
        component = {seed}
        frontier = [seed]
        seen_links: set = set()
        while frontier:
            gid = frontier.pop()
            for link in self._groups[gid].links:
                if link in seen_links:
                    continue
                seen_links.add(link)
                for other in self._link_groups[link]:
                    if other not in component:
                        component.add(other)
                        frontier.append(other)
        return component

    def _solve_component(
        self, component: set[int], changed: dict[Hashable, float]
    ) -> None:
        """Water-fill one component; fold its rates into ``changed``."""
        # Stable group order (creation order) so the dense encoding —
        # and argmin tie-breaking — never depends on set iteration.
        gids = sorted(component)
        lid: dict = {}
        link_caps: list[float] = []
        group_links: list[list[int]] = []
        group_caps: list[float] = []
        weights: list[int] = []
        capacity_fn = self._capacity_fn
        link_users = self._link_users
        for gid in gids:
            group = self._groups[gid]
            locs = []  # lint: ignore[SIM061] - dense repack amortized over dirty groups
            for link in group.links:
                j = lid.get(link)
                if j is None:
                    j = lid[link] = len(link_caps)
                    link_caps.append(capacity_fn(link, link_users[link]))
                locs.append(j)
            group_links.append(locs)
            group_caps.append(group.cap)
            weights.append(len(group.members))
        rates = _waterfill_groups(group_links, group_caps, weights, link_caps)
        flows_solved = 0
        for gid, rate in zip(gids, rates):
            self._rates[gid] = rate
            members = self._groups[gid].members
            flows_solved += len(members)
            for fid in members:
                changed[fid] = rate
        stats = self.stats
        stats.solver_calls += 1
        stats.links_touched += len(link_caps)
        stats.flows_solved += flows_solved
        if len(gids) == len(self._groups):
            stats.full_solves += 1


# ----------------------------------------------------------------------
# Slot-based flow records (the flownet vectorized hot path)
# ----------------------------------------------------------------------
class FlowSlots:
    """Dense slot-allocated arrays for in-flight flow progress.

    Each admitted flow occupies one slot across parallel numpy arrays
    (remaining bytes, current rate, total size, absolute finish time).
    Advancing simulated time, sweeping drained flows, and peeking the
    next completion are whole-array operations; freed slots are recycled
    through a free list so steady-state simulation allocates nothing per
    event.  Inactive slots are kept neutral (rate 0, remaining 0, finish
    ``inf``) so no masking is needed on the hot operations.

    Arithmetic is element-wise identical to the scalar bookkeeping in
    :class:`~repro.network.FlowNetwork` (same IEEE ops in the same
    order), which is what keeps the vectorized path's event stream
    bit-compatible with the incremental one.
    """

    def __init__(self, capacity: int = 64) -> None:
        if _np is None:  # pragma: no cover - CI images always ship numpy
            raise RuntimeError("FlowSlots requires numpy")
        capacity = max(1, capacity)
        self.remaining = _np.zeros(capacity)
        self.rate = _np.zeros(capacity)
        self.size = _np.zeros(capacity)
        self.finish = _np.full(capacity, _INF)
        self.fids = _np.zeros(capacity, dtype=_np.int64)
        self.slot_of: dict[int, int] = {}
        self._free = list(range(capacity - 1, -1, -1))

    def __len__(self) -> int:
        return len(self.slot_of)

    def _grow(self) -> None:
        old = len(self.remaining)
        new = old * 2
        for name in ("remaining", "rate", "size", "fids"):
            arr = getattr(self, name)
            grown = _np.zeros(new, dtype=arr.dtype)
            grown[:old] = arr
            setattr(self, name, grown)
        finish = _np.full(new, _INF)
        finish[:old] = self.finish
        self.finish = finish
        self._free.extend(range(new - 1, old - 1, -1))

    def admit(self, fid: int, size: float, remaining: float) -> int:
        """Allocate a slot for ``fid``; returns the slot index."""
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self.slot_of[fid] = slot
        self.remaining[slot] = remaining
        self.rate[slot] = 0.0
        self.size[slot] = size
        self.finish[slot] = _INF
        self.fids[slot] = fid
        return slot

    def drop(self, fid: int) -> None:
        """Release ``fid``'s slot back to the free list."""
        slot = self.slot_of.pop(fid)
        self.remaining[slot] = 0.0
        self.rate[slot] = 0.0
        self.size[slot] = 0.0
        self.finish[slot] = _INF
        self._free.append(slot)

    def advance(self, dt: float) -> None:
        """Move every flow forward by ``dt`` at its current rate."""
        # remaining = max(0.0, remaining - rate * dt), as scalar code
        # writes it; inactive slots stay 0 - 0 * dt == 0.
        _np.maximum(0.0, self.remaining - self.rate * dt, out=self.remaining)

    def set_rate(self, fid: int, rate: float, now: float) -> None:
        """Assign a rate and recompute the slot's absolute finish time."""
        slot = self.slot_of[fid]
        self.rate[slot] = rate
        self.finish[slot] = (
            now + self.remaining[slot] / rate if rate > 0.0 else _INF
        )

    def remaining_of(self, fid: int) -> float:
        return float(self.remaining[self.slot_of[fid]])

    def drained_fids(self, time_quantum: float, eps: float) -> list[int]:
        """Flows whose residue is below the finish threshold.

        The threshold mirrors ``FlowNetwork._finish_threshold``:
        ``max(eps * size + eps, rate * time_quantum)`` — vectorized over
        every slot.  Freed slots would qualify too (their remaining is
        exactly 0), so hits are filtered back against the live-slot
        table by slot identity.
        """
        thr = _np.maximum(self.size * eps + eps, self.rate * time_quantum)
        hits = _np.nonzero(self.remaining <= thr)[0]
        if hits.size == 0:
            return []
        live = self.slot_of
        fids = self.fids
        return [
            int(fids[slot])
            for slot in hits.tolist()
            if live.get(int(fids[slot])) == slot
        ]

    def peek_finish(self) -> "float | None":
        """Earliest absolute finish time, or ``None`` if nothing is due."""
        if not self.slot_of:
            return None
        best = float(self.finish.min())
        return None if best == _INF else best

    def next_finished_fid(self) -> "int | None":
        """The flow holding the earliest finish time (ties: lowest slot)."""
        if not self.slot_of:
            return None
        slot = int(_np.argmin(self.finish))
        if self.finish[slot] == _INF:
            return None
        return int(self.fids[slot])
