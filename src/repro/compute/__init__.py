"""Compute services: multicore hosts executing tasks under Amdahl's law."""

from repro.compute.allocator import AllocationError, CoreAllocation, CoreAllocator
from repro.compute.service import ComputeService

__all__ = [
    "AllocationError",
    "CoreAllocation",
    "CoreAllocator",
    "ComputeService",
]
