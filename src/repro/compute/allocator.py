"""Multi-core allocation: grant p cores atomically, policy-queued.

The DES :class:`~repro.des.resources.Resource` grants one slot at a
time; task execution needs *p cores at once*.  The allocator keeps a
queue of (count, event) requests and grants according to a named
:class:`~repro.wms.policies.QueuePolicy` — strict FIFO by default (no
backfilling, matching the paper's single-node Slurm/LSF allocations),
with EASY/conservative backfilling and plan-based scheduling available
through the queue-policy registry.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Optional

from repro.des import Environment, Event
from repro.obs.waits import WaitCause


class AllocationError(Exception):
    """Raised for impossible requests (more cores than the host has)."""


@dataclass
class CoreAllocation:
    """A granted block of cores; release it when the task finishes."""

    allocator: "CoreAllocator"
    cores: int
    released: bool = False
    #: Key into the allocator's running-grant table (backfill policies
    #: project release times from it); ``None`` for hand-built objects.
    grant_id: Optional[int] = None

    def release(self) -> None:
        if not self.released:
            self.released = True
            self.allocator._release(self.cores, grant_id=self.grant_id)

    def __enter__(self) -> "CoreAllocation":
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class CoreAllocator:
    """Policy-queued gang allocator over a host's cores.

    ``label`` names the host in telemetry (busy-core and queue-depth
    series); it has no scheduling effect.  ``policy`` is a queue-policy
    registry name, a :class:`~repro.wms.policies.QueuePolicy`, or
    ``None`` for the default (``fifo`` — the historical behaviour,
    byte-identical).
    """

    def __init__(
        self,
        env: Environment,
        total_cores: int,
        label: str = "",
        policy: "str | object | None" = None,
    ) -> None:
        if total_cores <= 0:
            raise ValueError("total_cores must be positive")
        # Lazy: importing repro.wms.policies at module level would pull
        # repro.wms.__init__ -> engine -> compute.service back into this
        # partially-initialized module.
        from repro.wms.policies import resolve_policy

        self.env = env
        self.total_cores = total_cores
        self.label = label
        self.policy = resolve_policy(policy)
        self._free = total_cores
        self._queue: "deque" = deque()
        #: grant_id -> RunningGrant, for backfill release projections.
        self._running: dict[int, object] = {}
        self._next_grant_id = 0

    @property
    def free_cores(self) -> int:
        return self._free

    @property
    def used_cores(self) -> int:
        return self.total_cores - self._free

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(
        self, cores: int, task: str = "", estimate: Optional[float] = None
    ) -> Event:
        """Request ``cores`` cores.

        The returned event fires with a :class:`CoreAllocation` once the
        cores are granted.  Requests exceeding the host size fail fast.
        ``task`` names the requester in wait-cause telemetry (a request
        that cannot be granted immediately opens a ``CORES`` wait
        interval for it); it has no scheduling effect.  ``estimate`` is
        the requester's walltime estimate in seconds — backfill policies
        use it to protect earlier requests' projected grant times; the
        default ``fifo`` policy ignores it.
        """
        from repro.wms.policies import UNKNOWN, QueuedRequest

        if cores <= 0:
            raise ValueError("cores must be positive")
        if cores > self.total_cores:
            raise AllocationError(
                f"requested {cores} cores but the host has {self.total_cores}"
            )
        event = self.env.event()
        self._queue.append(
            QueuedRequest(
                amount=cores,
                event=event,
                tag=task,
                estimate=UNKNOWN if estimate is None else float(estimate),
            )
        )
        self._grant()
        self._notify()
        if not event.triggered:
            # The decision site for core waits: the request just queued
            # behind the policy instead of being granted in this instant.
            obs = self.env.obs
            if obs is not None:
                obs.on_task_blocked(task, WaitCause.CORES, detail=self.label)
                obs.log_event(
                    "compute", "cores_queued",
                    host=self.label, task=task, cores=cores,
                    free=self._free, queue=len(self._queue),
                )
        return event

    def claim(
        self, cores: int, task: str = "", estimate: Optional[float] = None
    ) -> Optional[CoreAllocation]:
        """Grant ``cores`` immediately, or not at all.

        The plan coordinator's primitive: succeeds only when the cores
        are free *and* no request is queued (claims must never overtake
        the policy's queue).  Emits the same grant telemetry as the
        queued path.  Returns ``None`` when the claim cannot be granted
        in this instant.
        """
        if cores <= 0:
            raise ValueError("cores must be positive")
        if self._queue or cores > self._free:
            return None
        allocation = self._granted(cores, task, estimate)
        obs = self.env.obs
        if obs is not None:
            obs.log_event(
                "compute", "cores_granted",
                host=self.label, task=task, cores=cores, free=self._free,
            )
        self._notify()
        return allocation

    def _release(self, cores: int, grant_id: Optional[int] = None) -> None:
        self._free += cores
        if self._free > self.total_cores:
            # A real raise, not an assert: this invariant (double
            # release / foreign allocation) must survive ``python -O``.
            raise AllocationError(
                f"release of {cores} cores leaves {self._free} free on a "
                f"{self.total_cores}-core host (double release?)"
            )
        if grant_id is not None:
            self._running.pop(grant_id, None)
        self._grant()
        self._notify()

    def _grant(self) -> None:
        """Grant whatever the queue policy selects in this instant."""
        if not self._queue:
            return
        picks = self.policy.select(
            self._queue, self._free, self.env.now, list(self._running.values())
        )
        if not picks:
            return
        chosen = [self._queue[i] for i in picks]
        for index in sorted(picks, reverse=True):
            del self._queue[index]
        for request in chosen:
            allocation = self._granted(
                request.amount, request.tag, request.estimate
            )
            obs = self.env.obs
            if obs is not None:
                # Closes the CORES interval opened when the request
                # queued; a same-instant grant never opened one, and the
                # observer ignores unmatched unblocks.
                obs.on_task_unblocked(request.tag, WaitCause.CORES)
                obs.log_event(
                    "compute", "cores_granted",
                    host=self.label, task=request.tag, cores=request.amount,
                    free=self._free,
                )
            request.event.succeed(allocation)

    def _granted(
        self, cores: int, task: str, estimate: "Optional[float]"
    ) -> CoreAllocation:
        """Book a grant: decrement, record the running grant."""
        from repro.wms.policies import UNKNOWN, RunningGrant

        self._free -= cores
        grant_id = self._next_grant_id
        self._next_grant_id += 1
        estimate = UNKNOWN if estimate is None else float(estimate)
        deadline = (
            self.env.now + estimate if estimate != UNKNOWN else UNKNOWN
        )
        self._running[grant_id] = RunningGrant(cores, deadline)
        return CoreAllocation(self, cores, grant_id=grant_id)

    def _notify(self) -> None:
        """Publish busy-core and queue-depth samples after a change."""
        obs = self.env.obs
        if obs is not None:
            obs.on_core_allocation(
                self.label, self.used_cores, self.total_cores, len(self._queue)
            )
