"""Multi-core allocation: grant p cores atomically, FIFO.

The DES :class:`~repro.des.resources.Resource` grants one slot at a
time; task execution needs *p cores at once*.  The allocator keeps a
FIFO queue of (count, event) requests and grants the head whenever
enough cores are free — strict FIFO (no backfilling) matching the
paper's single-node Slurm/LSF allocations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.des import Environment, Event
from repro.obs.waits import WaitCause


class AllocationError(Exception):
    """Raised for impossible requests (more cores than the host has)."""


@dataclass
class CoreAllocation:
    """A granted block of cores; release it when the task finishes."""

    allocator: "CoreAllocator"
    cores: int
    released: bool = False

    def release(self) -> None:
        if not self.released:
            self.released = True
            self.allocator._release(self.cores)

    def __enter__(self) -> "CoreAllocation":
        return self

    def __exit__(self, *exc: object) -> None:
        self.release()


class CoreAllocator:
    """FIFO gang allocator over a host's cores.

    ``label`` names the host in telemetry (busy-core and queue-depth
    series); it has no scheduling effect.
    """

    def __init__(self, env: Environment, total_cores: int, label: str = "") -> None:
        if total_cores <= 0:
            raise ValueError("total_cores must be positive")
        self.env = env
        self.total_cores = total_cores
        self.label = label
        self._free = total_cores
        self._queue: list[tuple[int, Event, str]] = []

    @property
    def free_cores(self) -> int:
        return self._free

    @property
    def used_cores(self) -> int:
        return self.total_cores - self._free

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def request(self, cores: int, task: str = "") -> Event:
        """Request ``cores`` cores.

        The returned event fires with a :class:`CoreAllocation` once the
        cores are granted.  Requests exceeding the host size fail fast.
        ``task`` names the requester in wait-cause telemetry (a request
        that cannot be granted immediately opens a ``CORES`` wait
        interval for it); it has no scheduling effect.
        """
        if cores <= 0:
            raise ValueError("cores must be positive")
        if cores > self.total_cores:
            raise AllocationError(
                f"requested {cores} cores but the host has {self.total_cores}"
            )
        event = self.env.event()
        self._queue.append((cores, event, task))
        self._grant()
        self._notify()
        if not event.triggered:
            # The decision site for core waits: the request just queued
            # behind the FIFO instead of being granted in this instant.
            obs = self.env.obs
            if obs is not None:
                obs.on_task_blocked(task, WaitCause.CORES, detail=self.label)
                obs.log_event(
                    "compute", "cores_queued",
                    host=self.label, task=task, cores=cores,
                    free=self._free, queue=len(self._queue),
                )
        return event

    def _release(self, cores: int) -> None:
        self._free += cores
        assert self._free <= self.total_cores
        self._grant()
        self._notify()

    def _grant(self) -> None:
        # Strict FIFO: stop at the first request that does not fit.
        while self._queue and self._queue[0][0] <= self._free:
            cores, event, task = self._queue.pop(0)
            self._free -= cores
            obs = self.env.obs
            if obs is not None:
                # Closes the CORES interval opened when the request
                # queued; a same-instant grant never opened one, and the
                # observer ignores unmatched unblocks.
                obs.on_task_unblocked(task, WaitCause.CORES)
                obs.log_event(
                    "compute", "cores_granted",
                    host=self.label, task=task, cores=cores, free=self._free,
                )
            event.succeed(CoreAllocation(self, cores))

    def _notify(self) -> None:
        """Publish busy-core and queue-depth samples after a change."""
        obs = self.env.obs
        if obs is not None:
            obs.on_core_allocation(
                self.label, self.used_cores, self.total_cores, len(self._queue)
            )
