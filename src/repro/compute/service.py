"""Compute service: executes task compute phases on multicore hosts."""

from __future__ import annotations

from typing import Optional

from repro.des import Container, Environment, Event
from repro.compute.allocator import AllocationError, CoreAllocation, CoreAllocator
from repro.model.equations import amdahl_time
from repro.platform.runtime import Platform
from repro.workflow.model import Task


class ComputeService:
    """Manages core allocation and compute-phase timing on a set of hosts.

    The compute time of a task on ``p`` cores follows Amdahl's law
    (Eq. 2), with the sequential time derived from the task's flops and
    the host's calibrated core speed.  The paper's headline model uses
    ``alpha = 0`` (perfect speedup); per-task alphas are honored when
    ``use_amdahl_alpha`` is set.
    """

    def __init__(
        self,
        platform: Platform,
        hosts: Optional[list[str]] = None,
        use_amdahl_alpha: bool = False,
        queue_policy: "str | object | None" = None,
    ) -> None:
        self.platform = platform
        self.env: Environment = platform.env
        if hosts is None:
            hosts = [h for h in platform.hosts if h.startswith("cn")]
        if not hosts:
            raise ValueError("compute service needs at least one host")
        self.queue_policy = queue_policy
        self.allocators: dict[str, CoreAllocator] = {
            h: CoreAllocator(
                self.env, platform.host(h).cores, label=h, policy=queue_policy
            )
            for h in hosts
        }
        #: Per-host RAM pools (only for hosts with finite RAM declared).
        self.memory: dict[str, Container] = {}
        for h in hosts:
            ram = platform.host(h).ram
            if ram != float("inf"):
                self.memory[h] = Container(self.env, capacity=ram, init=ram)
        self.use_amdahl_alpha = use_amdahl_alpha

    @property
    def hosts(self) -> list[str]:
        return list(self.allocators)

    def allocator(self, host: str) -> CoreAllocator:
        try:
            return self.allocators[host]
        except KeyError:
            raise KeyError(f"host {host!r} not managed by this service") from None

    def compute_time(self, task: Task, host: str, cores: Optional[int] = None) -> float:
        """Seconds of pure compute for ``task`` on ``cores`` of ``host``."""
        p = cores if cores is not None else task.cores
        speed = self.platform.host(host).core_speed
        tc1 = task.flops / speed
        alpha = task.alpha if self.use_amdahl_alpha else 0.0
        return amdahl_time(tc1, p, alpha)

    def acquire_cores(
        self,
        host: str,
        cores: int,
        task: str = "",
        estimate: Optional[float] = None,
    ) -> Event:
        """Request a core block; fires with a :class:`CoreAllocation`.

        ``task`` names the requester in wait-cause telemetry only;
        ``estimate`` is a walltime hint consumed by backfill queue
        policies (the default ``fifo`` ignores it).
        """
        return self.allocator(host).request(cores, task=task, estimate=estimate)

    def acquire_memory(self, host: str, amount: float) -> Optional[Event]:
        """Reserve ``amount`` bytes of RAM on ``host``.

        Returns None when the host's RAM is unaccounted (infinite) or
        the amount is zero; otherwise an event that fires once the RAM
        is available.  Requests beyond the host's total fail fast.
        """
        if amount <= 0:
            return None
        pool = self.memory.get(host)
        if pool is None:
            return None
        if amount > pool.capacity:
            raise AllocationError(
                f"task needs {amount:.3e} B RAM but host {host!r} has "
                f"{pool.capacity:.3e} B"
            )
        return pool.get(amount)

    def release_memory(self, host: str, amount: float) -> None:
        """Return RAM reserved with :meth:`acquire_memory`."""
        if amount <= 0:
            return
        pool = self.memory.get(host)
        if pool is not None:
            pool.put(amount)

    def run_compute_phase(self, task: Task, host: str, allocation: CoreAllocation) -> Event:
        """Run the compute phase of ``task`` on already-granted cores.

        Returns the completion event (a timeout of the Amdahl duration).
        """
        duration = self.compute_time(task, host, allocation.cores)
        return self.env.timeout(duration, value=task)

    def execute(self, task: Task, host: str) -> Event:
        """Acquire cores, compute, release — the full compute phase.

        Convenience for callers that do their own I/O phases (the
        workflow engine interleaves reads/compute/writes itself).
        """
        done = self.env.event()

        def run():
            allocation = yield self.acquire_cores(host, min(task.cores, self.allocator(host).total_cores))
            try:
                yield self.run_compute_phase(task, host, allocation)
            finally:
                allocation.release()
            done.succeed(task)

        self.env.process(run())
        return done
