"""Comparing two executions of the same workflow.

The bread-and-butter question of every experiment in the paper is "how
did configuration B change execution relative to configuration A?".
These helpers answer it from two traces: per-group speedups, the
overall makespan ratio, and the tasks that moved most.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.traces.events import ExecutionTrace


@dataclass(frozen=True)
class GroupComparison:
    group: str
    baseline_mean: float
    other_mean: float

    @property
    def speedup(self) -> float:
        """>1 means the other run was faster for this group."""
        return self.baseline_mean / self.other_mean if self.other_mean else float("inf")


@dataclass(frozen=True)
class TaskDelta:
    task: str
    baseline: float
    other: float

    @property
    def delta(self) -> float:
        return self.other - self.baseline


@dataclass(frozen=True)
class TraceComparison:
    baseline_makespan: float
    other_makespan: float
    groups: dict[str, GroupComparison]
    biggest_regressions: tuple[TaskDelta, ...]
    biggest_improvements: tuple[TaskDelta, ...]

    @property
    def makespan_speedup(self) -> float:
        return (
            self.baseline_makespan / self.other_makespan
            if self.other_makespan
            else float("inf")
        )


def compare_traces(
    baseline: ExecutionTrace,
    other: ExecutionTrace,
    top_n: int = 5,
) -> TraceComparison:
    """Compare two executions of the same workflow.

    Both traces must cover the same task set (same workflow run under
    two configurations); a mismatch raises ``ValueError`` because the
    comparison would be meaningless.
    """
    if set(baseline.records) != set(other.records):
        missing = set(baseline.records) ^ set(other.records)
        raise ValueError(
            f"traces cover different task sets (symmetric difference: "
            f"{sorted(missing)[:5]}...)"
        )
    if top_n < 0:
        raise ValueError("top_n must be non-negative")

    groups: dict[str, GroupComparison] = {}
    group_names = {r.group for r in baseline.records.values()}
    for group in group_names:
        base = [r.duration for r in baseline.records.values() if r.group == group]
        new = [r.duration for r in other.records.values() if r.group == group]
        groups[group] = GroupComparison(
            group=group,
            baseline_mean=sum(base) / len(base),
            other_mean=sum(new) / len(new),
        )

    deltas = [
        TaskDelta(
            task=name,
            baseline=baseline.records[name].duration,
            other=other.records[name].duration,
        )
        for name in baseline.records
    ]
    by_delta = sorted(deltas, key=lambda d: d.delta)
    improvements = tuple(d for d in by_delta[:top_n] if d.delta < 0)
    regressions = tuple(
        d for d in sorted(by_delta[-top_n:], key=lambda d: -d.delta) if d.delta > 0
    )

    return TraceComparison(
        baseline_makespan=baseline.makespan,
        other_makespan=other.makespan,
        groups=groups,
        biggest_regressions=regressions,
        biggest_improvements=improvements,
    )


def render_comparison(comparison: TraceComparison) -> str:
    """Terminal-friendly rendering."""
    lines = [
        f"makespan: {comparison.baseline_makespan:.2f}s → "
        f"{comparison.other_makespan:.2f}s "
        f"({comparison.makespan_speedup:.2f}x)",
        "",
        "per group (mean task duration):",
    ]
    for group in sorted(comparison.groups):
        g = comparison.groups[group]
        lines.append(
            f"  {group:16s} {g.baseline_mean:8.2f}s → {g.other_mean:8.2f}s "
            f"({g.speedup:.2f}x)"
        )
    if comparison.biggest_regressions:
        lines.append("")
        lines.append("largest regressions:")
        for d in comparison.biggest_regressions:
            lines.append(f"  {d.task:24s} +{d.delta:.2f}s")
    if comparison.biggest_improvements:
        lines.append("")
        lines.append("largest improvements:")
        for d in comparison.biggest_improvements:
            lines.append(f"  {d.task:24s} {d.delta:.2f}s")
    return "\n".join(lines)
