"""I/O profiling of execution traces (Darshan-style characterization).

The paper's calibration chain starts from an I/O characterization study
(Daley et al. [24]): per-task I/O fractions, per-layer bandwidths,
read/write mixes.  This module derives the same quantities from a
simulated/emulated :class:`~repro.traces.ExecutionTrace`, closing the
loop: traces produced by this library can be characterized with the
same methodology the paper consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.traces.events import ExecutionTrace


@dataclass(frozen=True)
class ServiceProfile:
    """Aggregate I/O behaviour observed at one storage service."""

    service: str
    operations: int
    bytes_read: float
    bytes_written: float
    mean_read_bandwidth: Optional[float]   # bytes/s, None if no reads
    mean_write_bandwidth: Optional[float]

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written

    @property
    def read_fraction(self) -> float:
        return self.bytes_read / self.total_bytes if self.total_bytes else 0.0


@dataclass(frozen=True)
class GroupIOProfile:
    """Per-task-group I/O characterization (λ_io and friends)."""

    group: str
    tasks: int
    mean_lambda_io: float      # observed I/O time fraction (Eq. 1 input)
    mean_read_time: float
    mean_write_time: float
    mean_bytes_per_task: float


@dataclass(frozen=True)
class IOProfile:
    """Full characterization of one execution."""

    services: dict[str, ServiceProfile]
    groups: dict[str, GroupIOProfile]
    total_bytes: float

    def service(self, name: str) -> ServiceProfile:
        try:
            return self.services[name]
        except KeyError:
            raise KeyError(f"no I/O observed at service {name!r}") from None

    def group(self, name: str) -> GroupIOProfile:
        try:
            return self.groups[name]
        except KeyError:
            raise KeyError(f"no tasks in group {name!r}") from None


def profile_trace(trace: ExecutionTrace) -> IOProfile:
    """Characterize the I/O of one executed workflow.

    Requires the trace to carry per-file I/O operations (any trace
    produced by :class:`~repro.wms.WorkflowEngine` does).
    """
    # ------------------------------------------------------------------
    # Per-service aggregation
    # ------------------------------------------------------------------
    services: dict[str, ServiceProfile] = {}
    by_service: dict[str, list] = {}
    for op in trace.io_operations:
        by_service.setdefault(op.service, []).append(op)
    for name, ops in by_service.items():
        reads = [op for op in ops if op.kind == "read"]
        writes = [op for op in ops if op.kind != "read"]
        read_bws = [op.bandwidth for op in reads if op.bandwidth]
        write_bws = [op.bandwidth for op in writes if op.bandwidth]
        services[name] = ServiceProfile(
            service=name,
            operations=len(ops),
            bytes_read=sum(op.size for op in reads),
            bytes_written=sum(op.size for op in writes),
            mean_read_bandwidth=float(np.mean(read_bws)) if read_bws else None,
            mean_write_bandwidth=float(np.mean(write_bws)) if write_bws else None,
        )

    # ------------------------------------------------------------------
    # Per-group aggregation
    # ------------------------------------------------------------------
    bytes_per_task: dict[str, float] = {}
    for op in trace.io_operations:
        bytes_per_task[op.task] = bytes_per_task.get(op.task, 0.0) + op.size

    groups: dict[str, GroupIOProfile] = {}
    by_group: dict[str, list] = {}
    for record in trace.records.values():
        by_group.setdefault(record.group, []).append(record)
    for name, records in by_group.items():
        groups[name] = GroupIOProfile(
            group=name,
            tasks=len(records),
            mean_lambda_io=float(np.mean([r.io_fraction for r in records])),
            mean_read_time=float(np.mean([r.read_time for r in records])),
            mean_write_time=float(np.mean([r.write_time for r in records])),
            mean_bytes_per_task=float(
                np.mean([bytes_per_task.get(r.name, 0.0) for r in records])
            ),
        )

    total = sum(op.size for op in trace.io_operations)
    return IOProfile(services=services, groups=groups, total_bytes=total)


def render_profile(profile: IOProfile) -> str:
    """Terminal-friendly rendering of a profile."""
    lines = ["I/O profile", "", "per storage service:"]
    for name in sorted(profile.services):
        s = profile.services[name]
        read_bw = (
            f"{s.mean_read_bandwidth / 1e6:8.1f} MB/s"
            if s.mean_read_bandwidth
            else "       n/a"
        )
        write_bw = (
            f"{s.mean_write_bandwidth / 1e6:8.1f} MB/s"
            if s.mean_write_bandwidth
            else "       n/a"
        )
        lines.append(
            f"  {name:24s} ops={s.operations:5d}  "
            f"read={s.bytes_read / 1e9:7.2f} GB @{read_bw}  "
            f"write={s.bytes_written / 1e9:7.2f} GB @{write_bw}"
        )
    lines.append("")
    lines.append("per task group:")
    for name in sorted(profile.groups):
        g = profile.groups[name]
        lines.append(
            f"  {name:16s} tasks={g.tasks:4d}  lambda_io={g.mean_lambda_io:5.3f}  "
            f"read={g.mean_read_time:6.2f}s write={g.mean_write_time:6.2f}s  "
            f"{g.mean_bytes_per_task / 1e6:8.1f} MB/task"
        )
    lines.append("")
    lines.append(f"total bytes moved: {profile.total_bytes / 1e9:.2f} GB")
    return "\n".join(lines)
