"""Summary statistics over execution traces."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.traces.events import ExecutionTrace


@dataclass(frozen=True)
class Summary:
    """Five-number-ish summary of a sample."""

    n: int
    mean: float
    std: float
    min: float
    median: float
    max: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"n={self.n} mean={self.mean:.3f} std={self.std:.3f} "
            f"min={self.min:.3f} median={self.median:.3f} max={self.max:.3f}"
        )


def describe(values: Sequence[float]) -> Summary:
    """Summarize a sample of measurements."""
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return Summary(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        min=float(arr.min()),
        median=float(np.median(arr)),
        max=float(arr.max()),
    )


def per_group_summary(trace: ExecutionTrace) -> dict[str, Summary]:
    """Duration summary of each task group in a trace.

    The per-task-category view the paper's characterization figures
    report (stage-in / resample / combine rows).
    """
    groups: dict[str, list[float]] = {}
    for record in trace.records.values():
        groups.setdefault(record.group, []).append(record.duration)
    return {group: describe(durations) for group, durations in groups.items()}
