"""Analysis helpers: curves, plateaus, crossovers, and summaries.

Small, dependency-light utilities the experiment harnesses and examples
share when turning raw makespans into the quantities the paper reports
(speedups, saturation points, stability statistics).
"""

from repro.analysis.compare import (
    GroupComparison,
    TaskDelta,
    TraceComparison,
    compare_traces,
    render_comparison,
)
from repro.analysis.curves import (
    crossover_point,
    plateau_fraction,
    speedup_curve,
)
from repro.analysis.io_profile import (
    GroupIOProfile,
    IOProfile,
    ServiceProfile,
    profile_trace,
    render_profile,
)
from repro.analysis.summary import describe, per_group_summary

__all__ = [
    "GroupComparison",
    "GroupIOProfile",
    "IOProfile",
    "ServiceProfile",
    "TaskDelta",
    "TraceComparison",
    "compare_traces",
    "crossover_point",
    "describe",
    "per_group_summary",
    "plateau_fraction",
    "profile_trace",
    "render_comparison",
    "render_profile",
    "speedup_curve",
]
