"""Curve analysis: speedups, plateaus, crossovers."""

from __future__ import annotations

from typing import Optional, Sequence


def speedup_curve(makespans: Sequence[float]) -> list[float]:
    """Speedup of each point relative to the first (Figure 14's y-axis)."""
    if not makespans:
        raise ValueError("need at least one makespan")
    baseline = makespans[0]
    if baseline <= 0:
        raise ValueError("baseline makespan must be positive")
    if any(m <= 0 for m in makespans):
        raise ValueError("makespans must be positive")
    return [baseline / m for m in makespans]


def plateau_fraction(
    xs: Sequence[float],
    makespans: Sequence[float],
    threshold: float = 0.01,
) -> float:
    """First x past which further increase buys < ``threshold`` relative gain.

    Used to locate the staging fraction where a BB saturates (the paper:
    Cori plateaus once ~80% of the 1000Genomes input is staged).
    Returns the last x if the curve never flattens.
    """
    if len(xs) != len(makespans) or len(xs) < 2:
        raise ValueError("need matching sequences of at least two points")
    if list(xs) != sorted(xs):
        raise ValueError("xs must be increasing")
    for i in range(len(xs) - 1):
        gain = (makespans[i] - makespans[i + 1]) / makespans[i]
        if gain < threshold:
            return xs[i]
    return xs[-1]


def crossover_point(
    xs: Sequence[float],
    curve_a: Sequence[float],
    curve_b: Sequence[float],
) -> Optional[float]:
    """x where curve_a first crosses below/above curve_b, or None.

    Linear interpolation between samples; ties at a sample count as a
    crossover at that x.
    """
    if not (len(xs) == len(curve_a) == len(curve_b)) or len(xs) < 2:
        raise ValueError("need three matching sequences of at least two points")
    diffs = [a - b for a, b in zip(curve_a, curve_b)]
    for i in range(len(xs) - 1):
        d0, d1 = diffs[i], diffs[i + 1]
        if d0 == 0:
            return xs[i]
        if d0 * d1 < 0:
            # Linear interpolation of the zero crossing.
            t = d0 / (d0 - d1)
            return xs[i] + t * (xs[i + 1] - xs[i])
    if diffs[-1] == 0:
        return xs[-1]
    return None
