"""Placement-space exploration: the paper's stated future work.

    "A natural future direction is to leverage our simulator to explore
    the heuristic-space of data placements strategies to optimize
    workflows executions, and to quantify the resulting benefits."

Two tools:

* :func:`evaluate_policies` — score a set of named policies on one
  scenario (the quantify-the-benefits half);
* :class:`GreedyPlacementSearch` — a greedy hill-climber over per-file
  tier assignments: each round it simulates moving each candidate file
  into the BB and commits the best improvement, stopping when no move
  helps (the explore-the-space half).  Simulation makes each probe
  cheap, which is exactly the argument the paper's introduction makes
  for the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional, Sequence

from repro.wms.placement import ExplicitPlacement, PlacementPolicy
from repro.workflow.model import File, Workflow

#: A scenario evaluator: run one simulation under a policy → makespan.
Evaluator = Callable[[PlacementPolicy], float]


@dataclass(frozen=True)
class PolicyScore:
    name: str
    makespan: float
    speedup_vs_worst: float


def evaluate_policies(
    evaluate: Evaluator, policies: Mapping[str, PlacementPolicy]
) -> list[PolicyScore]:
    """Score each policy; returns results sorted best-first."""
    if not policies:
        raise ValueError("need at least one policy")
    raw = {name: evaluate(policy) for name, policy in policies.items()}
    # max over plain floats: the value is the same whichever tied element
    # wins, so insertion order cannot leak out here.
    worst = max(raw.values())  # lint: ignore[SIM003]
    return sorted(
        (
            PolicyScore(name, makespan, worst / makespan)
            for name, makespan in raw.items()
        ),
        key=lambda s: s.makespan,
    )


@dataclass
class SearchStep:
    """One committed move of the greedy search."""

    file_name: str
    makespan_before: float
    makespan_after: float

    @property
    def gain(self) -> float:
        return self.makespan_before - self.makespan_after


@dataclass
class SearchResult:
    """Outcome of a greedy placement search."""

    placement: ExplicitPlacement
    makespan: float
    baseline_makespan: float
    steps: list[SearchStep] = field(default_factory=list)
    evaluations: int = 0

    @property
    def speedup(self) -> float:
        return self.baseline_makespan / self.makespan


class GreedyPlacementSearch:
    """Greedy per-file hill-climbing over BB placement.

    Parameters
    ----------
    evaluate:
        Scenario evaluator (fresh simulation per call).
    candidate_files:
        The files whose placement is searched (typically the workflow's
        inputs and intermediates).  Larger files are probed first, which
        empirically finds good moves sooner.
    max_moves:
        Upper bound on committed moves (None = until no improvement).
    max_evaluations:
        Hard budget on simulation runs (the search stops gracefully).
    min_gain:
        Relative makespan improvement a move must achieve to be taken.
    strategy:
        ``"best"`` evaluates every candidate each round and commits the
        single best move (classic steepest-descent; expensive but
        thorough).  ``"first"`` commits each improving move immediately
        and keeps scanning (much better makespan-per-simulation on
        large candidate sets).
    """

    def __init__(
        self,
        evaluate: Evaluator,
        candidate_files: Sequence[File],
        max_moves: Optional[int] = None,
        max_evaluations: int = 1000,
        min_gain: float = 1e-4,
        strategy: str = "best",
    ) -> None:
        if not candidate_files:
            raise ValueError("need at least one candidate file")
        if max_evaluations <= 0:
            raise ValueError("max_evaluations must be positive")
        if strategy not in ("best", "first"):
            raise ValueError(f"unknown strategy {strategy!r}")
        self.evaluate = evaluate
        self.candidates = sorted(
            candidate_files, key=lambda f: f.size, reverse=True
        )
        self.max_moves = max_moves
        self.max_evaluations = max_evaluations
        self.min_gain = min_gain
        self.strategy = strategy

    def run(self, start: Optional[ExplicitPlacement] = None) -> SearchResult:
        placement = start or ExplicitPlacement()
        evaluations = 0

        def score(policy: ExplicitPlacement) -> float:
            nonlocal evaluations
            evaluations += 1
            return self.evaluate(policy)

        current = score(placement)
        result = SearchResult(
            placement=placement,
            makespan=current,
            baseline_makespan=current,
        )

        def moves_left() -> bool:
            return self.max_moves is None or len(result.steps) < self.max_moves

        def commit(name: str, makespan: float) -> None:
            nonlocal placement, current
            result.steps.append(
                SearchStep(
                    file_name=name,
                    makespan_before=current,
                    makespan_after=makespan,
                )
            )
            placement = placement.with_file(name)
            current = makespan

        improved = True
        while improved and moves_left() and evaluations < self.max_evaluations:
            improved = False
            best_move: Optional[tuple[str, float]] = None
            for f in self.candidates:
                if f.name in placement.bb_files:
                    continue
                if evaluations >= self.max_evaluations or not moves_left():
                    break
                candidate = score(placement.with_file(f.name))
                if candidate >= current * (1 - self.min_gain):
                    continue
                if self.strategy == "first":
                    commit(f.name, candidate)
                    improved = True
                elif best_move is None or candidate < best_move[1]:
                    best_move = (f.name, candidate)
            if self.strategy == "best" and best_move is not None:
                commit(*best_move)
                improved = True

        result.placement = placement
        result.makespan = current
        result.evaluations = evaluations
        return result


class AnnealingPlacementSearch:
    """Simulated annealing over per-file placements.

    Complements the greedy search: random flips escape the local optima
    greedy gets stuck in when moves interact (e.g. two files that only
    pay off together).  Moves flip one candidate file's tier; accepted
    if improving, or with probability ``exp(-Δ/T)`` otherwise, with
    geometric cooling.  Fully deterministic under ``seed``.
    """

    def __init__(
        self,
        evaluate: Evaluator,
        candidate_files: Sequence[File],
        seed: int,
        iterations: int = 200,
        initial_temperature: Optional[float] = None,
        cooling: float = 0.97,
    ) -> None:
        if not candidate_files:
            raise ValueError("need at least one candidate file")
        if iterations <= 0:
            raise ValueError("iterations must be positive")
        if not (0.0 < cooling < 1.0):
            raise ValueError("cooling must be in (0, 1)")
        import numpy as np

        self.evaluate = evaluate
        self.candidates = list(candidate_files)
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling
        self._rng = np.random.default_rng(seed)

    def run(self, start: Optional[ExplicitPlacement] = None) -> SearchResult:
        import math

        placement = start or ExplicitPlacement()
        evaluations = 0

        def score(policy: ExplicitPlacement) -> float:
            nonlocal evaluations
            evaluations += 1
            return self.evaluate(policy)

        current = score(placement)
        baseline = current
        best_placement, best_makespan = placement, current
        # Default temperature: a few percent of the baseline makespan, so
        # early uphill moves of that size are routinely accepted.
        temperature = self.initial_temperature or max(1e-9, 0.05 * baseline)
        steps: list[SearchStep] = []

        for _ in range(self.iterations):
            f = self.candidates[int(self._rng.integers(len(self.candidates)))]
            neighbour = (
                placement.without_file(f.name)
                if f.name in placement.bb_files
                else placement.with_file(f.name)
            )
            candidate = score(neighbour)
            delta = candidate - current
            if delta <= 0 or self._rng.random() < math.exp(-delta / temperature):
                steps.append(
                    SearchStep(
                        file_name=f.name,
                        makespan_before=current,
                        makespan_after=candidate,
                    )
                )
                placement, current = neighbour, candidate
                if current < best_makespan:
                    best_placement, best_makespan = placement, current
            temperature *= self.cooling

        result = SearchResult(
            placement=best_placement,
            makespan=best_makespan,
            baseline_makespan=baseline,
            steps=steps,
        )
        result.evaluations = evaluations
        return result


def workflow_candidates(workflow: Workflow) -> list[File]:
    """Default search candidates: inputs + intermediates (placement-
    controllable files; final outputs usually must land on the PFS)."""
    return workflow.external_input_files() + workflow.intermediate_files()
