"""The workflow execution engine.

Execution semantics (per compute task):

1. wait for all parent tasks;
2. acquire the task's cores on its assigned host (FIFO);
3. read all input files concurrently (flows share bandwidth max-min);
4. compute for the Amdahl duration;
5. write all output files concurrently to their placement tier;
6. release cores; signal completion.

Stage-in tasks (``TaskCategory.STAGE_IN``) are executed as *sequential*
PFS→BB copies of the external input files the placement policy sends to
the BB (the paper: "the stage-in task is always sequential").

Workflows without an explicit stage-in task can opt into *prestaging*:
BB-bound inputs appear on the BB at t = 0 at no cost, matching the
paper's 1000Genomes case study where staging happens before the
measured execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.compute.service import ComputeService
from repro.des import Environment, Event
from repro.obs.waits import WaitCause
from repro.platform.runtime import Platform
from repro.storage.base import StorageService
from repro.storage.registry import FileRegistry, _accessible
from repro.storage.staging import stage_file
from repro.traces.events import ExecutionTrace, IOOperation, TaskRecord
from repro.wms.placement import PlacementPolicy, Tier
from repro.workflow.model import File, Task, TaskCategory, Workflow


@dataclass
class EngineConfig:
    """Tunable engine behaviour."""

    #: Stage BB-bound inputs instantly at t=0 when the workflow has no
    #: stage-in task (1000Genomes case-study semantics).
    prestage_inputs: bool = True
    #: Honor per-task Amdahl alphas (False = the paper's headline
    #: perfect-speedup assumption, Eq. 4).
    use_amdahl_alpha: bool = False
    #: Delete intermediate files from the BB once all consumers finished
    #: (keeps capacity accounting honest on long workflows).
    evict_consumed_intermediates: bool = False
    #: Extra latency added to every stage-in copy (emulation hook for the
    #: striped-mode staging anomaly of Figure 4).
    stage_extra_latency: float = 0.0
    #: Stage-in ingests from an infinitely fast external source (charging
    #: only the BB ingest path) instead of copying disk-to-disk from the
    #: PFS.  The paper's simple simulator behaves this way — it is what
    #: makes its makespan *decrease* with the staged fraction while the
    #: measured one increases (the Figure 10a trend inversion).
    stage_in_external: bool = False


class WorkflowEngine:
    """Executes one workflow on a platform and returns its trace.

    Parameters
    ----------
    platform:
        The runtime platform.
    workflow:
        The DAG to execute.
    compute:
        Compute service managing the execution hosts.
    pfs:
        The global PFS service (holds all external inputs initially).
    bb_for_host:
        Maps a compute host name to its burst-buffer service (private
        allocation on Cori, local NVMe on Summit, or a single shared
        service for striped mode).  ``None`` disables the BB tier
        entirely (pure-PFS baseline).
    placement:
        The data placement policy.
    host_assignment:
        Task → host name.  Defaults to round-robin over compute hosts by
        pipeline-friendly grouping (tasks sharing a name suffix after the
        last ``_`` tend to co-locate); pass an explicit callable for full
        control.
    """

    def __init__(
        self,
        platform: Platform,
        workflow: Workflow,
        compute: ComputeService,
        pfs: StorageService,
        bb_for_host: "Optional[Callable[[str], StorageService]]" = None,
        placement: Optional[PlacementPolicy] = None,
        host_assignment: Optional[Callable[[Task], str]] = None,
        config: Optional[EngineConfig] = None,
    ) -> None:
        from repro.wms.placement import AllPFS

        self.platform = platform
        self.env: Environment = platform.env
        self.workflow = workflow
        self.compute = compute
        self.pfs = pfs
        self.bb_for_host = bb_for_host
        self.placement = (placement or AllPFS()).bind(workflow)
        self.config = config or EngineConfig()
        self.registry = FileRegistry()
        self.trace = ExecutionTrace(workflow.name)
        self._assignment = host_assignment or self._default_assignment()
        if hasattr(self._assignment, "attach"):
            self._assignment.attach(self)  # dynamic Scheduler instances
        #: Task name → decided host.  Assignments are memoized so that a
        #: stateful scheduler gives one answer per task no matter how
        #: often the engine consults it (placement resolution asks for
        #: consumer hosts ahead of time).
        self._host_cache: dict[str, str] = {}
        self._task_done: dict[str, Event] = {}
        self._pending_consumers: dict[str, set[str]] = {}
        self._started = False
        #: Dependency-satisfied tasks that have not yet started (waiting
        #: on cores/memory) — the engine's ready-queue depth signal.
        self._ready_depth = 0

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _default_assignment(self) -> Callable[[Task], str]:
        hosts = self.compute.hosts
        order = {t.name: i for i, t in enumerate(self.workflow.topological_order())}

        def assign(task: Task) -> str:
            return hosts[order[task.name] % len(hosts)]

        return assign

    def _bb_service(self, host: str) -> Optional[StorageService]:
        if self.bb_for_host is None:
            return None
        return self.bb_for_host(host)

    def _host_of(self, task: Task) -> str:
        host = self._host_cache.get(task.name)
        if host is None:
            host = self._assignment(task)
            self._host_cache[task.name] = host
        return host

    def _initialize_files(self) -> None:
        """Populate the PFS with external inputs; prestage if configured."""
        has_stage_in = any(
            t.category == TaskCategory.STAGE_IN for t in self.workflow
        )
        staged = set(self.placement.staged_input_names(self.workflow))
        # Prestaged files are spread round-robin over the hosts' BBs
        # WITHOUT consulting the task scheduler: asking it at t = 0 would
        # pin every consumer to one idle host before execution starts,
        # defeating dynamic schedulers.  Locality-aware schedulers then
        # follow the data instead of the data following a guess.
        hosts = self.compute.hosts
        prestage_index = 0
        for f in self.workflow.external_input_files():
            self.pfs.add_file(f)
            self.registry.register(f, self.pfs)
            if not has_stage_in and self.config.prestage_inputs and f.name in staged:
                bb = self._bb_service(hosts[prestage_index % len(hosts)])
                prestage_index += 1
                if bb is not None:
                    bb.add_file(f)
                    self.registry.register(f, bb)
        for name in self.workflow.files:
            self._pending_consumers[name] = {
                t.name for t in self.workflow.consumers_of(name)
            }

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def start(self) -> Event:
        """Launch the workflow inside an already-running simulation.

        Spawns one process per task and returns an event that fires when
        every task has completed — composable with other simulated
        activity (e.g. a batch-job body running an engine on its
        allocated nodes).  Use :meth:`run` when the engine owns the
        event loop.
        """
        if self._started:
            raise RuntimeError("engine instances are single-use")
        self._started = True
        self._initialize_files()

        for task in self.workflow:
            self._task_done[task.name] = self.env.event()
        for task in self.workflow:
            self.env.process(self._run_task(task))
        return self.env.all_of(list(self._task_done.values()))

    def run(self, until: Optional[float] = None) -> ExecutionTrace:
        """Execute the workflow to completion; returns the trace."""
        done = self.start()
        if until is not None:
            self.env.run(until=until)
        else:
            self.env.run(until=done)
        return self.trace

    @property
    def makespan(self) -> float:
        return self.trace.makespan

    # ------------------------------------------------------------------
    def _run_task(self, task: Task):
        # Wait for parents.
        parents = self.workflow.parents(task.name)
        if parents:
            obs = self.env.obs
            if obs is not None:
                obs.on_task_blocked(task.name, WaitCause.DEPENDENCY)
            yield self.env.all_of([self._task_done[p.name] for p in parents])
            obs = self.env.obs
            if obs is not None:
                obs.on_task_unblocked(task.name, WaitCause.DEPENDENCY)

        host = self._host_of(task)
        record = TaskRecord(
            name=task.name,
            group=task.group or task.category.value,
            host=host,
            cores=task.cores,
        )
        self.trace.log(self.env.now, "task_ready", task.name)
        self._ready_depth += 1
        obs = self.env.obs
        if obs is not None:
            obs.on_ready_depth(self._ready_depth)
            obs.log_event(
                "wms", "task_ready",
                task=task.name, host=host, depth=self._ready_depth,
            )

        if task.category == TaskCategory.STAGE_IN:
            yield from self._run_stage_in(task, host, record)
        elif task.category == TaskCategory.STAGE_OUT:
            yield from self._run_stage_out(task, host, record)
        else:
            yield from self._run_compute_task(task, host, record)

        record.end = self.env.now
        self.trace.add_record(record)
        self.trace.log(self.env.now, "task_end", task.name)
        obs = self.env.obs
        if obs is not None:
            obs.on_task_complete(record, task.category.value)
            obs.log_event(
                "wms", "task_end",
                task=task.name, host=host,
                duration=record.end - record.start,
            )
        self._task_done[task.name].succeed(task.name)

    def _mark_start(self, task: Task, record: TaskRecord) -> None:
        """Stamp a task's actual start (cores granted, ready → running)."""
        record.start = self.env.now
        self.trace.log(self.env.now, "task_start", task.name)
        self._ready_depth -= 1
        obs = self.env.obs
        if obs is not None:
            obs.on_ready_depth(self._ready_depth)
            obs.log_event(
                "wms", "task_start",
                task=task.name, host=record.host, cores=record.cores,
            )

    def _run_stage_in(self, task: Task, host: str, record: TaskRecord):
        """Sequential PFS→BB copies for BB-bound inputs."""
        allocation = yield self.compute.acquire_cores(host, 1, task=task.name)
        self._mark_start(task, record)
        record.read_start = self.env.now
        try:
            staged = set(self.placement.staged_input_names(self.workflow))
            for f in sorted(task.outputs, key=lambda f: f.name):
                if f.name not in staged:
                    continue  # stays on the PFS, no movement
                consumers = self.workflow.consumers_of(f.name)
                target_host = (
                    self._host_of(consumers[0]) if consumers else host
                )
                bb = self._bb_service(target_host)
                if bb is None:
                    continue
                self.trace.log(self.env.now, "stage_copy_start", task.name, f.name)
                if self.config.stage_in_external:
                    yield bb.write(f, host)
                    self.registry.register(f, bb)
                else:
                    yield stage_file(
                        f,
                        self.pfs,
                        bb,
                        registry=self.registry,
                        extra_latency=self.config.stage_extra_latency,
                    )
                self.trace.log(self.env.now, "stage_copy_end", task.name, f.name)
        finally:
            allocation.release()
        record.read_end = self.env.now
        record.compute_end = self.env.now
        record.write_end = self.env.now

    def _run_stage_out(self, task: Task, host: str, record: TaskRecord):
        """Sequential BB→PFS drains of the task's input files.

        A stage-out task consumes the files to be archived; any copy
        still living only in a burst buffer is drained to the PFS (the
        "staging out" half of the lifecycle the paper's introduction
        describes).  Files already on the PFS cost nothing.
        """
        allocation = yield self.compute.acquire_cores(host, 1, task=task.name)
        self._mark_start(task, record)
        record.read_start = self.env.now
        try:
            for f in sorted(task.inputs, key=lambda f: f.name):
                if self.pfs.contains(f):
                    continue
                locations = [
                    s for s in self.registry.locations(f) if s is not self.pfs
                ]
                if not locations:
                    continue
                source = locations[0]
                self.trace.log(self.env.now, "stage_out_start", task.name, f.name)
                yield stage_file(f, source, self.pfs, registry=self.registry)
                self.trace.log(self.env.now, "stage_out_end", task.name, f.name)
        finally:
            allocation.release()
        record.read_end = self.env.now
        record.compute_end = self.env.now
        record.write_end = self.env.now

    def _run_compute_task(self, task: Task, host: str, record: TaskRecord):
        cores = min(task.cores, self.compute.allocator(host).total_cores)
        # The compute-phase duration doubles as the walltime estimate
        # backfill queue policies use to protect earlier requests; the
        # default fifo policy ignores it (byte-identical schedules).
        allocation = yield self.compute.acquire_cores(
            host,
            cores,
            task=task.name,
            estimate=self.compute.compute_time(task, host, cores),
        )
        memory_request = self.compute.acquire_memory(host, task.memory)
        if memory_request is not None:
            obs = self.env.obs
            if obs is not None:
                obs.on_task_blocked(task.name, WaitCause.MEMORY, detail=host)
            yield memory_request
            obs = self.env.obs
            if obs is not None:
                obs.on_task_unblocked(task.name, WaitCause.MEMORY)
        self._mark_start(task, record)
        try:
            # --- read phase (all inputs concurrently) ---------------------
            record.read_start = self.env.now
            reads = []
            local_bb = self._bb_service(host)
            prefer = [s for s in (local_bb,) if s is not None]
            for f in task.inputs:
                service = self.registry.lookup(f, prefer=prefer, reader_host=host)
                reads.append(
                    self.env.process(
                        self._timed_io(task, f, service, "read", service.read(f, host))
                    )
                )
            if reads:
                yield self.env.all_of(reads)
            record.read_end = self.env.now
            self.trace.log(self.env.now, "read_end", task.name)

            # --- compute phase -------------------------------------------
            if self.config.use_amdahl_alpha:
                self.compute.use_amdahl_alpha = True
            duration = self.compute.compute_time(task, host, allocation.cores)
            if duration > 0:
                yield self.env.timeout(duration)
            record.compute_end = self.env.now
            self.trace.log(self.env.now, "compute_end", task.name)

            # --- write phase (all outputs concurrently) -------------------
            writes = []
            for f in task.outputs:
                service = self._output_target(f, host)
                writes.append(
                    self.env.process(
                        self._timed_io(
                            task, f, service, "write", service.write(f, host)
                        )
                    )
                )
                self.registry.register(f, service)
            if writes:
                yield self.env.all_of(writes)
            record.write_end = self.env.now
            self.trace.log(self.env.now, "write_end", task.name)
        finally:
            allocation.release()
            if memory_request is not None:
                self.compute.release_memory(host, task.memory)

        if self.config.evict_consumed_intermediates:
            self._evict_after(task)

    def _timed_io(self, task: Task, f: File, service: StorageService, kind: str, transfer: Event):
        """Await one transfer, logging it as a per-file I/O operation."""
        start = self.env.now
        yield transfer
        self.trace.log_io(
            IOOperation(
                task=task.name,
                file=f.name,
                service=service.name,
                kind=kind,
                size=f.size,
                start=start,
                end=self.env.now,
            )
        )

    def _output_target(self, f: File, host: str) -> StorageService:
        """Resolve the service an output file should be written to.

        Placement says BB/PFS; BB resolves to the writing host's service.
        If any consumer of the file runs on a host that cannot access
        that BB (private-mode allocations), fall back to the PFS so the
        workflow can always make progress.
        """
        tier = self.placement.tier_of(f, self.workflow)
        if tier != Tier.BB:
            return self.pfs
        bb = self._bb_service(host)
        if bb is None:
            return self.pfs
        # Only private-mode allocations restrict readers; checking the
        # consumers of other BB kinds would needlessly pin their host
        # assignments before they are ready (hurting dynamic schedulers).
        if getattr(bb, "owner_host", None) is not None:
            for consumer in self.workflow.consumers_of(f.name):
                consumer_host = self._host_of(consumer)
                if not _accessible(bb, consumer_host):
                    return self.pfs
        return bb

    def _evict_after(self, task: Task) -> None:
        """Drop files whose consumers have all completed from the BB."""
        for f in task.inputs:
            pending = self._pending_consumers.get(f.name)
            if pending is None:
                continue
            pending.discard(task.name)
            if pending:
                continue
            for service in self.registry.locations(f):
                if service is not self.pfs:
                    service.delete(f)
                    self.registry.unregister(f, service)
