"""Workflow management system: scheduling, staging, and execution.

:class:`WorkflowEngine` executes a workflow DAG on a platform: it stages
external inputs according to a :class:`PlacementPolicy`, runs each task
as read-inputs → compute → write-outputs on its assigned host (cores
granted FIFO by the compute service), and emits a timestamped
:class:`~repro.traces.ExecutionTrace` whose last event gives the
makespan — mirroring the WRENCH simulator of Section IV.
"""

from repro.wms.placement import (
    AllBB,
    AllPFS,
    ExplicitPlacement,
    FractionPlacement,
    LocalityPlacement,
    PlacementPolicy,
    SizeThresholdPlacement,
)
from repro.wms.engine import EngineConfig, WorkflowEngine
from repro.wms.heft import heft_assignment
from repro.wms.scheduling import (
    DataLocalityScheduler,
    LeastLoadedScheduler,
    RoundRobinScheduler,
    Scheduler,
    consistent_hash_assignment,
)
from repro.wms.explorer import (
    AnnealingPlacementSearch,
    GreedyPlacementSearch,
    PolicyScore,
    SearchResult,
    evaluate_policies,
    workflow_candidates,
)
from repro.wms.policies import (
    DEFAULT_POLICY,
    ConservativeBackfillPolicy,
    EasyBackfillPolicy,
    FifoPolicy,
    JointReservation,
    PlanCoordinator,
    PlanPolicy,
    QueuePolicy,
    QueuedRequest,
    RunningGrant,
    policy_names,
    register_policy,
    resolve_policy,
)

__all__ = [
    "AllBB",
    "AnnealingPlacementSearch",
    "AllPFS",
    "ConservativeBackfillPolicy",
    "DEFAULT_POLICY",
    "DataLocalityScheduler",
    "EasyBackfillPolicy",
    "EngineConfig",
    "ExplicitPlacement",
    "FifoPolicy",
    "FractionPlacement",
    "GreedyPlacementSearch",
    "JointReservation",
    "LeastLoadedScheduler",
    "LocalityPlacement",
    "PlacementPolicy",
    "PlanCoordinator",
    "PlanPolicy",
    "PolicyScore",
    "QueuePolicy",
    "QueuedRequest",
    "RoundRobinScheduler",
    "RunningGrant",
    "Scheduler",
    "SearchResult",
    "SizeThresholdPlacement",
    "WorkflowEngine",
    "consistent_hash_assignment",
    "evaluate_policies",
    "heft_assignment",
    "policy_names",
    "register_policy",
    "resolve_policy",
    "workflow_candidates",
]
